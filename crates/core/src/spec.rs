//! Problem specifications: Consensus and Vector Consensus.
//!
//! The crash-model protocol solves classical consensus:
//!
//! * **Termination** — every correct process eventually decides;
//! * **Agreement** — no two correct processes decide differently;
//! * **Validity** — the decided value was proposed by some process.
//!
//! In the arbitrary-failure model the classical Validity property is
//! vacuous — a faulty process can propose an "irrelevant" value while
//! otherwise behaving correctly, and nobody can tell (paper §1). The
//! transformed protocol therefore solves **Vector Consensus**
//! (Doudou–Schiper Vector Validity):
//!
//! * every process decides a vector `vect` of size `n`;
//! * for every correct `p_i`: `vect[i] = v_i` or `vect[i] = null`;
//! * at least `ψ ≥ 1` entries of `vect` are initial values of correct
//!   processes, with `ψ = n − 2F` under the paper's resilience bound.
//!
//! This module also holds both ends of the transformation *as data*:
//! [`ProtocolSpec::crash_hr`] describes the un-transformed Hurfin–Raynal
//! send discipline (Fig. 2), [`ProtocolSpec::transformed`] the Fig. 3
//! discipline, and [`transform`] turns the former into the latter
//! mechanically by applying the paper's module stack at the spec level —
//! so the hand-written transformed spec can be *checked* against its
//! derivation instead of being trusted.

use ftm_certify::{MessageKind, ProtocolId, Round};

/// One per-round send slot of the protocol's send discipline.
///
/// A correct process works through the slots of a round *in order*, sending
/// each slot's kind at most once; `mandatory` slots must be sent before the
/// process may leave the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSlot {
    /// The message kind this slot emits.
    pub kind: MessageKind,
    /// Whether a correct process must send this before advancing rounds.
    pub mandatory: bool,
}

/// How a conditional send is audited by the certification module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertRoute {
    /// The send's enabling condition is certifiable: the named
    /// `ftm-certify` rule re-derives it from the attached certificate.
    Rule(&'static str),
    /// The value itself cannot be certified (nobody can audit what a
    /// process's initial value "should" be); the round-0 vector
    /// certification phase bounds the damage instead. The named rule
    /// still audits the send's *structure*.
    VectorCertification(&'static str),
    /// No audit at all: the receiver trusts the sender. This is the crash
    /// model's discipline — benign processes never lie, so every send of
    /// an un-transformed spec is routed here. The transformation replaces
    /// every `Trusted` route with a certified one.
    Trusted,
    /// The send *compacts* prior evidence instead of citing it onward: the
    /// named rule re-derives a quorum-signed digest of a decided slot from
    /// the attached decide-vote quorum. Like [`CertRoute::Rule`], the
    /// condition is fully certifiable — but in the lineage analysis the
    /// send is a new *justification root*: once a checkpoint stands, the
    /// per-round certificate prefix behind it may be discarded, so nothing
    /// downstream cites it and the chain legitimately ends here.
    CheckpointRoot(&'static str),
}

impl CertRoute {
    /// The id of the `ftm-certify` rule auditing this send, if any
    /// (`Trusted` routes are audited by nobody).
    pub fn rule_id(&self) -> Option<&'static str> {
        match self {
            CertRoute::Rule(id)
            | CertRoute::VectorCertification(id)
            | CertRoute::CheckpointRoot(id) => Some(id),
            CertRoute::Trusted => None,
        }
    }

    /// `true` when the enabling condition itself is certifiable.
    pub fn condition_certifiable(&self) -> bool {
        matches!(self, CertRoute::Rule(_) | CertRoute::CheckpointRoot(_))
    }
}

/// When the evidence behind a justification edge was produced, relative to
/// the round of the send it justifies.
///
/// The distinction keeps the justification graph well-founded: a cycle is
/// only vicious when every edge on it is [`EvidencePhase::SameRound`] —
/// `PrevRound` evidence strictly decreases the round and `Initial`
/// evidence bottoms out at the round-0 vector-certification phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EvidencePhase {
    /// Round-0 evidence: signed initial-value broadcasts.
    Initial,
    /// Evidence from the previous round (e.g. the `NEXT(r−1)` quorum that
    /// witnesses entry into round `r`).
    PrevRound,
    /// Evidence from the same round the send belongs to.
    SameRound,
}

impl EvidencePhase {
    /// Stable kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            EvidencePhase::Initial => "initial",
            EvidencePhase::PrevRound => "prev-round",
            EvidencePhase::SameRound => "same-round",
        }
    }
}

/// One edge of the justification graph: the send named `by` produced
/// (signed) messages that appear in this send's certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Justification {
    /// The id of the conditional send whose output is cited as evidence.
    pub by: &'static str,
    /// When that evidence was produced relative to this send's round.
    pub phase: EvidencePhase,
}

impl Justification {
    /// Same-round evidence from `by`.
    pub fn same(by: &'static str) -> Self {
        Justification {
            by,
            phase: EvidencePhase::SameRound,
        }
    }

    /// Previous-round evidence from `by`.
    pub fn prev(by: &'static str) -> Self {
        Justification {
            by,
            phase: EvidencePhase::PrevRound,
        }
    }

    /// Round-0 evidence from `by`.
    pub fn initial(by: &'static str) -> Self {
        Justification {
            by,
            phase: EvidencePhase::Initial,
        }
    }
}

/// One conditional send of the protocol: a message a correct process emits
/// only when a stated condition holds (paper §5: every such condition needs
/// a certification rule, or the send is unauditable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionalSend {
    /// Stable identifier, matched against rule coverage reports.
    pub id: &'static str,
    /// The kind of message sent.
    pub kind: MessageKind,
    /// The enabling condition, as stated in the protocol figure.
    pub condition: String,
    /// The certification route auditing the send.
    pub route: CertRoute,
    /// Whether the message body carries protocol *values* (estimates /
    /// vectors) as opposed to pure control structure.
    pub carries_value: bool,
    /// The sends whose (signed) output justifies this one — the static
    /// shape of this send's certificate.
    pub justified_by: Vec<Justification>,
}

/// Declarative description of a protocol's *send discipline*: which kind
/// (if any) opens a peer's lifetime, what a round's legal vote sequence is,
/// how rounds advance, and which conditional sends exist.
///
/// This is the artifact the paper's non-muteness module is built "from the
/// program text" (§4): `ftm-verify` *derives* the per-peer observer
/// automaton (Fig. 4) from this description and cross-checks it against
/// the hand-written [`ftm_detect::PeerAutomaton`] — so the spec below is
/// deliberately independent of that implementation.
///
/// # Example
///
/// ```
/// use ftm_core::spec::ProtocolSpec;
/// use ftm_certify::MessageKind;
/// let spec = ProtocolSpec::transformed();
/// assert_eq!(spec.opening, Some(MessageKind::Init));
/// assert_eq!(spec.round_slots.len(), 2);
/// assert!(spec.round_slots[1].mandatory); // NEXT before leaving a round
///
/// // The crash-model spec has no opening: nothing certifies round 0.
/// let crash = ProtocolSpec::crash_hr();
/// assert_eq!(crash.opening, None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Which base protocol this spec describes. The transformation is
    /// protocol-generic; everything protocol-specific (the automaton
    /// table, the §5 obligation table, the decision predicate) is keyed
    /// off this id.
    pub protocol: ProtocolId,
    /// The kind that opens a peer's lifetime: sent first, exactly once.
    /// `None` for un-transformed crash-model protocols — the round-0
    /// vector-certification phase is what *adds* an opening.
    pub opening: Option<MessageKind>,
    /// The per-round vote sequence, in send order.
    pub round_slots: Vec<SendSlot>,
    /// The kind that closes a peer's lifetime: legal at any time after the
    /// opening (decisions are relayed), after which the peer is silent.
    pub terminal: MessageKind,
    /// How many rounds a correct process advances at a time.
    pub round_advance: Round,
    /// The conditional-send table (§5 obligation table once transformed).
    pub sends: Vec<ConditionalSend>,
}

impl ProtocolSpec {
    /// The transformed Hurfin–Raynal protocol (Fig. 3): `INIT` opens,
    /// each round sends at most one `CURRENT` then at most one `NEXT`
    /// (the `NEXT` is mandatory before leaving the round, Fig. 3 line 31),
    /// `DECIDE` terminates, rounds advance one at a time.
    ///
    /// The conditional-send table is hand-written from the figure; the CI
    /// gate checks it equals [`transform`]`(`[`ProtocolSpec::crash_hr`]`)`
    /// edge-by-edge, so it is *derived*, not trusted.
    pub fn transformed() -> Self {
        ProtocolSpec {
            protocol: ProtocolId::HurfinRaynal,
            opening: Some(MessageKind::Init),
            round_slots: vec![
                SendSlot {
                    kind: MessageKind::Current,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Next,
                    mandatory: true,
                },
            ],
            terminal: MessageKind::Decide,
            round_advance: 1,
            sends: vec![
                ConditionalSend {
                    id: "init-broadcast",
                    kind: MessageKind::Init,
                    condition: "protocol start: broadcast the signed initial value".into(),
                    route: CertRoute::VectorCertification("init-empty"),
                    carries_value: true,
                    justified_by: vec![],
                },
                ConditionalSend {
                    id: "current-coordinator",
                    kind: MessageKind::Current,
                    condition: "round-r coordinator entered r with a witnessed estimate vector"
                        .into(),
                    route: CertRoute::Rule("current-coordinator"),
                    carries_value: true,
                    justified_by: vec![
                        Justification::initial("init-broadcast"),
                        Justification::prev("next-suspicion"),
                        Justification::prev("next-change-mind"),
                        Justification::prev("next-end-of-round"),
                    ],
                },
                ConditionalSend {
                    id: "current-relay",
                    kind: MessageKind::Current,
                    condition: "received the round-r coordinator's CURRENT and adopted it".into(),
                    route: CertRoute::Rule("current-relay"),
                    carries_value: true,
                    justified_by: vec![
                        Justification::initial("init-broadcast"),
                        Justification::same("current-coordinator"),
                    ],
                },
                ConditionalSend {
                    id: "next-suspicion",
                    kind: MessageKind::Next,
                    condition: "in q0, the muteness detector suspects the round coordinator".into(),
                    route: CertRoute::Rule("next-suspicion"),
                    carries_value: false,
                    justified_by: vec![],
                },
                ConditionalSend {
                    id: "next-change-mind",
                    kind: MessageKind::Next,
                    condition: "in q1, a quorum of votes arrived but no decisive quorum".into(),
                    route: CertRoute::Rule("next-change-mind"),
                    carries_value: false,
                    justified_by: vec![
                        Justification::same("current-coordinator"),
                        Justification::same("current-relay"),
                        Justification::same("next-suspicion"),
                    ],
                },
                ConditionalSend {
                    id: "next-end-of-round",
                    kind: MessageKind::Next,
                    condition: "a full NEXT quorum for the round was observed".into(),
                    route: CertRoute::Rule("next-end-of-round"),
                    carries_value: false,
                    justified_by: vec![
                        Justification::same("next-suspicion"),
                        Justification::same("next-change-mind"),
                    ],
                },
                ConditionalSend {
                    id: "decide-announce",
                    kind: MessageKind::Decide,
                    condition: "a quorum of CURRENT votes for one vector were collected".into(),
                    route: CertRoute::Rule("decide-current-quorum"),
                    carries_value: true,
                    justified_by: vec![
                        Justification::same("current-coordinator"),
                        Justification::same("current-relay"),
                    ],
                },
            ],
        }
    }

    /// The un-transformed Hurfin–Raynal crash protocol (Fig. 2): no
    /// opening kind (round 1 starts immediately — there is no history to
    /// certify), the same CURRENT/NEXT round discipline, `DECIDE`
    /// terminates. Every send is [`CertRoute::Trusted`]: receivers in the
    /// crash model believe what they are told, which is exactly why
    /// classical Validity is vacuous once failures become arbitrary.
    pub fn crash_hr() -> Self {
        ProtocolSpec {
            protocol: ProtocolId::HurfinRaynal,
            opening: None,
            round_slots: vec![
                SendSlot {
                    kind: MessageKind::Current,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Next,
                    mandatory: true,
                },
            ],
            terminal: MessageKind::Decide,
            round_advance: 1,
            sends: vec![
                ConditionalSend {
                    id: "current-coordinator",
                    kind: MessageKind::Current,
                    condition: "round-r coordinator entered r with its estimate".into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![
                        Justification::prev("next-suspicion"),
                        Justification::prev("next-change-mind"),
                        Justification::prev("next-end-of-round"),
                    ],
                },
                ConditionalSend {
                    id: "current-relay",
                    kind: MessageKind::Current,
                    condition: "received the round-r coordinator's CURRENT and adopted it".into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![Justification::same("current-coordinator")],
                },
                ConditionalSend {
                    id: "next-suspicion",
                    kind: MessageKind::Next,
                    condition: "in q0, the crash detector suspects the round coordinator".into(),
                    route: CertRoute::Trusted,
                    carries_value: false,
                    justified_by: vec![],
                },
                ConditionalSend {
                    id: "next-change-mind",
                    kind: MessageKind::Next,
                    condition: "in q1, a majority of votes arrived but no decisive majority".into(),
                    route: CertRoute::Trusted,
                    carries_value: false,
                    justified_by: vec![
                        Justification::same("current-coordinator"),
                        Justification::same("current-relay"),
                        Justification::same("next-suspicion"),
                    ],
                },
                ConditionalSend {
                    id: "next-end-of-round",
                    kind: MessageKind::Next,
                    condition: "a full NEXT majority for the round was observed".into(),
                    route: CertRoute::Trusted,
                    carries_value: false,
                    justified_by: vec![
                        Justification::same("next-suspicion"),
                        Justification::same("next-change-mind"),
                    ],
                },
                ConditionalSend {
                    id: "decide-announce",
                    kind: MessageKind::Decide,
                    condition: "a majority of CURRENT votes for one value were collected".into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![
                        Justification::same("current-coordinator"),
                        Justification::same("current-relay"),
                    ],
                },
            ],
        }
    }

    /// The transformed Chandra–Toueg protocol: `INIT` opens, each round
    /// sends one mandatory `ESTIMATE` (carrying the adoption timestamp),
    /// then at most one coordinator `PROPOSE`, one `ACK` and one `NACK`,
    /// `DECIDE` terminates, rounds advance one at a time.
    ///
    /// The send discipline differs from Hurfin–Raynal in a load-bearing
    /// way: the value-carrying echo (`ACK`) is justified by the round
    /// coordinator's *own signed* `PROPOSE` — a coordinator-echo
    /// discipline — where HR's `CURRENT` relay chain re-certifies the
    /// vector at every hop. As with HR, this table is hand-written and
    /// checked equal to [`transform`]`(`[`ProtocolSpec::crash_ct`]`)`.
    pub fn transformed_ct() -> Self {
        ProtocolSpec {
            protocol: ProtocolId::ChandraToueg,
            opening: Some(MessageKind::Init),
            round_slots: vec![
                SendSlot {
                    kind: MessageKind::Estimate,
                    mandatory: true,
                },
                SendSlot {
                    kind: MessageKind::Propose,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Ack,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Nack,
                    mandatory: false,
                },
            ],
            terminal: MessageKind::Decide,
            round_advance: 1,
            sends: vec![
                ConditionalSend {
                    id: "init-broadcast",
                    kind: MessageKind::Init,
                    condition: "protocol start: broadcast the signed initial value".into(),
                    route: CertRoute::VectorCertification("init-empty"),
                    carries_value: true,
                    justified_by: vec![],
                },
                ConditionalSend {
                    id: "estimate-roundstart",
                    kind: MessageKind::Estimate,
                    condition:
                        "entered round r and re-broadcast a witnessed estimate vector with its \
                         adoption timestamp"
                            .into(),
                    route: CertRoute::Rule("estimate-roundstart"),
                    carries_value: true,
                    justified_by: vec![
                        Justification::initial("init-broadcast"),
                        Justification::prev("ack-echo"),
                        Justification::prev("nack-suspicion"),
                        Justification::prev("propose-coordinator"),
                    ],
                },
                ConditionalSend {
                    id: "propose-coordinator",
                    kind: MessageKind::Propose,
                    condition:
                        "round-r coordinator collected a quorum of ESTIMATE votes and adopted a \
                         maximum-timestamp estimate"
                            .into(),
                    route: CertRoute::Rule("propose-coordinator"),
                    carries_value: true,
                    justified_by: vec![
                        Justification::initial("init-broadcast"),
                        Justification::same("estimate-roundstart"),
                    ],
                },
                ConditionalSend {
                    id: "ack-echo",
                    kind: MessageKind::Ack,
                    condition: "received the round-r coordinator's PROPOSE and echoed it".into(),
                    route: CertRoute::Rule("ack-echo"),
                    carries_value: true,
                    justified_by: vec![
                        Justification::initial("init-broadcast"),
                        Justification::same("propose-coordinator"),
                    ],
                },
                ConditionalSend {
                    id: "nack-suspicion",
                    kind: MessageKind::Nack,
                    condition: "waiting on the proposal, the muteness detector suspects the \
                                round coordinator"
                        .into(),
                    route: CertRoute::Rule("nack-suspicion"),
                    carries_value: false,
                    justified_by: vec![],
                },
                ConditionalSend {
                    id: "decide-announce",
                    kind: MessageKind::Decide,
                    condition: "a quorum of ACK votes for one vector were collected".into(),
                    route: CertRoute::Rule("decide-ack-quorum"),
                    carries_value: true,
                    justified_by: vec![Justification::same("ack-echo")],
                },
            ],
        }
    }

    /// The un-transformed Chandra–Toueg crash protocol (the ◇S rotating
    /// coordinator protocol): no opening kind, a round sends one mandatory
    /// `ESTIMATE`, then at most one coordinator `PROPOSE`, one `ACK`, one
    /// `NACK`; `DECIDE` terminates. Every send is [`CertRoute::Trusted`],
    /// exactly as in [`ProtocolSpec::crash_hr`].
    pub fn crash_ct() -> Self {
        ProtocolSpec {
            protocol: ProtocolId::ChandraToueg,
            opening: None,
            round_slots: vec![
                SendSlot {
                    kind: MessageKind::Estimate,
                    mandatory: true,
                },
                SendSlot {
                    kind: MessageKind::Propose,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Ack,
                    mandatory: false,
                },
                SendSlot {
                    kind: MessageKind::Nack,
                    mandatory: false,
                },
            ],
            terminal: MessageKind::Decide,
            round_advance: 1,
            sends: vec![
                ConditionalSend {
                    id: "estimate-roundstart",
                    kind: MessageKind::Estimate,
                    condition: "entered round r and re-broadcast its estimate with its adoption \
                                timestamp"
                        .into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![
                        Justification::prev("ack-echo"),
                        Justification::prev("nack-suspicion"),
                        Justification::prev("propose-coordinator"),
                    ],
                },
                ConditionalSend {
                    id: "propose-coordinator",
                    kind: MessageKind::Propose,
                    condition: "round-r coordinator collected a majority of ESTIMATE votes and \
                                adopted a maximum-timestamp estimate"
                        .into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![Justification::same("estimate-roundstart")],
                },
                ConditionalSend {
                    id: "ack-echo",
                    kind: MessageKind::Ack,
                    condition: "received the round-r coordinator's PROPOSE and echoed it".into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![Justification::same("propose-coordinator")],
                },
                ConditionalSend {
                    id: "nack-suspicion",
                    kind: MessageKind::Nack,
                    condition: "waiting on the proposal, the crash detector suspects the round \
                                coordinator"
                        .into(),
                    route: CertRoute::Trusted,
                    carries_value: false,
                    justified_by: vec![],
                },
                ConditionalSend {
                    id: "decide-announce",
                    kind: MessageKind::Decide,
                    condition: "a majority of ACK votes for one value were collected".into(),
                    route: CertRoute::Trusted,
                    carries_value: true,
                    justified_by: vec![Justification::same("ack-echo")],
                },
            ],
        }
    }

    /// The hand-written transformed spec for `protocol`.
    pub fn transformed_for(protocol: ProtocolId) -> Self {
        match protocol {
            ProtocolId::HurfinRaynal => ProtocolSpec::transformed(),
            ProtocolId::ChandraToueg => ProtocolSpec::transformed_ct(),
        }
    }

    /// The un-transformed crash-model spec for `protocol`.
    pub fn crash_for(protocol: ProtocolId) -> Self {
        match protocol {
            ProtocolId::HurfinRaynal => ProtocolSpec::crash_hr(),
            ProtocolId::ChandraToueg => ProtocolSpec::crash_ct(),
        }
    }

    /// The transformed spec of `protocol` extended with the replicated
    /// log's certificate-compaction send: once a slot's decision stands,
    /// a `CHECKPOINT` backed by the decide-vote quorum (rule
    /// `checkpoint-quorum`, shared by both protocols) seals the slot, and
    /// the per-round certificate prefix behind it may be discarded.
    ///
    /// The terminal becomes `CHECKPOINT` — in a compacted log the
    /// checkpoint, not the decision announcement, is a peer's last word
    /// on a slot. The checkpoint cites `decide-announce` (its certificate
    /// *is* the quorum the decision rests on), so the base spec's decide
    /// send stays live in the lineage analysis, while the checkpoint
    /// itself is a new justification root
    /// (see [`CertRoute::CheckpointRoot`]).
    pub fn checkpointed_for(protocol: ProtocolId) -> Self {
        let mut spec = ProtocolSpec::transformed_for(protocol);
        spec.terminal = MessageKind::Checkpoint;
        spec.sends.push(ConditionalSend {
            id: "checkpoint-quorum",
            kind: MessageKind::Checkpoint,
            condition: "a log slot decided locally: compact its decide-vote quorum \
                        into a signed checkpoint digest"
                .into(),
            route: CertRoute::CheckpointRoot("checkpoint-quorum"),
            carries_value: true,
            justified_by: vec![Justification::same("decide-announce")],
        });
        spec
    }

    /// The slot index of `kind` in the round vote sequence, if any.
    pub fn slot_of(&self, kind: MessageKind) -> Option<usize> {
        self.round_slots.iter().position(|s| s.kind == kind)
    }

    /// `true` when `kind` appears anywhere in this spec's wire alphabet.
    pub fn knows_kind(&self, kind: MessageKind) -> bool {
        self.opening == Some(kind) || kind == self.terminal || self.slot_of(kind).is_some()
    }

    /// Every conditional send with its certification route.
    ///
    /// For the transformed spec this is the §5 obligation table:
    /// `ftm-verify` checks that each route's rule exists in `ftm-certify`
    /// (same kind, no dead rules) and that the *only* send whose condition
    /// is uncertifiable is the initial-value broadcast, routed through
    /// vector certification.
    pub fn conditional_sends(&self) -> Vec<ConditionalSend> {
        self.sends.clone()
    }

    /// The send with the given id, if any.
    pub fn send(&self, id: &str) -> Option<&ConditionalSend> {
        self.sends.iter().find(|s| s.id == id)
    }
}

/// The §5 certification-obligation table of the transformation: which
/// `ftm-certify` rule each crash-model send is routed through. The paper
/// is explicit that certificate *design* is protocol-specific — this table
/// is that design, and [`transform`] is its mechanical application.
pub const OBLIGATIONS: &[(&str, &str)] = &[
    ("current-coordinator", "current-coordinator"),
    ("current-relay", "current-relay"),
    ("next-suspicion", "next-suspicion"),
    ("next-change-mind", "next-change-mind"),
    ("next-end-of-round", "next-end-of-round"),
    ("decide-announce", "decide-current-quorum"),
];

/// The §5 certification-obligation table for Chandra–Toueg: same shape as
/// [`OBLIGATIONS`], different certificate design — the `ack-echo` rule
/// demands the coordinator's *own* signed `PROPOSE` (a one-hop echo) where
/// HR's relay rule re-derives the quorum at every hop.
pub const OBLIGATIONS_CT: &[(&str, &str)] = &[
    ("estimate-roundstart", "estimate-roundstart"),
    ("propose-coordinator", "propose-coordinator"),
    ("ack-echo", "ack-echo"),
    ("nack-suspicion", "nack-suspicion"),
    ("decide-announce", "decide-ack-quorum"),
];

/// The obligation table for `protocol`.
pub fn obligations_for(protocol: ProtocolId) -> &'static [(&'static str, &'static str)] {
    match protocol {
        ProtocolId::HurfinRaynal => OBLIGATIONS,
        ProtocolId::ChandraToueg => OBLIGATIONS_CT,
    }
}

/// The vocabulary substitutions the module stack performs on send
/// conditions, applied left to right:
///
/// * module 2 replaces the crash detector with the muteness detector ◇M;
/// * module 4 replaces crash majorities (`⌈(n+1)/2⌉`) with certificate
///   quorums (`n − F`);
/// * module 5 replaces bare values with certified estimate vectors.
pub const VOCABULARY: &[(&str, &str)] = &[
    ("crash detector", "muteness detector"),
    ("majority", "quorum"),
    ("its estimate", "a witnessed estimate vector"),
    ("one value", "one vector"),
];

/// Applies the paper's module stack to an un-transformed spec, producing
/// the Byzantine-resilient spec mechanically:
///
/// 1. **Vector certification (module 5)** adds the `INIT` opening and the
///    `init-broadcast` send — initial values become a certified vector —
///    and re-roots the value lineage: every value-carrying *round-slot*
///    send gains round-0 `init-broadcast` backing (the terminal relays an
///    already-quorum-backed vector and needs no direct backing).
/// 2. **Certification (module 4)** replaces every [`CertRoute::Trusted`]
///    route with the certified route from the [`OBLIGATIONS`] table.
/// 3. Both modules rewrite the condition wording through [`VOCABULARY`]
///    (crash detector → muteness detector, majority → quorum,
///    values → certified vectors).
///
/// The round discipline itself (slots, mandatory flags, advance) is
/// untouched: the transformation adds auditability, not new protocol
/// structure — which is precisely what the refinement check then verifies.
///
/// # Panics
///
/// Panics when `spec` already has an opening (it is already transformed)
/// or when a send is missing from the obligation table — both are
/// configuration errors, not runtime conditions.
pub fn transform(spec: &ProtocolSpec) -> ProtocolSpec {
    assert!(
        spec.opening.is_none(),
        "transform() takes an un-transformed spec; this one already opens with {:?}",
        spec.opening
    );

    let reword = |condition: &str| -> String {
        let mut out = condition.to_string();
        for (from, to) in VOCABULARY {
            out = out.replace(from, to);
        }
        out
    };

    let mut sends = vec![ConditionalSend {
        id: "init-broadcast",
        kind: MessageKind::Init,
        condition: "protocol start: broadcast the signed initial value".into(),
        route: CertRoute::VectorCertification("init-empty"),
        carries_value: true,
        justified_by: vec![],
    }];

    let obligations = obligations_for(spec.protocol);
    for send in &spec.sends {
        let (_, rule) = obligations
            .iter()
            .find(|(id, _)| *id == send.id)
            .unwrap_or_else(|| panic!("send `{}` has no certification obligation", send.id));
        let mut justified_by = Vec::new();
        if send.carries_value && spec.slot_of(send.kind).is_some() {
            justified_by.push(Justification::initial("init-broadcast"));
        }
        justified_by.extend(send.justified_by.iter().copied());
        sends.push(ConditionalSend {
            id: send.id,
            kind: send.kind,
            condition: reword(&send.condition),
            route: CertRoute::Rule(rule),
            carries_value: send.carries_value,
            justified_by,
        });
    }

    ProtocolSpec {
        protocol: spec.protocol,
        opening: Some(MessageKind::Init),
        round_slots: spec.round_slots.clone(),
        terminal: spec.terminal,
        round_advance: spec.round_advance,
        sends,
    }
}

/// Resilience parameters of a system instance.
///
/// # Example
///
/// ```
/// use ftm_core::spec::Resilience;
/// let r = Resilience::new(7, 2);
/// assert_eq!(r.quorum(), 5);       // n − F
/// assert_eq!(r.psi(), 3);          // n − 2F correct entries guaranteed
/// assert_eq!(r.default_cert_capacity(), 2); // ⌊(n−1)/3⌋
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    n: usize,
    f: usize,
}

impl Resilience {
    /// Creates resilience parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 2` and `f ≤ ⌊(n−1)/2⌋` — the transformed
    /// protocol's stated bound `F ≤ min(⌊(n−1)/2⌋, C)`; the `C` part is
    /// the certification capacity, checked by callers who model it.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        assert!(
            f <= crate::quorum::max_faults(n),
            "F = {f} exceeds ⌊(n−1)/2⌋ = {}",
            crate::quorum::max_faults(n)
        );
        Resilience { n, f }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tolerated faulty processes `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Quorum `n − F` (replaces the crash model's majority `⌈(n+1)/2⌉`).
    pub fn quorum(&self) -> usize {
        crate::quorum::quorum_size(self.n, self.f)
    }

    /// Guaranteed correct entries in a decided vector: `ψ = n − 2F ≥ 1`.
    pub fn psi(&self) -> usize {
        crate::quorum::vector_validity_floor(self.n, self.f)
    }

    /// The capacity `C` of the usual certification mechanisms,
    /// `⌊(n−1)/3⌋` (paper footnote 2).
    pub fn default_cert_capacity(&self) -> usize {
        crate::quorum::default_cert_capacity(self.n)
    }

    /// The round-`r` coordinator (0-based rotating coordinator).
    ///
    /// # Panics
    ///
    /// Panics for round 0.
    pub fn coordinator(&self, round: Round) -> usize {
        assert!(round >= 1, "round 0 has no coordinator");
        ((round - 1) % self.n as u64) as usize
    }

    /// Majority threshold of the *crash* protocol: smallest count strictly
    /// greater than `n/2`.
    pub fn crash_majority(&self) -> usize {
        self.n / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_psi_majority() {
        let r = Resilience::new(4, 1);
        assert_eq!(r.quorum(), 3);
        assert_eq!(r.psi(), 2);
        assert_eq!(r.crash_majority(), 3);
        assert_eq!(r.default_cert_capacity(), 1);
    }

    #[test]
    fn psi_is_at_least_one() {
        let r = Resilience::new(3, 1);
        assert_eq!(r.psi(), 1);
    }

    #[test]
    fn coordinator_rotates_zero_based() {
        let r = Resilience::new(3, 1);
        assert_eq!(r.coordinator(1), 0);
        assert_eq!(r.coordinator(3), 2);
        assert_eq!(r.coordinator(4), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn bound_is_enforced() {
        let _ = Resilience::new(4, 2);
    }

    #[test]
    fn odd_n_allows_floor_half() {
        let r = Resilience::new(7, 3);
        assert_eq!(r.quorum(), 4);
        assert_eq!(r.psi(), 1);
    }

    #[test]
    fn transformed_spec_names_every_wire_kind_once() {
        let spec = ProtocolSpec::transformed();
        assert_eq!(spec.opening, Some(MessageKind::Init));
        assert_eq!(spec.terminal, MessageKind::Decide);
        assert_eq!(spec.slot_of(MessageKind::Current), Some(0));
        assert_eq!(spec.slot_of(MessageKind::Next), Some(1));
        assert_eq!(spec.slot_of(MessageKind::Init), None);
        // The opening and terminal kinds never appear as round slots.
        assert!(spec
            .round_slots
            .iter()
            .all(|s| Some(s.kind) != spec.opening && s.kind != spec.terminal));
        // The last slot is the mandatory one: leaving a round is witnessed.
        assert!(spec.round_slots.last().unwrap().mandatory);
    }

    #[test]
    fn conditional_sends_are_distinct_and_init_is_the_only_uncertifiable() {
        let spec = ProtocolSpec::transformed();
        let sends = spec.conditional_sends();
        let ids: std::collections::BTreeSet<&str> = sends.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), sends.len(), "send ids collide");
        let rules: std::collections::BTreeSet<&str> =
            sends.iter().filter_map(|s| s.route.rule_id()).collect();
        assert_eq!(rules.len(), sends.len(), "rule references collide");
        for s in &sends {
            if !s.route.condition_certifiable() {
                assert_eq!(
                    Some(s.kind),
                    spec.opening,
                    "only initial values are uncertifiable"
                );
            }
        }
    }

    #[test]
    fn crash_spec_is_the_transformed_spec_minus_auditability() {
        let crash = ProtocolSpec::crash_hr();
        let trans = ProtocolSpec::transformed();
        assert_eq!(crash.opening, None);
        assert_eq!(crash.round_slots, trans.round_slots);
        assert_eq!(crash.terminal, trans.terminal);
        assert_eq!(crash.round_advance, trans.round_advance);
        assert!(crash.sends.iter().all(|s| s.route == CertRoute::Trusted));
        assert_eq!(crash.sends.len() + 1, trans.sends.len());
    }

    #[test]
    fn transform_reproduces_the_hand_written_transformed_spec() {
        let derived = transform(&ProtocolSpec::crash_hr());
        let hand = ProtocolSpec::transformed();
        assert_eq!(derived.opening, hand.opening);
        assert_eq!(derived.round_slots, hand.round_slots);
        assert_eq!(derived.terminal, hand.terminal);
        assert_eq!(derived.round_advance, hand.round_advance);
        for (d, h) in derived.sends.iter().zip(hand.sends.iter()) {
            assert_eq!(d, h, "send `{}` diverges from the hand-written table", h.id);
        }
        assert_eq!(derived, hand);
    }

    #[test]
    #[should_panic(expected = "already opens")]
    fn transforming_twice_is_rejected() {
        let _ = transform(&ProtocolSpec::transformed());
    }

    #[test]
    fn ct_transformed_spec_names_every_wire_kind_once() {
        let spec = ProtocolSpec::transformed_ct();
        assert_eq!(spec.protocol, ProtocolId::ChandraToueg);
        assert_eq!(spec.opening, Some(MessageKind::Init));
        assert_eq!(spec.terminal, MessageKind::Decide);
        assert_eq!(spec.slot_of(MessageKind::Estimate), Some(0));
        assert_eq!(spec.slot_of(MessageKind::Propose), Some(1));
        assert_eq!(spec.slot_of(MessageKind::Ack), Some(2));
        assert_eq!(spec.slot_of(MessageKind::Nack), Some(3));
        assert!(spec
            .round_slots
            .iter()
            .all(|s| Some(s.kind) != spec.opening && s.kind != spec.terminal));
        // CT's mandatory slot is the *first* one: every round opens with
        // an ESTIMATE re-broadcast, the coordinator-echo tail is optional.
        assert!(spec.round_slots[0].mandatory);
        assert!(spec.round_slots[1..].iter().all(|s| !s.mandatory));
    }

    #[test]
    fn ct_conditional_sends_are_distinct_and_init_is_the_only_uncertifiable() {
        let spec = ProtocolSpec::transformed_ct();
        let sends = spec.conditional_sends();
        let ids: std::collections::BTreeSet<&str> = sends.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), sends.len(), "send ids collide");
        let rules: std::collections::BTreeSet<&str> =
            sends.iter().filter_map(|s| s.route.rule_id()).collect();
        assert_eq!(rules.len(), sends.len(), "rule references collide");
        for s in &sends {
            if !s.route.condition_certifiable() {
                assert_eq!(
                    Some(s.kind),
                    spec.opening,
                    "only initial values are uncertifiable"
                );
            }
        }
    }

    #[test]
    fn ct_crash_spec_is_the_transformed_spec_minus_auditability() {
        let crash = ProtocolSpec::crash_ct();
        let trans = ProtocolSpec::transformed_ct();
        assert_eq!(crash.opening, None);
        assert_eq!(crash.round_slots, trans.round_slots);
        assert_eq!(crash.terminal, trans.terminal);
        assert_eq!(crash.round_advance, trans.round_advance);
        assert!(crash.sends.iter().all(|s| s.route == CertRoute::Trusted));
        assert_eq!(crash.sends.len() + 1, trans.sends.len());
    }

    #[test]
    fn transform_reproduces_the_hand_written_ct_spec() {
        let derived = transform(&ProtocolSpec::crash_ct());
        let hand = ProtocolSpec::transformed_ct();
        for (d, h) in derived.sends.iter().zip(hand.sends.iter()) {
            assert_eq!(d, h, "send `{}` diverges from the hand-written table", h.id);
        }
        assert_eq!(derived, hand);
    }

    #[test]
    fn protocol_selectors_agree_with_the_named_constructors() {
        for p in ProtocolId::all() {
            assert_eq!(ProtocolSpec::transformed_for(p).protocol, p);
            assert_eq!(ProtocolSpec::crash_for(p).protocol, p);
            assert_eq!(
                transform(&ProtocolSpec::crash_for(p)),
                ProtocolSpec::transformed_for(p)
            );
        }
    }
}
