//! Problem specifications: Consensus and Vector Consensus.
//!
//! The crash-model protocol solves classical consensus:
//!
//! * **Termination** — every correct process eventually decides;
//! * **Agreement** — no two correct processes decide differently;
//! * **Validity** — the decided value was proposed by some process.
//!
//! In the arbitrary-failure model the classical Validity property is
//! vacuous — a faulty process can propose an "irrelevant" value while
//! otherwise behaving correctly, and nobody can tell (paper §1). The
//! transformed protocol therefore solves **Vector Consensus**
//! (Doudou–Schiper Vector Validity):
//!
//! * every process decides a vector `vect` of size `n`;
//! * for every correct `p_i`: `vect[i] = v_i` or `vect[i] = null`;
//! * at least `ψ ≥ 1` entries of `vect` are initial values of correct
//!   processes, with `ψ = n − 2F` under the paper's resilience bound.

use ftm_certify::Round;

/// Resilience parameters of a system instance.
///
/// # Example
///
/// ```
/// use ftm_core::spec::Resilience;
/// let r = Resilience::new(7, 2);
/// assert_eq!(r.quorum(), 5);       // n − F
/// assert_eq!(r.psi(), 3);          // n − 2F correct entries guaranteed
/// assert_eq!(r.default_cert_capacity(), 2); // ⌊(n−1)/3⌋
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resilience {
    n: usize,
    f: usize,
}

impl Resilience {
    /// Creates resilience parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 2` and `f ≤ ⌊(n−1)/2⌋` — the transformed
    /// protocol's stated bound `F ≤ min(⌊(n−1)/2⌋, C)`; the `C` part is
    /// the certification capacity, checked by callers who model it.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n >= 2, "consensus needs at least two processes");
        assert!(
            f <= (n - 1) / 2,
            "F = {f} exceeds ⌊(n−1)/2⌋ = {}",
            (n - 1) / 2
        );
        Resilience { n, f }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tolerated faulty processes `F`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Quorum `n − F` (replaces the crash model's majority `⌈(n+1)/2⌉`).
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// Guaranteed correct entries in a decided vector: `ψ = n − 2F ≥ 1`.
    pub fn psi(&self) -> usize {
        (self.n - 2 * self.f).max(1)
    }

    /// The capacity `C` of the usual certification mechanisms,
    /// `⌊(n−1)/3⌋` (paper footnote 2).
    pub fn default_cert_capacity(&self) -> usize {
        (self.n - 1) / 3
    }

    /// The round-`r` coordinator (0-based rotating coordinator).
    ///
    /// # Panics
    ///
    /// Panics for round 0.
    pub fn coordinator(&self, round: Round) -> usize {
        assert!(round >= 1, "round 0 has no coordinator");
        ((round - 1) % self.n as u64) as usize
    }

    /// Majority threshold of the *crash* protocol: smallest count strictly
    /// greater than `n/2`.
    pub fn crash_majority(&self) -> usize {
        self.n / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_psi_majority() {
        let r = Resilience::new(4, 1);
        assert_eq!(r.quorum(), 3);
        assert_eq!(r.psi(), 2);
        assert_eq!(r.crash_majority(), 3);
        assert_eq!(r.default_cert_capacity(), 1);
    }

    #[test]
    fn psi_is_at_least_one() {
        let r = Resilience::new(3, 1);
        assert_eq!(r.psi(), 1);
    }

    #[test]
    fn coordinator_rotates_zero_based() {
        let r = Resilience::new(3, 1);
        assert_eq!(r.coordinator(1), 0);
        assert_eq!(r.coordinator(3), 2);
        assert_eq!(r.coordinator(4), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn bound_is_enforced() {
        let _ = Resilience::new(4, 2);
    }

    #[test]
    fn odd_n_allows_floor_half() {
        let r = Resilience::new(7, 3);
        assert_eq!(r.quorum(), 4);
        assert_eq!(r.psi(), 1);
    }
}
