//! Event-driven rendering of the transformed Chandra–Toueg protocol: the
//! crash-model ◇S protocol of [`crate::crash::chandra_toueg`] pushed
//! through the same module stack as the Hurfin–Raynal instance.
//!
//! The round discipline is CT's four-phase pattern, made auditable:
//!
//! 1. **ESTIMATE** — every process opens the round by broadcasting its
//!    certified estimate vector with the round in which it was adopted
//!    (`ts`); a `ts > 0` claim must quote the `ts`-round coordinator's
//!    signed `PROPOSE`, so freshness cannot be forged.
//! 2. **PROPOSE** — the round coordinator gathers `n − F` signed
//!    estimates, adopts a maximum-timestamp one, and broadcasts it with
//!    the estimate quorum as certificate (the analyzer re-derives the
//!    adoption rule).
//! 3. **ACK / NACK** — a process that sees the proposal echoes it with an
//!    `ACK` quoting the coordinator's *own signed* `PROPOSE` (the
//!    coordinator-echo discipline: one hop, no re-certification chain,
//!    unlike HR's relayed `CURRENT`s). A process that instead comes to
//!    suspect the coordinator (`suspected ∪ faulty`) broadcasts a
//!    structural `NACK`.
//! 4. **DECIDE** — `n − F` signed `ACK`s for one vector decide it; the
//!    `DECIDE` relays that quorum as its certificate.
//!
//! A quorum of round-`r` `ACK/NACK` votes is the evidence that lets a
//! correct process open round `r + 1` (the CT analogue of HR's `NEXT`
//! portion). Messages are broadcast — every process audits every step,
//! exactly as in the transformed HR instance.

use std::collections::BTreeSet;

use ftm_certify::vector::VectorBuilder;
use ftm_certify::{
    Certificate, Core, Envelope, MessageKind, ProtocolId, Round, SignedCore, Value, ValueVector,
};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::{Actor, Context, Duration, ProcessId, TimerTag};

use crate::config::ProtocolSetup;
use crate::spec::Resilience;
use crate::transform::{Admit, ModuleStack};

const POLL_TIMER: TimerTag = 1;

/// Which part of the protocol the process is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Collecting `n − F` INITs (vector certification).
    VectorCert,
    /// The round loop.
    Rounds,
}

/// One process of the transformed Chandra–Toueg protocol.
///
/// # Example
///
/// ```
/// use ftm_core::byzantine::ByzantineChandraToueg;
/// use ftm_core::config::ProtocolConfig;
/// use ftm_sim::{SimConfig, Simulation};
///
/// let setup = ProtocolConfig::new(4, 1).setup();
/// let report = Simulation::build_boxed(SimConfig::new(4).seed(3), |id| {
///     Box::new(ByzantineChandraToueg::new(&setup, id, id.0 as u64))
/// })
/// .run();
/// assert!(report.all_decided());
/// ```
#[derive(Debug)]
pub struct ByzantineChandraToueg {
    res: Resilience,
    me: ProcessId,
    value: Value,
    keys: KeyPair,
    stack: ModuleStack,
    poll_interval: Duration,
    phase: Phase,
    // Vector-certification phase.
    builder: Option<VectorBuilder>,
    // Round state.
    r: Round,
    est_vect: ValueVector,
    /// INIT backing of `est_vect` (the vector-certification portion).
    est_cert: Certificate,
    /// Round in which `est_vect` was last adopted (0 = initial).
    ts: Round,
    /// The `ts`-round coordinator's signed PROPOSE backing `(est_vect, ts)`
    /// — carried by every later ESTIMATE so the timestamp is auditable.
    ts_backing: Option<SignedCore>,
    /// Round-`r` ESTIMATE envelopes, one per sender (coordinator input).
    estimates: Vec<Envelope>,
    /// Round-`r` signed ACK/NACK items (the round's vote record; a quorum
    /// of distinct voters ends the round and certifies entry into `r+1`).
    vote_cert: Certificate,
    /// The ACK/NACK quorum that justified entering round `r`.
    entry_cert: Certificate,
    /// The round coordinator's signed PROPOSE, once adopted.
    proposed: Option<SignedCore>,
    sent_propose: bool,
    sent_ack: bool,
    sent_nack: bool,
    buffered: Vec<(ProcessId, Envelope)>,
    decided: bool,
    /// The decide-vote quorum (ACK items) this decision rests on, kept
    /// after halting so the log layer can compact it into a checkpoint
    /// (see `ftm_certify::checkpoint`).
    decide_evidence: Option<Certificate>,
}

impl ByzantineChandraToueg {
    /// Creates a process proposing `value`.
    ///
    /// # Panics
    ///
    /// Panics if `me` has no key pair in `setup`.
    pub fn new(setup: &ProtocolSetup, me: ProcessId, value: Value) -> Self {
        let res = setup.resilience;
        ByzantineChandraToueg {
            res,
            me,
            value,
            keys: setup.keys[me.index()].clone(),
            stack: ModuleStack::for_setup(ProtocolId::ChandraToueg, setup),
            poll_interval: setup.config.poll_interval,
            phase: Phase::VectorCert,
            builder: Some(VectorBuilder::new(res.n(), res.f())),
            r: 0,
            est_vect: ValueVector::empty(res.n()),
            est_cert: Certificate::new(),
            ts: 0,
            ts_backing: None,
            estimates: Vec::new(),
            vote_cert: Certificate::new(),
            entry_cert: Certificate::new(),
            proposed: None,
            sent_propose: false,
            sent_ack: false,
            sent_nack: false,
            buffered: Vec::new(),
            decided: false,
            decide_evidence: None,
        }
    }

    /// Read access to the module stack (evidence logs, detector state).
    pub fn stack(&self) -> &ModuleStack {
        &self.stack
    }

    /// The ACK quorum backing this process's decision, once decided.
    pub fn decide_evidence(&self) -> Option<&Certificate> {
        self.decide_evidence.as_ref()
    }

    fn quorum(&self) -> usize {
        self.res.quorum()
    }

    fn coordinator(&self) -> ProcessId {
        ProcessId(self.res.coordinator(self.r) as u32)
    }

    /// Signs and broadcasts a message (the transformed send path: the
    /// certification module appends `cert`, the signature module signs).
    fn send_all(
        &self,
        core: Core,
        cert: Certificate,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        ctx.broadcast(Envelope::make(self.me, core, cert, &self.keys));
    }

    /// Signs `core` standalone — used when a signed item must join a local
    /// certificate before the broadcast copy self-delivers (the signature
    /// is deterministic, so both copies are byte-identical and the
    /// certificate deduplicates them).
    fn sign(&self, core: Core) -> SignedCore {
        SignedCore::sign(ftm_certify::MessageCore::new(self.me, core), &self.keys)
    }

    /// Phase 1: open round `r + 1` with the mandatory ESTIMATE broadcast.
    fn begin_round(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        // The ACK/NACK quorum that ended the previous round becomes the
        // round-entry evidence for this one.
        self.entry_cert = std::mem::take(&mut self.vote_cert);
        self.r += 1;
        self.estimates.clear();
        self.proposed = None;
        self.sent_propose = false;
        self.sent_ack = false;
        self.sent_nack = false;
        self.stack.enter_round(self.r, ctx.now());
        ctx.note(format!("round={}", self.r));
        // Per-round stack snapshot (last note per process wins in the
        // harness) — see `ByzantineConsensus::begin_round`.
        ctx.note(self.stack.stats_note());
        let mut cert = self.est_cert.union(&self.entry_cert);
        if let Some(backing) = &self.ts_backing {
            cert.insert(backing.clone());
        }
        self.send_all(
            Core::Estimate {
                round: self.r,
                vector: self.est_vect.clone(),
                ts: self.ts,
            },
            cert,
            ctx,
        );
        self.drain_buffer(ctx);
    }

    fn drain_buffer(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        loop {
            if self.decided {
                return;
            }
            let r = self.r;
            let Some(pos) = self
                .buffered
                .iter()
                .position(|(_, env)| env.round() == r && env.kind() != MessageKind::Init)
            else {
                return;
            };
            let (from, env) = self.buffered.remove(pos);
            self.handle_admitted(from, env, ctx);
        }
    }

    /// Decide, relay, stop (the reliable-broadcast echo of CT's phase 4).
    fn decide(
        &mut self,
        round: Round,
        vector: ValueVector,
        cert: Certificate,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        self.decided = true;
        self.decide_evidence = Some(cert.clone());
        self.send_all(
            Core::Decide {
                round,
                vector: vector.clone(),
            },
            cert,
            ctx,
        );
        ctx.note(self.stack.stats_note());
        ctx.decide(vector);
        ctx.halt();
    }

    /// Phase 2: the coordinator adopts a maximum-timestamp estimate from
    /// its quorum and broadcasts the proposal, then echoes its own ACK.
    fn propose(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        debug_assert!(!self.sent_propose);
        let max_ts = self
            .estimates
            .iter()
            .filter_map(|e| match e.core() {
                Core::Estimate { ts, .. } => Some(*ts),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let Some(adopted) = self
            .estimates
            .iter()
            .find(|e| matches!(e.core(), Core::Estimate { ts, .. } if *ts == max_ts))
            .cloned()
        else {
            return; // propose() only fires on a nonempty estimate quorum
        };
        let Core::Estimate { vector, .. } = adopted.core() else {
            unreachable!("estimates holds only ESTIMATE envelopes");
        };
        self.est_vect = vector.clone();
        self.est_cert = adopted.cert.init_portion();
        // The proposal's certificate: the estimate quorum (the analyzer
        // re-derives the max-ts adoption from it) plus the adopted
        // vector's INIT backing.
        let mut cert = self.est_cert.clone();
        for e in &self.estimates {
            cert.insert(e.signed.clone());
        }
        let own = self.sign(Core::Propose {
            round: self.r,
            vector: self.est_vect.clone(),
        });
        self.ts = self.r;
        self.ts_backing = Some(own.clone());
        self.proposed = Some(own.clone());
        self.sent_propose = true;
        self.send_all(
            Core::Propose {
                round: self.r,
                vector: self.est_vect.clone(),
            },
            cert,
            ctx,
        );
        // Phase 3, coordinator side: echo the own proposal.
        self.ack(own, ctx);
    }

    /// Phase 3: echo `propose` (the coordinator's signed PROPOSE) with an
    /// ACK whose certificate is exactly that one item.
    fn ack(&mut self, propose: SignedCore, ctx: &mut Context<'_, Envelope, ValueVector>) {
        debug_assert!(!self.sent_ack && !self.sent_nack);
        let core = Core::Ack {
            round: self.r,
            vector: self.est_vect.clone(),
        };
        self.vote_cert.insert(self.sign(core.clone()));
        self.sent_ack = true;
        self.send_all(core, Certificate::from_items([propose]), ctx);
        self.after_vote(ctx);
    }

    /// Phase 3, negative branch: the coordinator is suspected or faulty.
    fn nack(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        debug_assert!(!self.sent_ack && !self.sent_nack);
        let core = Core::Nack { round: self.r };
        self.vote_cert.insert(self.sign(core.clone()));
        self.sent_nack = true;
        self.send_all(core, Certificate::new(), ctx);
        self.after_vote(ctx);
    }

    /// The round-`r` ACK items endorsing exactly one vector, if any vector
    /// has reached a quorum of distinct ack senders.
    fn ack_quorum(&self) -> Option<(ValueVector, Certificate)> {
        let vectors: Vec<ValueVector> = self
            .vote_cert
            .iter_kind_round(MessageKind::Ack, self.r)
            .filter_map(|i| i.core().core.vector().cloned())
            .collect();
        for vector in vectors {
            let matching = Certificate::from_items(
                self.vote_cert
                    .iter_kind_round(MessageKind::Ack, self.r)
                    .filter(|i| i.core().core.vector() == Some(&vector))
                    .cloned(),
            );
            let senders: BTreeSet<ProcessId> = matching.iter().map(SignedCore::sender).collect();
            if senders.len() >= self.quorum() {
                return Some((vector, matching));
            }
        }
        None
    }

    /// Phase 4 checks after every recorded vote: decide on an ACK quorum,
    /// or advance the round once a full vote quorum shows it cannot decide
    /// at this process anymore.
    fn after_vote(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        if self.decided {
            return;
        }
        if let Some((vector, matching)) = self.ack_quorum() {
            self.decide(self.r, vector, matching, ctx);
            return;
        }
        if self.vote_cert.ct_votes(self.r).len() >= self.quorum() {
            self.begin_round(ctx);
        }
    }

    fn handle_admitted(
        &mut self,
        from: ProcessId,
        env: Envelope,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        match env.core().clone() {
            Core::Init { .. } => {
                if self.phase != Phase::VectorCert {
                    return; // late INIT beyond the n − F we waited for
                }
                let Some(builder) = self.builder.as_mut() else {
                    return; // VectorCert phase always carries a live builder
                };
                builder.absorb(&env);
                if builder.complete() {
                    let Some(done) = self.builder.take() else {
                        return;
                    };
                    let (vect, cert) = done.finish();
                    self.est_vect = vect;
                    self.est_cert = cert;
                    self.phase = Phase::Rounds;
                    ctx.note(format!("vector-certified vect={:?}", self.est_vect));
                    self.begin_round(ctx);
                }
            }
            Core::Estimate { round, .. } => {
                if self.phase != Phase::Rounds || round > self.r {
                    self.buffered.push((from, env));
                    return;
                }
                if round < self.r {
                    return; // stale estimate, discarded
                }
                if self.estimates.iter().any(|e| e.sender() == from) {
                    return; // the stack already convicts duplicates
                }
                self.estimates.push(env);
                if self.me == self.coordinator()
                    && !self.sent_propose
                    && self.estimates.len() >= self.quorum()
                {
                    self.propose(ctx);
                }
            }
            Core::Propose { round, .. } => {
                if self.phase != Phase::Rounds || round > self.r {
                    self.buffered.push((from, env));
                    return;
                }
                if round < self.r {
                    return;
                }
                // The analyzer admitted it, so `from` is the coordinator.
                if self.proposed.is_none() {
                    self.proposed = Some(env.signed.clone());
                }
                if self.sent_ack || self.sent_nack || self.me == self.coordinator() {
                    return; // already voted (or it is our own echo)
                }
                // Adopt the proposal and echo it.
                if let Core::Propose { vector, .. } = env.core() {
                    self.est_vect = vector.clone();
                    self.est_cert = env.cert.init_portion();
                    self.ts = self.r;
                    self.ts_backing = Some(env.signed.clone());
                }
                self.ack(env.signed.clone(), ctx);
            }
            Core::Ack { round, .. } | Core::Nack { round } => {
                if self.phase != Phase::Rounds || round > self.r {
                    self.buffered.push((from, env));
                    return;
                }
                if round < self.r {
                    return;
                }
                self.vote_cert.insert(env.signed.clone());
                self.after_vote(ctx);
            }
            Core::Decide { round, vector } => {
                // Relay with the same certificate and decide.
                self.decide(round, vector, env.cert.clone(), ctx);
            }
            Core::Current { .. } | Core::Next { .. } => {
                // Hurfin–Raynal kinds: the observer convicts them as
                // outside Chandra–Toueg's alphabet before admission.
                debug_assert!(false, "CT stack admitted an HR-kind message");
            }
            Core::Checkpoint { .. } => {
                // Log-layer compaction metadata: valid (the analyzer
                // audited its quorum), but a single consensus instance has
                // nothing to do with it — slot retention is the
                // `ReplicatedLog`'s business.
            }
        }
    }
}

impl Actor for ByzantineChandraToueg {
    type Msg = Envelope;
    type Decision = ValueVector;

    fn on_start(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        self.send_all(Core::Init { value: self.value }, Certificate::new(), ctx);
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        env: &Envelope,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        if self.decided {
            return;
        }
        let was_faulty = self.stack.is_faulty(env.sender());
        match self.stack.admit(from, env, ctx.now()) {
            Admit::Accepted(_trigger) => self.handle_admitted(from, env.clone(), ctx),
            Admit::Discarded(e) => {
                // Quarantine drops (peer already convicted) are not fresh
                // detections — see `ByzantineConsensus::on_message`.
                if !was_faulty {
                    ctx.note(format!(
                        "detected={} class={} reason={}",
                        e.culprit, e.class, e.reason
                    ));
                } else {
                    self.stack.record_quarantine();
                }
            }
        }
    }

    fn on_timer(&mut self, _tag: TimerTag, ctx: &mut Context<'_, Envelope, ValueVector>) {
        if self.decided {
            return;
        }
        // CT's phase-3 escape hatch, with the transformed guard:
        // upon p_c ∈ (suspected ∪ faulty) while awaiting the proposal.
        if self.phase == Phase::Rounds
            && self.me != self.coordinator()
            && self.proposed.is_none()
            && !self.sent_ack
            && !self.sent_nack
        {
            let coord = self.coordinator();
            if self.stack.suspected_or_faulty(coord, ctx.now()) {
                ctx.note(format!("suspect={} r={}", coord, self.r));
                self.nack(ctx);
            }
        }
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ftm_sim::{RunReport, SimConfig, Simulation, VirtualTime};

    fn run(n: usize, f: usize, seed: u64, crashes: &[(usize, u64)]) -> RunReport<ValueVector> {
        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        Simulation::build_boxed(cfg, |id| {
            Box::new(ByzantineChandraToueg::new(&setup, id, 100 + id.0 as u64))
        })
        .run()
    }

    #[test]
    fn all_honest_processes_decide_the_same_vector() {
        let report = run(4, 1, 1, &[]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement");
        assert!(vect.non_null_count() >= 3);
        for (k, v) in vect.iter_set() {
            assert_eq!(v, 100 + k as u64);
        }
    }

    #[test]
    fn agreement_across_seeds() {
        for seed in 0..15 {
            let report = run(4, 1, seed, &[]);
            assert!(report.all_decided(), "seed {seed} stop={:?}", report.stop);
            assert!(report.unanimous().is_some(), "seed {seed}");
            assert!(report.contradictions.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn crash_of_coordinator_is_survived() {
        // p0 coordinates round 1; its muteness forces a NACK round.
        let report = run(4, 1, 7, &[(0, 0)]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement among survivors");
        assert_eq!(vect.get(0), None);
        assert!(vect.non_null_count() >= 3);
    }

    #[test]
    fn crash_mid_protocol_is_survived() {
        for seed in 0..10 {
            let report = run(5, 2, seed, &[(1, 60)]);
            assert!(report.all_decided(), "seed {seed} stop={:?}", report.stop);
            assert!(report.unanimous().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn larger_system_still_decides() {
        let report = run(7, 3, 2, &[]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement");
        assert!(vect.non_null_count() >= 4); // n − F
    }

    #[test]
    fn no_honest_process_is_ever_convicted() {
        let report = run(5, 2, 3, &[]);
        assert!(report.all_decided());
        for p in 0..5u32 {
            let notes = report.trace.notes_of(ProcessId(p));
            assert!(
                notes.iter().all(|n| !n.starts_with("detected=")),
                "p{p} convicted someone in an all-honest run: {notes:?}"
            );
        }
    }

    #[test]
    fn three_processes_one_fault_works() {
        let report = run(3, 1, 4, &[(2, 0)]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement");
        assert!(vect.non_null_count() >= 2);
    }
}
