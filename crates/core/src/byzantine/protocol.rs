//! Event-driven rendering of the transformed consensus (paper Fig. 3).
//!
//! Line-number comments reference Fig. 3. The structural differences from
//! the crash protocol (Fig. 2) are exactly the paper's gray-shaded parts:
//! the INIT phase, certificates on every send, the module-stack receive
//! pipeline, quorums of `n − F`, and the `suspected ∪ faulty` guard.

use ftm_certify::vector::VectorBuilder;
use ftm_certify::{
    Certificate, Core, Envelope, MessageKind, Round, SignedCore, Value, ValueVector,
};
use ftm_crypto::rsa::KeyPair;
use ftm_sim::{Actor, Context, Duration, ProcessId, TimerTag};

use crate::config::ProtocolSetup;
use crate::spec::Resilience;
use crate::transform::rules::{change_mind_from_certificates, state_from_certificates, PaperState};
use crate::transform::{Admit, ModuleStack};

const POLL_TIMER: TimerTag = 1;

/// Which part of the protocol the process is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Lines 4–9: collecting `n − F` INITs.
    VectorCert,
    /// Lines 10–32: the round loop.
    Rounds,
}

/// One process of the transformed protocol.
///
/// # Example
///
/// ```
/// use ftm_core::byzantine::ByzantineConsensus;
/// use ftm_core::config::ProtocolConfig;
/// use ftm_sim::{SimConfig, Simulation};
///
/// let setup = ProtocolConfig::new(4, 1).setup();
/// let report = Simulation::build_boxed(SimConfig::new(4).seed(3), |id| {
///     Box::new(ByzantineConsensus::new(&setup, id, id.0 as u64))
/// })
/// .run();
/// assert!(report.all_decided());
/// ```
#[derive(Debug)]
pub struct ByzantineConsensus {
    res: Resilience,
    me: ProcessId,
    value: Value,
    keys: KeyPair,
    stack: ModuleStack,
    poll_interval: Duration,
    phase: Phase,
    // Vector-certification phase (lines 4–9).
    builder: Option<VectorBuilder>,
    // Round state (lines 10–32).
    r: Round,
    est_vect: ValueVector,
    est_cert: Certificate,
    current_cert: Certificate,
    next_cert: Certificate,
    /// The `n − F` NEXT(r−1) items that justified entering round `r`
    /// (carried by our first sends of the round as round-entry evidence).
    entry_cert: Certificate,
    /// The coordinator's signed CURRENT for this round, once seen
    /// (needed to certify relays, line 19).
    coord_core: Option<SignedCore>,
    sent_next: bool,
    buffered: Vec<(ProcessId, Envelope)>,
    decided: bool,
    /// The decide-vote quorum (CURRENT items) this decision rests on,
    /// kept after halting so the log layer can compact it into a
    /// checkpoint (see `ftm_certify::checkpoint`).
    decide_evidence: Option<Certificate>,
}

impl ByzantineConsensus {
    /// Creates a process proposing `value`.
    ///
    /// # Panics
    ///
    /// Panics if `me` has no key pair in `setup`.
    pub fn new(setup: &ProtocolSetup, me: ProcessId, value: Value) -> Self {
        let res = setup.resilience;
        ByzantineConsensus {
            res,
            me,
            value,
            keys: setup.keys[me.index()].clone(),
            stack: ModuleStack::for_setup(ftm_certify::ProtocolId::HurfinRaynal, setup),
            poll_interval: setup.config.poll_interval,
            phase: Phase::VectorCert,
            builder: Some(VectorBuilder::new(res.n(), res.f())),
            r: 0,
            est_vect: ValueVector::empty(res.n()),
            est_cert: Certificate::new(),
            current_cert: Certificate::new(),
            next_cert: Certificate::new(),
            entry_cert: Certificate::new(),
            coord_core: None,
            sent_next: false,
            buffered: Vec::new(),
            decided: false,
            decide_evidence: None,
        }
    }

    /// Read access to the module stack (evidence logs, detector state).
    pub fn stack(&self) -> &ModuleStack {
        &self.stack
    }

    /// The CURRENT quorum backing this process's decision, once decided.
    pub fn decide_evidence(&self) -> Option<&Certificate> {
        self.decide_evidence.as_ref()
    }

    fn quorum(&self) -> usize {
        self.res.quorum()
    }

    fn coordinator(&self) -> ProcessId {
        ProcessId(self.res.coordinator(self.r) as u32)
    }

    /// Signs and broadcasts a message, mirroring the send path of Fig. 1
    /// (certification module appends `cert`, signature module signs).
    fn send_all(
        &self,
        core: Core,
        cert: Certificate,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        ctx.broadcast(Envelope::make(self.me, core, cert, &self.keys));
    }

    /// The paper's certificate-derived state expression (§5.1) — asserted
    /// against the explicit flags at every use.
    fn derived_state(&self) -> PaperState {
        state_from_certificates(
            self.current_cert.count(MessageKind::Current, self.r),
            self.sent_next,
        )
    }

    /// Lines 11–13: open round `r + 1`.
    fn begin_round(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        // The NEXT quorum that ended the previous round becomes the
        // round-entry evidence for this one (the paper's "r is certified
        // by next_cert before it is reset").
        self.entry_cert = std::mem::take(&mut self.next_cert);
        self.r += 1;
        self.current_cert = Certificate::new();
        self.coord_core = None;
        self.sent_next = false;
        self.stack.enter_round(self.r, ctx.now());
        ctx.note(format!("round={}", self.r));
        // Per-round stack snapshot: the harness keeps the *last* note per
        // process, so churn under adverse networks is visible even when
        // the run never decides.
        ctx.note(self.stack.stats_note());
        debug_assert_eq!(self.derived_state(), PaperState::Q0);
        if self.me == self.coordinator() {
            // Line 12: the coordinator proposes its certified vector,
            // certified by est_cert ∪ next_cert (entry evidence).
            self.send_all(
                Core::Current {
                    round: self.r,
                    vector: self.est_vect.clone(),
                },
                self.est_cert.union(&self.entry_cert),
                ctx,
            );
        }
        self.drain_buffer(ctx);
    }

    fn drain_buffer(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        loop {
            if self.decided {
                return;
            }
            let r = self.r;
            let Some(pos) = self
                .buffered
                .iter()
                .position(|(_, env)| env.round() == r && env.kind() != MessageKind::Init)
            else {
                return;
            };
            let (from, env) = self.buffered.remove(pos);
            self.handle_admitted(from, env, ctx);
        }
    }

    /// Vote NEXT exactly once per round; the own signed NEXT joins
    /// `next_cert` immediately, which *is* the paper's `state = q2`
    /// expressed over certificates.
    fn vote_next(&mut self, cert: Certificate, ctx: &mut Context<'_, Envelope, ValueVector>) {
        debug_assert!(!self.sent_next, "double NEXT would convict us");
        let core = Core::Next { round: self.r };
        let own = SignedCore::sign(
            ftm_certify::MessageCore::new(self.me, core.clone()),
            &self.keys,
        );
        self.next_cert.insert(own);
        self.sent_next = true;
        self.send_all(core, cert, ctx);
        debug_assert_eq!(self.derived_state(), PaperState::Q2);
    }

    /// Lines 20–21 and 2–3: decide, announce, stop.
    fn decide(
        &mut self,
        round: Round,
        vector: ValueVector,
        cert: Certificate,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        self.decided = true;
        self.decide_evidence = Some(cert.clone());
        self.send_all(
            Core::Decide {
                round,
                vector: vector.clone(),
            },
            cert,
            ctx,
        );
        // Final per-layer receive-side tally, in note form so trace
        // consumers (the sweep harness) can collect it without reaching
        // into actor state.
        ctx.note(self.stack.stats_note());
        ctx.decide(vector);
        ctx.halt();
    }

    /// CURRENT items in `current_cert` that endorse exactly `est_vect`.
    fn matching_current(&self) -> Certificate {
        Certificate::from_items(
            self.current_cert
                .iter_kind_round(MessageKind::Current, self.r)
                .filter(|i| i.core().core.vector() == Some(&self.est_vect))
                .cloned(),
        )
    }

    fn handle_admitted(
        &mut self,
        from: ProcessId,
        env: Envelope,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        match env.core().clone() {
            Core::Init { .. } => {
                if self.phase != Phase::VectorCert {
                    return; // late INIT beyond the n − F we waited for
                }
                let Some(builder) = self.builder.as_mut() else {
                    return; // VectorCert phase always carries a live builder
                };
                builder.absorb(&env);
                if builder.complete() {
                    // Lines 6–9 exit: the certified vector is ready.
                    let Some(done) = self.builder.take() else {
                        return;
                    };
                    let (vect, cert) = done.finish();
                    self.est_vect = vect;
                    self.est_cert = cert;
                    self.phase = Phase::Rounds;
                    ctx.note(format!("vector-certified vect={:?}", self.est_vect));
                    self.begin_round(ctx);
                }
            }
            Core::Current { round, vector } => {
                if self.phase != Phase::Rounds || round > self.r {
                    self.buffered.push((from, env));
                    return;
                }
                if round < self.r {
                    return; // stale vote, discarded (footnote 5)
                }
                let was_empty = self.current_cert.count(MessageKind::Current, self.r) == 0;
                self.current_cert.insert(env.signed.clone());
                if was_empty {
                    // Line 17: adopt the first CURRENT's vector and the
                    // INIT backing from its certificate.
                    self.est_vect = vector.clone();
                    self.est_cert = env.cert.init_portion();
                    self.coord_core = if from == self.coordinator() {
                        Some(env.signed.clone())
                    } else {
                        env.cert
                            .find_current(self.coordinator(), self.r, &vector)
                            .cloned()
                    };
                    debug_assert!(self.coord_core.is_some(), "analyzer guarantees backing");
                    // Lines 18–19: q0 → q1 with a certified relay.
                    if !self.sent_next && self.me != self.coordinator() {
                        let mut cert = self.est_cert.clone();
                        if let Some(cc) = &self.coord_core {
                            cert.insert(cc.clone());
                        }
                        self.send_all(
                            Core::Current {
                                round: self.r,
                                vector: self.est_vect.clone(),
                            },
                            cert,
                            ctx,
                        );
                    }
                    debug_assert_ne!(self.derived_state(), PaperState::Q0);
                }
                // Lines 20–21: a quorum endorsing our vector decides.
                let matching = self.matching_current();
                if matching.count(MessageKind::Current, self.r) >= self.quorum() {
                    self.decide(self.r, self.est_vect.clone(), matching, ctx);
                    return;
                }
                self.after_vote(ctx);
            }
            Core::Next { round } => {
                if self.phase != Phase::Rounds || round > self.r {
                    self.buffered.push((from, env));
                    return;
                }
                if round < self.r {
                    return;
                }
                // Lines 26–27.
                self.next_cert.insert(env.signed.clone());
                self.after_vote(ctx);
            }
            Core::Decide { round, vector } => {
                // Lines 2–3: relay with the same certificate and decide.
                self.decide(round, vector, env.cert.clone(), ctx);
            }
            Core::Estimate { .. } | Core::Propose { .. } | Core::Ack { .. } | Core::Nack { .. } => {
                // Chandra–Toueg kinds: the observer convicts them as
                // outside Hurfin–Raynal's alphabet before admission.
                debug_assert!(false, "HR stack admitted a CT-kind message");
            }
            Core::Checkpoint { .. } => {
                // Log-layer compaction metadata: valid (the analyzer
                // audited its quorum), but a single consensus instance has
                // nothing to do with it — slot retention is the
                // `ReplicatedLog`'s business.
            }
        }
    }

    /// The `upon` cascade evaluated after every vote (change_mind, round
    /// end) — lines 28–31.
    fn after_vote(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        if self.decided {
            return;
        }
        let currents = self.current_cert.count(MessageKind::Current, self.r);
        let nexts = self.next_cert.count(MessageKind::Next, self.r);
        let rec_from = self
            .current_cert
            .union(&self.next_cert)
            .rec_from(self.r)
            .len();
        // Lines 28–29: change_mind, expressed over certificates.
        if change_mind_from_certificates(currents, nexts, self.sent_next, rec_from, self.quorum()) {
            ctx.note(format!("change-mind r={}", self.r));
            let cert = self
                .current_cert
                .union(&self.next_cert)
                .union(&self.entry_cert);
            self.vote_next(cert, ctx);
        }
        // Line 14 exit + 31: a NEXT quorum ends the round.
        if self.next_cert.count(MessageKind::Next, self.r) >= self.quorum() {
            if !self.sent_next {
                let cert = self.next_cert.union(&self.entry_cert);
                self.vote_next(cert, ctx);
            }
            self.begin_round(ctx);
        }
    }
}

impl Actor for ByzantineConsensus {
    type Msg = Envelope;
    type Decision = ValueVector;

    fn on_start(&mut self, ctx: &mut Context<'_, Envelope, ValueVector>) {
        // Line 5: broadcast the signed proposal with an empty certificate.
        self.send_all(Core::Init { value: self.value }, Certificate::new(), ctx);
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        env: &Envelope,
        ctx: &mut Context<'_, Envelope, ValueVector>,
    ) {
        if self.decided {
            return;
        }
        // The receive path of Fig. 1: signature → muteness → non-muteness.
        let was_faulty = self.stack.is_faulty(env.sender());
        match self.stack.admit(from, env, ctx.now()) {
            Admit::Accepted(_trigger) => self.handle_admitted(from, env.clone(), ctx),
            Admit::Discarded(e) => {
                // Messages from an already convicted peer are quarantined
                // silently — the detection already happened; re-noting every
                // dropped straggler would inflate the detection metrics with
                // protocol-dependent traffic-volume artifacts.
                if !was_faulty {
                    ctx.note(format!(
                        "detected={} class={} reason={}",
                        e.culprit, e.class, e.reason
                    ));
                } else {
                    self.stack.record_quarantine();
                }
            }
        }
    }

    fn on_timer(&mut self, _tag: TimerTag, ctx: &mut Context<'_, Envelope, ValueVector>) {
        if self.decided {
            return;
        }
        // Lines 22–25: upon p_c ∈ (suspected ∪ faulty) while in q0.
        if self.phase == Phase::Rounds && self.derived_state() == PaperState::Q0 {
            let coord = self.coordinator();
            if self.stack.suspected_or_faulty(coord, ctx.now()) {
                ctx.note(format!("suspect={} r={}", coord, self.r));
                let cert = self
                    .current_cert
                    .union(&self.next_cert)
                    .union(&self.est_cert)
                    .union(&self.entry_cert);
                self.vote_next(cert, ctx);
                self.after_vote(ctx);
            }
        }
        ctx.set_timer(self.poll_interval, POLL_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ftm_sim::{RunReport, SimConfig, Simulation, VirtualTime};

    fn run(n: usize, f: usize, seed: u64, crashes: &[(usize, u64)]) -> RunReport<ValueVector> {
        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        Simulation::build_boxed(cfg, |id| {
            Box::new(ByzantineConsensus::new(&setup, id, 100 + id.0 as u64))
        })
        .run()
    }

    #[test]
    fn all_honest_processes_decide_the_same_vector() {
        let report = run(4, 1, 1, &[]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement");
        assert!(vect.non_null_count() >= 3);
        // Every entry present matches the proposer's value.
        for (k, v) in vect.iter_set() {
            assert_eq!(v, 100 + k as u64);
        }
    }

    #[test]
    fn agreement_across_seeds() {
        for seed in 0..15 {
            let report = run(4, 1, seed, &[]);
            assert!(report.all_decided(), "seed {seed} stop={:?}", report.stop);
            assert!(report.unanimous().is_some(), "seed {seed}");
            assert!(report.contradictions.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn crash_of_coordinator_is_survived() {
        // A crash is one legal arbitrary behavior; p0 coordinates round 1.
        let report = run(4, 1, 7, &[(0, 0)]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement among survivors");
        // p0 proposed nothing (crashed at start): its entry must be null
        // in any vector the survivors certified.
        assert_eq!(vect.get(0), None);
        assert!(vect.non_null_count() >= 3);
    }

    #[test]
    fn crash_mid_protocol_is_survived() {
        for seed in 0..10 {
            let report = run(5, 2, seed, &[(1, 60)]);
            assert!(report.all_decided(), "seed {seed} stop={:?}", report.stop);
            assert!(report.unanimous().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn larger_system_still_decides() {
        let report = run(7, 3, 2, &[]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement");
        assert!(vect.non_null_count() >= 4); // n − F
    }

    #[test]
    fn no_honest_process_is_ever_convicted() {
        let report = run(5, 2, 3, &[]);
        assert!(report.all_decided());
        // No "detected=" notes: the non-muteness module stayed silent.
        for p in 0..5u32 {
            let notes = report.trace.notes_of(ProcessId(p));
            assert!(
                notes.iter().all(|n| !n.starts_with("detected=")),
                "p{p} convicted someone in an all-honest run: {notes:?}"
            );
        }
    }

    #[test]
    fn three_processes_one_fault_works() {
        // Minimal configuration: n = 3, F = 1, ψ = 1.
        let report = run(3, 1, 4, &[(2, 0)]);
        assert!(report.all_decided(), "stop={:?}", report.stop);
        let vect = report.unanimous().expect("agreement");
        assert!(vect.non_null_count() >= 2);
    }
}
