//! The transformed protocols (paper Fig. 3): Vector Consensus resilient to
//! arbitrary failures.
//!
//! Obtained from the crash-model protocols of [`crate::crash`] by applying
//! the transformation rules of [`crate::transform`]:
//!
//! * a preliminary **vector-certification phase** replaces raw initial
//!   values (INIT exchange, `n − F` collected);
//! * every message is a signed [`ftm_certify::Envelope`] carrying a
//!   certificate; every receipt runs through the
//!   [`crate::transform::ModuleStack`];
//! * the crash majority `> n/2` becomes the quorum `n − F`;
//! * the ◇S guard `p_c ∈ suspected_i` becomes
//!   `p_c ∈ (suspected_i ∪ faulty_i)` over the muteness and non-muteness
//!   modules;
//! * corruptible local variables (`nb_current`, `nb_next`, `rec_from`,
//!   `state`) are replaced by certificate expressions, which the
//!   implementation asserts against its explicit state at every step.
//!
//! The transformation is protocol-generic: the same module stack hosts the
//! Hurfin–Raynal instance ([`ByzantineConsensus`]) and the Chandra–Toueg
//! instance ([`ByzantineChandraToueg`]); the [`TransformedProtocol`] trait
//! is the seam layers above (the replicated log, the fault harness) build
//! against. Both tolerate `F ≤ min(⌊(n−1)/2⌋, C)` arbitrary faults and
//! decide a vector with at least `ψ = n − 2F ≥ 1` entries from correct
//! processes.

pub mod chandra_toueg;
pub mod log;
pub mod protocol;

use ftm_certify::{Certificate, Envelope, ProtocolId, Value, ValueVector};
use ftm_sim::{Actor, ProcessId};

use crate::config::ProtocolSetup;
use crate::spec::ProtocolSpec;
use crate::transform::ModuleStack;

pub use chandra_toueg::ByzantineChandraToueg;
pub use log::ReplicatedLog;
pub use protocol::ByzantineConsensus;

/// A protocol produced by the crash→arbitrary transformation: an actor
/// speaking signed [`Envelope`]s and deciding a certified [`ValueVector`],
/// with an embedded module stack and a declarative spec.
///
/// This is the seam that makes the runtime protocol-generic: the
/// replicated log, the fault-injection harness and the sweep runner are
/// written against this trait and instantiated per [`ProtocolId`].
pub trait TransformedProtocol: Actor<Msg = Envelope, Decision = ValueVector> {
    /// The base protocol's identity — selects the observer automaton
    /// table, the §5 certification-rule table and the decision predicate.
    const ID: ProtocolId;

    /// Builds one process proposing `value`.
    fn build(setup: &ProtocolSetup, me: ProcessId, value: Value) -> Self
    where
        Self: Sized;

    /// The hand-written transformed spec this runtime implements (checked
    /// against its derivation by `ftm-verify`).
    fn spec() -> ProtocolSpec
    where
        Self: Sized,
    {
        ProtocolSpec::transformed_for(Self::ID)
    }

    /// Read access to the module stack (evidence logs, detector state).
    fn stack(&self) -> &ModuleStack;

    /// The decide-vote quorum backing this process's decision (`CURRENT`
    /// items under Hurfin–Raynal, `ACK` under Chandra–Toueg), available
    /// once the instance has decided. This is the evidence a log-layer
    /// checkpoint compacts into a single envelope
    /// (see `ftm_certify::checkpoint`).
    fn decide_evidence(&self) -> Option<&Certificate>;
}

impl TransformedProtocol for ByzantineConsensus {
    const ID: ProtocolId = ProtocolId::HurfinRaynal;

    fn build(setup: &ProtocolSetup, me: ProcessId, value: Value) -> Self {
        ByzantineConsensus::new(setup, me, value)
    }

    fn stack(&self) -> &ModuleStack {
        ByzantineConsensus::stack(self)
    }

    fn decide_evidence(&self) -> Option<&Certificate> {
        ByzantineConsensus::decide_evidence(self)
    }
}

impl TransformedProtocol for ByzantineChandraToueg {
    const ID: ProtocolId = ProtocolId::ChandraToueg;

    fn build(setup: &ProtocolSetup, me: ProcessId, value: Value) -> Self {
        ByzantineChandraToueg::new(setup, me, value)
    }

    fn stack(&self) -> &ModuleStack {
        ByzantineChandraToueg::stack(self)
    }

    fn decide_evidence(&self) -> Option<&Certificate> {
        ByzantineChandraToueg::decide_evidence(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ftm_sim::{SimConfig, Simulation};

    fn run_generic<P: TransformedProtocol + 'static>(n: usize, f: usize, seed: u64) -> bool {
        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        Simulation::build_boxed(SimConfig::new(n).seed(seed), |id| {
            Box::new(P::build(&setup, id, 100 + id.0 as u64))
        })
        .run()
        .all_decided()
    }

    #[test]
    fn both_protocols_run_through_the_trait_seam() {
        assert!(run_generic::<ByzantineConsensus>(4, 1, 5));
        assert!(run_generic::<ByzantineChandraToueg>(4, 1, 5));
    }

    #[test]
    fn trait_spec_matches_the_protocol_id() {
        assert_eq!(
            <ByzantineConsensus as TransformedProtocol>::spec().protocol,
            ProtocolId::HurfinRaynal
        );
        assert_eq!(
            <ByzantineChandraToueg as TransformedProtocol>::spec().protocol,
            ProtocolId::ChandraToueg
        );
    }
}
