//! The transformed protocol (paper Fig. 3): Vector Consensus resilient to
//! arbitrary failures.
//!
//! Obtained from the crash-model protocol of [`crate::crash`] by applying
//! the transformation rules of [`crate::transform`]:
//!
//! * a preliminary **vector-certification phase** replaces raw initial
//!   values (INIT exchange, `n − F` collected);
//! * every message is a signed [`ftm_certify::Envelope`] carrying a
//!   certificate; every receipt runs through the
//!   [`crate::transform::ModuleStack`];
//! * the crash majority `> n/2` becomes the quorum `n − F`;
//! * the ◇S guard `p_c ∈ suspected_i` becomes
//!   `p_c ∈ (suspected_i ∪ faulty_i)` over the muteness and non-muteness
//!   modules;
//! * corruptible local variables (`nb_current`, `nb_next`, `rec_from`,
//!   `state`) are replaced by certificate expressions, which the
//!   implementation asserts against its explicit state at every step.
//!
//! The protocol tolerates `F ≤ min(⌊(n−1)/2⌋, C)` arbitrary faults and
//! decides a vector with at least `ψ = n − 2F ≥ 1` entries from correct
//! processes.

pub mod log;
pub mod protocol;

pub use log::ReplicatedLog;
pub use protocol::ByzantineConsensus;
