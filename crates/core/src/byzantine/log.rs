//! State-machine replication on top of the transformed consensus: a
//! replicated log deciding one certified vector per slot.
//!
//! This is the application layer the consensus literature motivates: each
//! log slot runs one instance of any [`TransformedProtocol`] (Hurfin–Raynal
//! by default); a process moves to
//! slot `k + 1` once slot `k` decides locally. Instances are isolated by
//! tagging every wire message with its slot — a faulty process replaying
//! slot-3 traffic into slot 5 changes nothing, because each slot has its
//! own module stack, observer automata and certificates.
//!
//! The composition pattern is the same as the fault wrappers': the outer
//! actor drives the inner one through a private [`Context`] and translates
//! the staged effects (wrapping sends, remapping timer tags, intercepting
//! the inner decision instead of halting).

use ftm_certify::{Envelope, Value, ValueVector};
use ftm_sim::{Actor, Context, Payload, ProcessId, StagedSend, TimerTag};

use crate::byzantine::{ByzantineConsensus, TransformedProtocol};
use crate::config::ProtocolSetup;

/// A slot-tagged consensus message.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotMsg {
    /// Which log slot's instance this belongs to.
    pub slot: u64,
    /// The instance's wire message.
    pub env: Envelope,
}

impl Payload for SlotMsg {
    fn size_bytes(&self) -> usize {
        8 + self.env.size_bytes()
    }

    fn label(&self) -> String {
        format!("s{}:{}", self.slot, self.env.label())
    }
}

/// How many timer tags each slot instance may use (the inner protocol uses
/// a single poll timer; headroom is cheap).
const TAGS_PER_SLOT: TimerTag = 16;

/// A replicated log of `slots` entries, one consensus instance per slot.
///
/// Generic over the [`TransformedProtocol`] running each slot (defaulting
/// to the Hurfin–Raynal instance). Decides the full log (a
/// `Vec<ValueVector>`) once every slot has decided
/// locally. Commands are supplied per slot by a deterministic function of
/// `(slot, process)` so all runs are replayable.
///
/// # Example
///
/// ```
/// use ftm_core::byzantine::log::ReplicatedLog;
/// use ftm_core::byzantine::ByzantineConsensus;
/// use ftm_core::config::ProtocolConfig;
/// use ftm_sim::{SimConfig, Simulation};
///
/// let setup = ProtocolConfig::new(4, 1).seed(9).setup();
/// let report = Simulation::build_boxed(SimConfig::new(4).seed(9), |id| {
///     Box::new(ReplicatedLog::<ByzantineConsensus>::new(
///         &setup, id, 2, |slot, p| 1000 * slot + p as u64,
///     ))
/// })
/// .run();
/// let log = report.unanimous().expect("all replicas hold the same log");
/// assert_eq!(log.len(), 2);
/// ```
pub struct ReplicatedLog<P: TransformedProtocol = ByzantineConsensus> {
    setup: ProtocolSetup,
    me: ProcessId,
    slots: u64,
    command: fn(u64, u32) -> Value,
    current: u64,
    inner: P,
    log: Vec<ValueVector>,
    buffered: Vec<(ProcessId, SlotMsg)>,
    done: bool,
}

impl<P: TransformedProtocol> std::fmt::Debug for ReplicatedLog<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("me", &self.me)
            .field("slot", &self.current)
            .field("decided", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl<P: TransformedProtocol> ReplicatedLog<P> {
    /// Creates a replica deciding `slots` entries; `command(slot, process)`
    /// is the value this process proposes for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(
        setup: &ProtocolSetup,
        me: ProcessId,
        slots: u64,
        command: fn(u64, u32) -> Value,
    ) -> Self {
        assert!(slots > 0, "a log needs at least one slot");
        let inner = P::build(setup, me, command(0, me.0));
        ReplicatedLog {
            setup: setup.clone(),
            me,
            slots,
            command,
            current: 0,
            inner,
            log: Vec::new(),
            buffered: Vec::new(),
            done: false,
        }
    }

    /// Slots decided so far at this replica.
    pub fn decided_slots(&self) -> usize {
        self.log.len()
    }

    /// Drives one inner callback and translates its effects onto the
    /// outer context. Returns the inner decision, if one was made.
    fn drive<F>(
        &mut self,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
        call: F,
    ) -> Option<ValueVector>
    where
        F: FnOnce(&mut P, &mut Context<'_, Envelope, ValueVector>),
    {
        let slot = self.current;
        let fx = {
            // The inner protocol is deterministic and never draws
            // randomness; a null stream keeps the composition pure.
            let mut draw = || 0u64;
            let mut inner_ctx: Context<'_, Envelope, ValueVector> =
                Context::new(ctx.now(), self.me, ctx.process_count(), &mut draw);
            call(&mut self.inner, &mut inner_ctx);
            inner_ctx.into_effects()
        };
        for staged in fx.sends {
            match staged {
                StagedSend::To(to, env) => ctx.send(to, SlotMsg { slot, env }),
                StagedSend::ToAll(env) => ctx.broadcast(SlotMsg { slot, env }),
            }
        }
        for (delay, tag) in fx.timers {
            ctx.set_timer(delay, slot * TAGS_PER_SLOT + tag);
        }
        for note in fx.notes {
            ctx.note(format!("s{slot}:{note}"));
        }
        // The inner halt is absorbed: the log replica lives on to run the
        // next slot.
        fx.decision
    }

    /// Records a slot decision and opens the next slot (or finishes).
    fn advance(&mut self, decided: ValueVector, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        self.log.push(decided);
        ctx.note(format!(
            "slot-decided={} total={}",
            self.current,
            self.log.len()
        ));
        if self.log.len() as u64 == self.slots {
            self.done = true;
            ctx.decide(self.log.clone());
            ctx.halt();
            return;
        }
        self.current += 1;
        self.inner = P::build(
            &self.setup,
            self.me,
            (self.command)(self.current, self.me.0),
        );
        if let Some(d) = self.drive(ctx, ftm_sim::Actor::on_start) {
            // A 1-process system can decide instantly; recurse.
            self.advance(d, ctx);
            return;
        }
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        loop {
            if self.done {
                return;
            }
            let slot = self.current;
            let Some(pos) = self.buffered.iter().position(|(_, m)| m.slot == slot) else {
                return;
            };
            let (from, msg) = self.buffered.remove(pos);
            if let Some(d) = self.drive(ctx, |inner, ictx| inner.on_message(from, &msg.env, ictx)) {
                self.advance(d, ctx);
            }
        }
    }
}

impl<P: TransformedProtocol> Actor for ReplicatedLog<P> {
    type Msg = SlotMsg;
    type Decision = Vec<ValueVector>;

    fn on_start(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        if let Some(d) = self.drive(ctx, ftm_sim::Actor::on_start) {
            self.advance(d, ctx);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &SlotMsg,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
        if self.done {
            return;
        }
        if msg.slot > self.current {
            self.buffered.push((from, msg.clone()));
            return;
        }
        if msg.slot < self.current {
            return; // the slot is sealed at this replica
        }
        if let Some(d) = self.drive(ctx, |inner, ictx| inner.on_message(from, &msg.env, ictx)) {
            self.advance(d, ctx);
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        if self.done {
            return;
        }
        let slot = tag / TAGS_PER_SLOT;
        if slot != self.current {
            return; // stale timer from a sealed slot
        }
        let inner_tag = tag % TAGS_PER_SLOT;
        if let Some(d) = self.drive(ctx, |inner, ictx| inner.on_timer(inner_tag, ictx)) {
            self.advance(d, ctx);
        }
        self.drain(ctx);
    }
}

/// Checks log consistency across replicas: every pair of decided logs must
/// be equal, and each slot's vector must satisfy the per-slot quorum floor.
///
/// Returns the common log when consistent.
pub fn check_log_consistency(
    decisions: &[Option<Vec<ValueVector>>],
    crashed: &[bool],
    quorum: usize,
) -> Result<Vec<ValueVector>, String> {
    let mut common: Option<&Vec<ValueVector>> = None;
    for (i, d) in decisions.iter().enumerate() {
        if crashed.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(log) = d else {
            return Err(format!("replica {i} never completed its log"));
        };
        match common {
            None => common = Some(log),
            Some(c) if c == log => {}
            Some(_) => return Err(format!("replica {i} holds a diverging log")),
        }
    }
    let log = common.ok_or("no replica completed")?.clone();
    for (slot, vect) in log.iter().enumerate() {
        if vect.non_null_count() < quorum {
            return Err(format!("slot {slot} carries fewer than n−F commands"));
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ftm_sim::{SimConfig, Simulation, VirtualTime};

    fn cmd(slot: u64, p: u32) -> Value {
        1000 * slot + 100 + p as u64
    }

    fn run(
        n: usize,
        f: usize,
        slots: u64,
        seed: u64,
        crashes: &[(usize, u64)],
    ) -> ftm_sim::RunReport<Vec<ValueVector>> {
        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        Simulation::build_boxed(cfg, |id| {
            Box::new(ReplicatedLog::<ByzantineConsensus>::new(
                &setup, id, slots, cmd,
            ))
        })
        .run()
    }

    #[test]
    fn chandra_toueg_replicas_agree_on_a_multi_slot_log() {
        let setup = ProtocolConfig::new(4, 1).seed(5).setup();
        let report = Simulation::build_boxed(SimConfig::new(4).seed(5), |id| {
            Box::new(
                ReplicatedLog::<crate::byzantine::ByzantineChandraToueg>::new(&setup, id, 2, cmd),
            )
        })
        .run();
        let log =
            check_log_consistency(&report.decisions, &report.crashed, 3).expect("consistent log");
        assert_eq!(log.len(), 2);
        for (slot, vect) in log.iter().enumerate() {
            for (p, v) in vect.iter_set() {
                assert_eq!(v, cmd(slot as u64, p as u32));
            }
        }
    }

    #[test]
    fn honest_replicas_agree_on_a_multi_slot_log() {
        let report = run(4, 1, 3, 1, &[]);
        let log =
            check_log_consistency(&report.decisions, &report.crashed, 3).expect("consistent log");
        assert_eq!(log.len(), 3);
        // Slot k's entries are slot-k commands.
        for (slot, vect) in log.iter().enumerate() {
            for (p, v) in vect.iter_set() {
                assert_eq!(v, cmd(slot as u64, p as u32));
            }
        }
    }

    #[test]
    fn logs_agree_across_seeds() {
        for seed in 0..6 {
            let report = run(4, 1, 2, seed, &[]);
            check_log_consistency(&report.decisions, &report.crashed, 3)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn a_crash_mid_log_does_not_fork_the_survivors() {
        // p3 dies somewhere inside slot 1; the other replicas finish all 3
        // slots and agree.
        let report = run(4, 1, 3, 2, &[(3, 120)]);
        let log = check_log_consistency(&report.decisions, &report.crashed, 3)
            .expect("survivors consistent");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn five_replicas_two_faults() {
        let report = run(5, 2, 2, 3, &[(0, 0), (4, 50)]);
        let log = check_log_consistency(&report.decisions, &report.crashed, 3)
            .expect("survivors consistent");
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = run(4, 1, 2, 7, &[]);
        let b = run(4, 1, 2, 7, &[]);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn consistency_checker_flags_divergence() {
        let v1 = vec![ValueVector::from_entries(vec![
            Some(1),
            Some(2),
            Some(3),
            None,
        ])];
        let v2 = vec![ValueVector::from_entries(vec![
            Some(9),
            Some(2),
            Some(3),
            None,
        ])];
        let err = check_log_consistency(
            &[Some(v1), Some(v2), None, None],
            &[false, false, true, true],
            3,
        )
        .unwrap_err();
        assert!(err.contains("diverging"));
    }
}
