//! State-machine replication on top of the transformed consensus: a
//! replicated log deciding one certified vector per slot.
//!
//! This is the application layer the consensus literature motivates: each
//! log slot runs one instance of any [`TransformedProtocol`] (Hurfin–Raynal
//! by default); a process moves to
//! slot `k + 1` once slot `k` decides locally. Instances are isolated by
//! tagging every wire message with its slot — a faulty process replaying
//! slot-3 traffic into slot 5 changes nothing, because each slot has its
//! own module stack, observer automata and certificates.
//!
//! The composition pattern is the same as the fault wrappers': the outer
//! actor drives the inner one through a private [`Context`] and translates
//! the staged effects (wrapping sends, remapping timer tags, intercepting
//! the inner decision instead of halting).

use ftm_certify::analyzer::CertChecker;
use ftm_certify::{
    checkpoint_vector, make_checkpoint, Certificate, Envelope, MessageKind, Value, ValueVector,
};
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode, DecodeError, Decoder, Encoder};
use ftm_sim::{Actor, Context, Payload, ProcessId, StagedSend, TimerTag};

use crate::byzantine::{ByzantineConsensus, TransformedProtocol};
use crate::config::ProtocolSetup;

/// How a replica retains the decide evidence of sealed slots.
///
/// Retained evidence is what an auditor (or a recovering replica) can be
/// shown to justify the log's contents; its growth is the memory cost the
/// checkpointing program bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep every sealed slot's decide-vote certificate verbatim: audit
    /// bytes grow linearly in the number of slots.
    #[default]
    Full,
    /// Compact each sealed slot into one quorum-signed checkpoint envelope
    /// (see [`ftm_certify::checkpoint`]) and keep only the latest: audit
    /// bytes stay flat no matter how long the log runs. Compaction is pure
    /// local bookkeeping — no extra wire traffic — so decisions are
    /// identical to [`Retention::Full`] runs of the same seed.
    Checkpoint,
}

/// A slot-tagged consensus message.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotMsg {
    /// Which log slot's instance this belongs to.
    pub slot: u64,
    /// The instance's wire message.
    pub env: Envelope,
}

impl Payload for SlotMsg {
    fn size_bytes(&self) -> usize {
        8 + self.env.size_bytes()
    }

    fn label(&self) -> String {
        format!("s{}:{}", self.slot, self.env.label())
    }
}

// The canonical encoding makes `SlotMsg` carriable by the real transport
// (`ftm-net` frames are canonical bytes); the slot tag rides in front of
// the envelope's own signed encoding, so signatures keep verifying.
impl CanonicalEncode for SlotMsg {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.slot);
        self.env.encode(enc);
    }
}

impl CanonicalDecode for SlotMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SlotMsg {
            slot: dec.u64()?,
            env: Envelope::decode(dec)?,
        })
    }
}

/// How many timer tags each slot instance may use (the inner protocol uses
/// a single poll timer; headroom is cheap).
const TAGS_PER_SLOT: TimerTag = 16;

/// A replicated log of `slots` entries, one consensus instance per slot.
///
/// Generic over the [`TransformedProtocol`] running each slot (defaulting
/// to the Hurfin–Raynal instance). Decides the full log (a
/// `Vec<ValueVector>`) once every slot has decided
/// locally. Commands are supplied per slot by a deterministic function of
/// `(slot, process)` so all runs are replayable.
///
/// # Example
///
/// ```
/// use ftm_core::byzantine::log::ReplicatedLog;
/// use ftm_core::byzantine::ByzantineConsensus;
/// use ftm_core::config::ProtocolConfig;
/// use ftm_sim::{SimConfig, Simulation};
///
/// let setup = ProtocolConfig::new(4, 1).seed(9).setup();
/// let report = Simulation::build_boxed(SimConfig::new(4).seed(9), |id| {
///     Box::new(ReplicatedLog::<ByzantineConsensus>::new(
///         &setup, id, 2, |slot, p| 1000 * slot + p as u64,
///     ))
/// })
/// .run();
/// let log = report.unanimous().expect("all replicas hold the same log");
/// assert_eq!(log.len(), 2);
/// ```
pub struct ReplicatedLog<P: TransformedProtocol = ByzantineConsensus> {
    setup: ProtocolSetup,
    me: ProcessId,
    slots: u64,
    command: Box<dyn FnMut(u64, u32) -> Value + Send>,
    current: u64,
    inner: P,
    log: Vec<ValueVector>,
    buffered: Vec<(ProcessId, SlotMsg)>,
    done: bool,
    retention: Retention,
    /// Per-slot decide-vote certificates ([`Retention::Full`] only).
    evidence: Vec<(u64, Certificate)>,
    /// The latest checkpoint envelope ([`Retention::Checkpoint`] only).
    checkpoint: Option<Envelope>,
    /// Audits locally formed checkpoints before they replace evidence,
    /// and admits peers' catch-up checkpoints before they reach the log.
    checker: CertChecker,
    /// Observer of sealed slots (server-side batching accounting); `None`
    /// keeps the actor bit-identical to the pre-hook behavior.
    slot_hook: Option<SlotHook>,
    /// Opt-in checkpoint catch-up (see [`with_catchup`]); `None` (the
    /// default) keeps wire behavior identical to earlier revisions, which
    /// is what the byte-replay sim cross-checks rely on.
    ///
    /// [`with_catchup`]: ReplicatedLog::with_catchup
    catchup: Option<Catchup>,
    /// `true` while the current slot's instance was opened by a
    /// checkpoint seal rather than a local decide. Such an instance joins
    /// its slot mid-round — the message prefix it observes is incomplete
    /// (rounds sent before this replica reconnected are gone) — so the
    /// per-peer timing automaton's `out-of-order` verdicts over it are
    /// unsound and get defanged in [`drive`](Self::drive). Signature and
    /// certificate convictions stay live: forged bytes are proof
    /// regardless of how much prefix was seen.
    recovering: bool,
}

/// A sealed-slot observer: called with `(slot, decided vector)`.
type SlotHook = Box<dyn FnMut(u64, &ValueVector) + Send>;

/// Throttling state for catch-up replies to one peer.
#[derive(Debug, Clone, Copy, Default)]
struct CatchupPeer {
    /// The last stale slot this peer was answered for.
    last_slot: Option<u64>,
    /// Stale messages seen for that same slot since.
    repeats: u32,
}

/// State of the opt-in checkpoint catch-up protocol.
struct Catchup {
    /// Max checkpoints shipped per reply; the lagging replica's own
    /// next-slot traffic re-triggers the next batch, so recovery chains
    /// in `window`-sized strides.
    window: u64,
    peers: Vec<CatchupPeer>,
}

impl<P: TransformedProtocol> std::fmt::Debug for ReplicatedLog<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("me", &self.me)
            .field("slot", &self.current)
            .field("decided", &self.log.len())
            .finish_non_exhaustive()
    }
}

impl<P: TransformedProtocol> ReplicatedLog<P> {
    /// Creates a replica deciding `slots` entries; `command(slot, process)`
    /// is the value this process proposes for `slot`.
    ///
    /// The command source may be stateful (`FnMut`): the simulator feeds
    /// pure functions of `(slot, process)` for replayability, while a
    /// server feeds commands from a client-submitted queue. It is called
    /// exactly once per slot, in slot order, when the slot opens.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(
        setup: &ProtocolSetup,
        me: ProcessId,
        slots: u64,
        command: impl FnMut(u64, u32) -> Value + Send + 'static,
    ) -> Self {
        let mut command = Box::new(command);
        assert!(slots > 0, "a log needs at least one slot");
        let inner = P::build(setup, me, command(0, me.0));
        let res = setup.resilience;
        ReplicatedLog {
            setup: setup.clone(),
            me,
            slots,
            command,
            current: 0,
            inner,
            log: Vec::new(),
            buffered: Vec::new(),
            done: false,
            retention: Retention::Full,
            evidence: Vec::new(),
            checkpoint: None,
            checker: CertChecker::new_for(P::ID, res.n(), res.f(), setup.dir.clone()),
            slot_hook: None,
            catchup: None,
            recovering: false,
        }
    }

    /// Selects how sealed slots' decide evidence is retained
    /// (default: [`Retention::Full`]).
    #[must_use]
    pub fn with_retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }

    /// Installs an observer called once per sealed slot with `(slot,
    /// decided vector)`, after the slot is appended to the log. A server
    /// uses this to learn which of its proposed commands committed (the
    /// batching ledger); the simulator never installs one.
    #[must_use]
    pub fn with_slot_hook(mut self, hook: impl FnMut(u64, &ValueVector) + Send + 'static) -> Self {
        self.slot_hook = Some(Box::new(hook));
        self
    }

    /// Enables checkpoint catch-up: a replica that receives traffic for a
    /// slot it has already sealed replies with quorum-signed checkpoint
    /// envelopes (at most `window` per reply, throttled per peer), and a
    /// replica receiving a checkpoint for its current slot verifies it
    /// with the full certificate analyzer and seals the slot from it.
    /// This is how a restarted replica rejoins a live cluster without
    /// replaying every instance. Requires [`Retention::Full`] on the
    /// helping side (per-slot certificates back the checkpoints).
    ///
    /// Off by default: with catch-up disabled the actor's wire behavior
    /// is unchanged, keeping simulator byte-replays valid.
    #[must_use]
    pub fn with_catchup(mut self, window: u64) -> Self {
        let n = self.setup.resilience.n();
        self.catchup = Some(Catchup {
            window: window.max(1),
            peers: vec![CatchupPeer::default(); n],
        });
        self
    }

    /// Slots decided so far at this replica.
    pub fn decided_slots(&self) -> usize {
        self.log.len()
    }

    /// The decided log prefix so far (slot order). A server exposes this
    /// — and a digest of it — through its status endpoint while the log
    /// is still growing.
    pub fn decided_log(&self) -> &[ValueVector] {
        &self.log
    }

    /// Bytes of decide evidence currently retained for sealed slots: the
    /// sum of per-slot certificates under [`Retention::Full`], the single
    /// latest checkpoint envelope under [`Retention::Checkpoint`].
    pub fn retained_bytes(&self) -> usize {
        match self.retention {
            Retention::Full => self
                .evidence
                .iter()
                .map(|(_, cert)| cert.size_bytes())
                .sum(),
            Retention::Checkpoint => self.checkpoint.as_ref().map_or(0, Envelope::size_bytes),
        }
    }

    /// The latest retained checkpoint envelope, if compaction is on and a
    /// slot has sealed.
    pub fn checkpoint(&self) -> Option<&Envelope> {
        self.checkpoint.as_ref()
    }

    /// Seals `slot`'s decide evidence per the retention mode. Compaction
    /// is local bookkeeping only: nothing is sent, so enabling it cannot
    /// perturb the run's schedule or decisions.
    /// `external` carries the decide quorum when the slot was sealed from
    /// a peer's checkpoint rather than by the local instance.
    fn retain(
        &mut self,
        slot: u64,
        decided: &ValueVector,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
        external: Option<&Certificate>,
    ) {
        let Some(cert) = external.or_else(|| self.inner.decide_evidence()) else {
            return; // decided without local evidence (cannot happen today)
        };
        match self.retention {
            Retention::Full => {
                self.evidence.push((slot, cert.clone()));
                ctx.note(format!(
                    "evidence slot={slot} bytes={}",
                    self.retained_bytes()
                ));
            }
            Retention::Checkpoint => {
                let env = make_checkpoint(
                    P::ID,
                    slot,
                    decided,
                    cert.clone(),
                    self.me,
                    &self.setup.keys[self.me.index()],
                );
                // Re-audit our own compaction with the full analyzer
                // pipeline peers would apply; a checkpoint we could not
                // defend must never replace the evidence it summarizes.
                match self.checker.check_envelope(&env) {
                    Ok(()) => {
                        self.checkpoint = Some(env);
                        ctx.note(format!(
                            "checkpoint slot={slot} bytes={}",
                            self.retained_bytes()
                        ));
                    }
                    Err(e) => ctx.note(format!("checkpoint-unsound slot={slot} reason={e}")),
                }
            }
        }
    }

    /// Drives one inner callback and translates its effects onto the
    /// outer context. Returns the inner decision, if one was made.
    fn drive<F>(
        &mut self,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
        call: F,
    ) -> Option<ValueVector>
    where
        F: FnOnce(&mut P, &mut Context<'_, Envelope, ValueVector>),
    {
        let slot = self.current;
        let fx = {
            // The inner protocol is deterministic and never draws
            // randomness; a null stream keeps the composition pure.
            let mut draw = || 0u64;
            let mut inner_ctx: Context<'_, Envelope, ValueVector> =
                Context::new(ctx.now(), self.me, ctx.process_count(), &mut draw);
            call(&mut self.inner, &mut inner_ctx);
            inner_ctx.into_effects()
        };
        for staged in fx.sends {
            match staged {
                StagedSend::To(to, env) => ctx.send(to, SlotMsg { slot, env }),
                StagedSend::ToAll(env) => ctx.broadcast(SlotMsg { slot, env }),
            }
        }
        for (delay, tag) in fx.timers {
            ctx.set_timer(delay, slot * TAGS_PER_SLOT + tag);
        }
        for note in fx.notes {
            // An instance opened by a checkpoint seal saw only a partial
            // message prefix (it joined the slot mid-round), so timing-
            // automaton convictions over it would convict honest peers.
            // They are kept in the trace but stripped of the `detected=`
            // marker so conviction parsers don't count them.
            if self.recovering && note.contains("detected=") && note.contains("class=out-of-order")
            {
                let defanged = note.replace("detected=", "unproven=");
                ctx.note(format!("s{slot}:recovery-suppressed {defanged}"));
                continue;
            }
            ctx.note(format!("s{slot}:{note}"));
        }
        // The inner halt is absorbed: the log replica lives on to run the
        // next slot.
        fx.decision
    }

    /// Records a slot decision and opens the next slot (or finishes).
    fn advance(&mut self, decided: ValueVector, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        self.advance_with(decided, None, ctx);
    }

    /// [`advance`](Self::advance) with an externally supplied decide
    /// quorum (catch-up path: the local instance never decided the slot).
    fn advance_with(
        &mut self,
        decided: ValueVector,
        external: Option<&Certificate>,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
        self.retain(self.current, &decided, ctx, external);
        // The next instance's prefix is complete iff this slot decided
        // locally: a checkpoint seal means this replica is behind the live
        // edge and the next slot is already mid-round elsewhere.
        self.recovering = external.is_some();
        if let Some(hook) = self.slot_hook.as_mut() {
            hook(self.current, &decided);
        }
        self.log.push(decided);
        ctx.note(format!(
            "slot-decided={} total={}",
            self.current,
            self.log.len()
        ));
        if self.log.len() as u64 == self.slots {
            self.done = true;
            ctx.decide(self.log.clone());
            ctx.halt();
            return;
        }
        self.current += 1;
        self.inner = P::build(
            &self.setup,
            self.me,
            (self.command)(self.current, self.me.0),
        );
        if let Some(d) = self.drive(ctx, ftm_sim::Actor::on_start) {
            // A 1-process system can decide instantly; recurse.
            self.advance(d, ctx);
            return;
        }
        self.drain(ctx);
    }

    fn drain(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        loop {
            if self.done {
                return;
            }
            let slot = self.current;
            let Some(pos) = self.buffered.iter().position(|(_, m)| m.slot == slot) else {
                return;
            };
            let (from, msg) = self.buffered.remove(pos);
            if self.catchup.is_some() && msg.env.kind() == MessageKind::Checkpoint {
                self.apply_checkpoint(from, &msg, ctx);
                continue;
            }
            if let Some(d) = self.drive(ctx, |inner, ictx| inner.on_message(from, &msg.env, ictx)) {
                self.advance(d, ctx);
            }
        }
    }

    /// Answers a peer whose message shows it lags behind this replica:
    /// ships up to `window` checkpoint envelopes starting at the stale
    /// slot, throttled so retransmission storms for one slot don't each
    /// cost a reply. The lagging peer's own traffic for later slots
    /// re-triggers the next batch, so full recovery chains naturally.
    /// The triggering envelope must pass the full certificate analyzer
    /// first — only authenticated lag earns catch-up service.
    fn maybe_catchup_reply(
        &mut self,
        from: ProcessId,
        msg: &SlotMsg,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
        if self.retention != Retention::Full {
            return; // no per-slot certificates to back checkpoints
        }
        if self.catchup.is_none() {
            return;
        }
        if self.checker.check_envelope(&msg.env).is_err() {
            return; // unauthenticated traffic earns no checkpoint window
        }
        let stale_slot = msg.slot;
        let Some(catchup) = self.catchup.as_mut() else {
            return;
        };
        let window = catchup.window;
        let Some(peer) = catchup.peers.get_mut(from.index()) else {
            return;
        };
        if peer.last_slot == Some(stale_slot) {
            peer.repeats = peer.repeats.saturating_add(1);
            if peer.repeats % 16 != 0 {
                return;
            }
        } else {
            peer.last_slot = Some(stale_slot);
            peer.repeats = 0;
        }
        let hi = self.current.min(stale_slot.saturating_add(window));
        let mut sent = 0u64;
        for k in stale_slot..hi {
            let Some((_, cert)) = self.evidence.iter().find(|(s, _)| *s == k) else {
                continue;
            };
            let Some(vector) = self.log.get(k as usize) else {
                continue;
            };
            let env = make_checkpoint(
                P::ID,
                k,
                vector,
                cert.clone(),
                self.me,
                &self.setup.keys[self.me.index()],
            );
            ctx.send(from, SlotMsg { slot: k, env });
            sent += 1;
        }
        if sent > 0 {
            ctx.note(format!("catchup-sent to={from} lo={stale_slot} n={sent}"));
        }
    }

    /// Admits one checkpoint envelope for the *current* slot and seals the
    /// slot from it. The full certificate analyzer runs first; the decided
    /// vector is then extracted from the quorum the checkpoint carries,
    /// never from an unsigned field. Rejections are noted, not fatal.
    fn apply_checkpoint(
        &mut self,
        from: ProcessId,
        msg: &SlotMsg,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
        match self.checker.check_envelope(&msg.env) {
            Ok(()) => {
                let res = &self.setup.resilience;
                let quorum = res.n() - res.f();
                match checkpoint_vector(P::ID, quorum, &msg.env) {
                    Some(vector) => {
                        ctx.note(format!("catchup-applied slot={} from={from}", msg.slot));
                        let cert = msg.env.cert.clone();
                        self.advance_with(vector, Some(&cert), ctx);
                    }
                    None => ctx.note(format!(
                        "catchup-rejected slot={} reason=no-quorum-vector",
                        msg.slot
                    )),
                }
            }
            Err(e) => ctx.note(format!("catchup-rejected slot={} reason={e}", msg.slot)),
        }
    }
}

impl<P: TransformedProtocol> Actor for ReplicatedLog<P> {
    type Msg = SlotMsg;
    type Decision = Vec<ValueVector>;

    fn on_start(&mut self, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        if let Some(d) = self.drive(ctx, ftm_sim::Actor::on_start) {
            self.advance(d, ctx);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &SlotMsg,
        ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
        if self.done {
            return;
        }
        // Checkpoint envelopes are catch-up traffic, not instance traffic:
        // they must never reach the inner protocol (which would convict
        // the sender for an unexpected kind). Without catch-up enabled
        // they are ignored entirely.
        if msg.env.kind() == MessageKind::Checkpoint {
            if self.catchup.is_some() {
                if msg.slot > self.current {
                    self.buffered.push((from, msg.clone()));
                } else if msg.slot == self.current {
                    self.apply_checkpoint(from, msg, ctx);
                    self.drain(ctx);
                }
            }
            return;
        }
        if msg.slot > self.current {
            self.buffered.push((from, msg.clone()));
            return;
        }
        if msg.slot < self.current {
            // The slot is sealed at this replica; a lagging sender can be
            // offered the sealed prefix as checkpoints.
            self.maybe_catchup_reply(from, msg, ctx);
            return;
        }
        if let Some(d) = self.drive(ctx, |inner, ictx| inner.on_message(from, &msg.env, ictx)) {
            self.advance(d, ctx);
        }
        self.drain(ctx);
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {
        if self.done {
            return;
        }
        let slot = tag / TAGS_PER_SLOT;
        if slot != self.current {
            return; // stale timer from a sealed slot
        }
        let inner_tag = tag % TAGS_PER_SLOT;
        if let Some(d) = self.drive(ctx, |inner, ictx| inner.on_timer(inner_tag, ictx)) {
            self.advance(d, ctx);
        }
        self.drain(ctx);
    }
}

/// Checks log consistency across replicas: every pair of decided logs must
/// be equal, and each slot's vector must satisfy the per-slot quorum floor.
///
/// Returns the common log when consistent.
pub fn check_log_consistency(
    decisions: &[Option<Vec<ValueVector>>],
    crashed: &[bool],
    quorum: usize,
) -> Result<Vec<ValueVector>, String> {
    let mut common: Option<&Vec<ValueVector>> = None;
    for (i, d) in decisions.iter().enumerate() {
        if crashed.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(log) = d else {
            return Err(format!("replica {i} never completed its log"));
        };
        match common {
            None => common = Some(log),
            Some(c) if c == log => {}
            Some(_) => return Err(format!("replica {i} holds a diverging log")),
        }
    }
    let log = common.ok_or("no replica completed")?.clone();
    for (slot, vect) in log.iter().enumerate() {
        if vect.non_null_count() < quorum {
            return Err(format!("slot {slot} carries fewer than n−F commands"));
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use ftm_sim::{SimConfig, Simulation, VirtualTime};

    fn cmd(slot: u64, p: u32) -> Value {
        1000 * slot + 100 + p as u64
    }

    fn run(
        n: usize,
        f: usize,
        slots: u64,
        seed: u64,
        crashes: &[(usize, u64)],
    ) -> ftm_sim::RunReport<Vec<ValueVector>> {
        let setup = ProtocolConfig::new(n, f).seed(seed).setup();
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        Simulation::build_boxed(cfg, |id| {
            Box::new(ReplicatedLog::<ByzantineConsensus>::new(
                &setup, id, slots, cmd,
            ))
        })
        .run()
    }

    #[test]
    fn chandra_toueg_replicas_agree_on_a_multi_slot_log() {
        let setup = ProtocolConfig::new(4, 1).seed(5).setup();
        let report = Simulation::build_boxed(SimConfig::new(4).seed(5), |id| {
            Box::new(
                ReplicatedLog::<crate::byzantine::ByzantineChandraToueg>::new(&setup, id, 2, cmd),
            )
        })
        .run();
        let log =
            check_log_consistency(&report.decisions, &report.crashed, 3).expect("consistent log");
        assert_eq!(log.len(), 2);
        for (slot, vect) in log.iter().enumerate() {
            for (p, v) in vect.iter_set() {
                assert_eq!(v, cmd(slot as u64, p as u32));
            }
        }
    }

    #[test]
    fn honest_replicas_agree_on_a_multi_slot_log() {
        let report = run(4, 1, 3, 1, &[]);
        let log =
            check_log_consistency(&report.decisions, &report.crashed, 3).expect("consistent log");
        assert_eq!(log.len(), 3);
        // Slot k's entries are slot-k commands.
        for (slot, vect) in log.iter().enumerate() {
            for (p, v) in vect.iter_set() {
                assert_eq!(v, cmd(slot as u64, p as u32));
            }
        }
    }

    #[test]
    fn logs_agree_across_seeds() {
        for seed in 0..6 {
            let report = run(4, 1, 2, seed, &[]);
            check_log_consistency(&report.decisions, &report.crashed, 3)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn a_crash_mid_log_does_not_fork_the_survivors() {
        // p3 dies somewhere inside slot 1; the other replicas finish all 3
        // slots and agree.
        let report = run(4, 1, 3, 2, &[(3, 120)]);
        let log = check_log_consistency(&report.decisions, &report.crashed, 3)
            .expect("survivors consistent");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn five_replicas_two_faults() {
        let report = run(5, 2, 2, 3, &[(0, 0), (4, 50)]);
        let log = check_log_consistency(&report.decisions, &report.crashed, 3)
            .expect("survivors consistent");
        assert_eq!(log.len(), 2);
    }

    /// The `bytes=` series of the given retained-evidence note prefix,
    /// at replica 0, in slot order.
    fn retained_series<D>(report: &ftm_sim::RunReport<D>, prefix: &str) -> Vec<u64> {
        report
            .trace
            .entries()
            .iter()
            .filter_map(|e| match &e.event {
                ftm_sim::trace::TraceEvent::Note { process, text }
                    if process.0 == 0 && text.starts_with(prefix) =>
                {
                    text.rsplit_once("bytes=").and_then(|(_, b)| b.parse().ok())
                }
                _ => None,
            })
            .collect()
    }

    fn run_with_retention(
        retention: Retention,
        slots: u64,
        seed: u64,
    ) -> ftm_sim::RunReport<Vec<ValueVector>> {
        let setup = ProtocolConfig::new(4, 1).seed(seed).setup();
        Simulation::build_boxed(SimConfig::new(4).seed(seed), |id| {
            Box::new(
                ReplicatedLog::<ByzantineConsensus>::new(&setup, id, slots, cmd)
                    .with_retention(retention),
            )
        })
        .run()
    }

    #[test]
    fn compaction_does_not_change_decisions() {
        for seed in 0..4 {
            let full = run_with_retention(Retention::Full, 3, seed);
            let compact = run_with_retention(Retention::Checkpoint, 3, seed);
            assert_eq!(full.decisions, compact.decisions, "seed {seed}");
            assert_eq!(full.end_time, compact.end_time, "seed {seed}");
        }
    }

    #[test]
    fn full_retention_grows_linearly_and_compaction_stays_flat() {
        let slots = 4;
        let full = run_with_retention(Retention::Full, slots, 11);
        let linear = retained_series(&full, "evidence slot=");
        assert_eq!(linear.len() as u64, slots);
        assert!(
            linear.windows(2).all(|w| w[1] > w[0]),
            "full retention must grow per slot: {linear:?}"
        );
        let compact = run_with_retention(Retention::Checkpoint, slots, 11);
        let flat = retained_series(&compact, "checkpoint slot=");
        assert_eq!(flat.len() as u64, slots);
        let spread = flat.iter().max().unwrap() - flat.iter().min().unwrap();
        assert!(
            *flat.iter().max().unwrap() < *linear.last().unwrap(),
            "compacted bytes {flat:?} must undercut full retention {linear:?}"
        );
        // Flat within the jitter of per-slot quorum composition: each
        // checkpoint holds exactly one quorum, never an accumulated prefix.
        assert!(
            spread * 4 < *flat.iter().max().unwrap(),
            "compacted bytes should be slot-independent: {flat:?}"
        );
    }

    #[test]
    fn compaction_works_under_chandra_toueg_too() {
        let setup = ProtocolConfig::new(4, 1).seed(6).setup();
        let report = Simulation::build_boxed(SimConfig::new(4).seed(6), |id| {
            Box::new(
                ReplicatedLog::<crate::byzantine::ByzantineChandraToueg>::new(&setup, id, 2, cmd)
                    .with_retention(Retention::Checkpoint),
            )
        })
        .run();
        check_log_consistency(&report.decisions, &report.crashed, 3).expect("consistent log");
        let flat = retained_series(&report, "checkpoint slot=");
        assert_eq!(flat.len(), 2);
        assert!(retained_series(&report, "checkpoint-unsound").is_empty());
    }

    #[test]
    fn replay_is_deterministic() {
        let a = run(4, 1, 2, 7, &[]);
        let b = run(4, 1, 2, 7, &[]);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn consistency_checker_flags_divergence() {
        let v1 = vec![ValueVector::from_entries(vec![
            Some(1),
            Some(2),
            Some(3),
            None,
        ])];
        let v2 = vec![ValueVector::from_entries(vec![
            Some(9),
            Some(2),
            Some(3),
            None,
        ])];
        let err = check_log_consistency(
            &[Some(v1), Some(v2), None, None],
            &[false, false, true, true],
            3,
        )
        .unwrap_err();
        assert!(err.contains("diverging"));
    }

    // ---- checkpoint catch-up -------------------------------------------

    use ftm_certify::{Core, MessageCore, SignedCore};
    use ftm_sim::Context as RtContext;

    /// A quorum-signed checkpoint for `slot` carrying the vector of
    /// slot-`slot` commands, exactly as a sealed replica would emit it.
    fn synthetic_checkpoint(
        setup: &crate::config::ProtocolSetup,
        slot: u64,
        sender: ProcessId,
    ) -> SlotMsg {
        let n = setup.resilience.n();
        let vect = ValueVector::from_entries(
            (0..n)
                .map(|p| Some(cmd(slot, p as u32)))
                .collect::<Vec<_>>(),
        );
        let quorum = n - setup.resilience.f();
        let votes = (0..quorum).map(|p| {
            SignedCore::sign(
                MessageCore::new(
                    ProcessId(p as u32),
                    Core::Current {
                        round: 1,
                        vector: vect.clone(),
                    },
                ),
                &setup.keys[p],
            )
        });
        let env = make_checkpoint(
            ftm_certify::ProtocolId::HurfinRaynal,
            slot,
            &vect,
            Certificate::from_items(votes),
            sender,
            &setup.keys[sender.index()],
        );
        SlotMsg { slot, env }
    }

    #[test]
    fn checkpoints_seal_a_lagging_replica_out_of_order() {
        let setup = ProtocolConfig::new(4, 1).seed(21).setup();
        let mut log =
            ReplicatedLog::<ByzantineConsensus>::new(&setup, ProcessId(3), 3, cmd).with_catchup(8);
        let mut draw = || 0u64;
        let mut ctx: RtContext<'_, SlotMsg, Vec<ValueVector>> =
            RtContext::new(VirtualTime::ZERO, ProcessId(3), 4, &mut draw);
        // Slot 2 first: must buffer, not apply.
        let early = synthetic_checkpoint(&setup, 2, ProcessId(0));
        Actor::on_message(&mut log, ProcessId(0), &early, &mut ctx);
        assert_eq!(log.log.len(), 0, "future checkpoint must buffer");
        // Slots 0 and 1 arrive; slot 2 then drains from the buffer and the
        // replica reaches its decision entirely from checkpoints.
        for k in [0, 1] {
            let msg = synthetic_checkpoint(&setup, k, ProcessId(0));
            Actor::on_message(&mut log, ProcessId(0), &msg, &mut ctx);
        }
        let fx = ctx.into_effects();
        let decided = fx.decision.expect("sealed all three slots");
        assert_eq!(decided.len(), 3);
        for (slot, vect) in decided.iter().enumerate() {
            for (p, v) in vect.iter_set() {
                assert_eq!(v, cmd(slot as u64, p as u32));
            }
        }
        assert_eq!(
            fx.notes
                .iter()
                .filter(|t| t.starts_with("catchup-applied"))
                .count(),
            3
        );
    }

    #[test]
    fn forged_checkpoints_are_rejected_not_applied() {
        let setup = ProtocolConfig::new(4, 1).seed(22).setup();
        let mut log =
            ReplicatedLog::<ByzantineConsensus>::new(&setup, ProcessId(3), 2, cmd).with_catchup(8);
        let mut draw = || 0u64;
        let mut ctx: RtContext<'_, SlotMsg, Vec<ValueVector>> =
            RtContext::new(VirtualTime::ZERO, ProcessId(3), 4, &mut draw);
        // A checkpoint whose digest commits to a different slot than the
        // quorum certifies: the analyzer must convict, the log must not move.
        let mut msg = synthetic_checkpoint(&setup, 0, ProcessId(0));
        let honest = synthetic_checkpoint(&setup, 1, ProcessId(0));
        msg.env = Envelope::make(
            ProcessId(0),
            honest.env.core().clone(),
            msg.env.cert.clone(),
            &setup.keys[0],
        );
        msg.slot = 0;
        Actor::on_message(&mut log, ProcessId(0), &msg, &mut ctx);
        assert_eq!(log.log.len(), 0, "forged checkpoint must not seal");
        let fx = ctx.into_effects();
        assert!(fx.notes.iter().any(|t| t.starts_with("catchup-rejected")));
    }

    #[test]
    fn sealed_replicas_answer_stale_traffic_with_throttled_checkpoints() {
        let setup = ProtocolConfig::new(4, 1).seed(23).setup();
        let mut log =
            ReplicatedLog::<ByzantineConsensus>::new(&setup, ProcessId(0), 4, cmd).with_catchup(2);
        let mut draw = || 0u64;
        let mut ctx: RtContext<'_, SlotMsg, Vec<ValueVector>> =
            RtContext::new(VirtualTime::ZERO, ProcessId(0), 4, &mut draw);
        // Seal three of four slots from peers' checkpoints; the external
        // certificates are retained as slot evidence.
        for k in [0, 1, 2] {
            let msg = synthetic_checkpoint(&setup, k, ProcessId(1));
            Actor::on_message(&mut log, ProcessId(1), &msg, &mut ctx);
        }
        assert_eq!(log.current, 3);
        ctx.take_staged_sends();
        // A laggard's slot-0 instance traffic earns a window of checkpoints.
        let stale = SlotMsg {
            slot: 0,
            env: Envelope::make(
                ProcessId(3),
                Core::Init { value: cmd(0, 3) },
                Certificate::default(),
                &setup.keys[3],
            ),
        };
        Actor::on_message(&mut log, ProcessId(3), &stale, &mut ctx);
        let sends = ctx.take_staged_sends();
        assert_eq!(sends.len(), 2, "window=2 bounds the reply");
        for (i, (to, reply)) in sends.iter().enumerate() {
            assert_eq!(*to, ProcessId(3));
            assert_eq!(reply.slot, i as u64);
            assert_eq!(reply.env.kind(), MessageKind::Checkpoint);
            // The reply survives the admission the laggard will run.
            log.checker.check_envelope(&reply.env).expect("valid reply");
        }
        // Repeats of the same stale slot are throttled (next reply at the
        // 16th repeat), so retransmission storms cost one reply per stride.
        for _ in 0..15 {
            Actor::on_message(&mut log, ProcessId(3), &stale, &mut ctx);
        }
        assert_eq!(ctx.take_staged_sends().len(), 0, "repeats 1-15: throttled");
        Actor::on_message(&mut log, ProcessId(3), &stale, &mut ctx);
        assert_eq!(ctx.take_staged_sends().len(), 2, "16th repeat replies");
    }

    #[test]
    fn catchup_enabled_runs_stay_consistent() {
        // Healthy runs contain stale traffic too (slot-k messages landing
        // after a replica sealed k), so catch-up replies do flow; they must
        // be ignored by up-to-date receivers and never fork the log.
        for seed in 0..3 {
            let setup = ProtocolConfig::new(4, 1).seed(seed).setup();
            let report = Simulation::build_boxed(SimConfig::new(4).seed(seed), |id| {
                Box::new(
                    ReplicatedLog::<ByzantineConsensus>::new(&setup, id, 2, cmd).with_catchup(4),
                )
            })
            .run();
            let log = check_log_consistency(&report.decisions, &report.crashed, 3)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(log.len(), 2, "seed {seed}");
        }
    }
}
