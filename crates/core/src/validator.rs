//! Run-level property checkers: one source of truth for tests, examples
//! and the experiment harness.
//!
//! Validators take a finished [`ftm_sim::RunReport`] plus ground truth the
//! harness knows (who was faulty, what everyone proposed) and return a
//! [`Verdict`] per property. Violations carry text for experiment logs.

use ftm_certify::vector::check_vector_validity;
use ftm_certify::{Value, ValueVector};
use ftm_sim::trace::{Trace, TraceEvent};
use ftm_sim::{ProcessId, RunReport, VirtualTime};

/// The verdict on one run against one specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Every correct process decided.
    pub termination: bool,
    /// No two correct processes decided differently.
    pub agreement: bool,
    /// The validity property of the spec checked (classical or vector).
    pub validity: bool,
    /// Human-readable violations for experiment logs.
    pub violations: Vec<String>,
}

impl Verdict {
    /// All three properties hold.
    pub fn ok(&self) -> bool {
        self.termination && self.agreement && self.validity
    }
}

/// Checks classical consensus on a crash-model run.
///
/// `proposals[i]` is what `p_i` proposed; `faulty[i]` marks processes that
/// were crashed *or* Byzantine-wrapped (excluded from the obligations, as
/// specifications only constrain correct processes).
pub fn check_crash_consensus(
    report: &RunReport<Value>,
    proposals: &[Value],
    faulty: &[bool],
) -> Verdict {
    let mut violations = Vec::new();
    let correct: Vec<usize> = (0..proposals.len())
        .filter(|&i| !faulty.get(i).copied().unwrap_or(false) && !report.crashed[i])
        .collect();

    let termination = correct.iter().all(|&i| report.decisions[i].is_some());
    if !termination {
        violations.push("termination: some correct process never decided".into());
    }

    let decided: Vec<Value> = correct
        .iter()
        .filter_map(|&i| report.decisions[i])
        .collect();
    let agreement = decided.windows(2).all(|w| w[0] == w[1]);
    if !agreement {
        violations.push(format!("agreement: correct processes decided {decided:?}"));
    }

    let validity = decided.iter().all(|v| proposals.contains(v));
    if !validity {
        violations.push(format!(
            "validity: decided value not among proposals {decided:?}"
        ));
    }

    Verdict {
        termination,
        agreement,
        validity,
        violations,
    }
}

/// Checks Vector Consensus on a transformed-protocol run.
///
/// `proposals[i]` is `p_i`'s initial value; `faulty[i]` marks the
/// adversary-controlled processes. Vector Validity is checked with
/// `ψ = n − 2F` (see [`check_vector_validity`]).
pub fn check_vector_consensus(
    report: &RunReport<ValueVector>,
    proposals: &[Value],
    faulty: &[bool],
    f: usize,
) -> Verdict {
    let mut violations = Vec::new();
    let n = proposals.len();
    let correct: Vec<usize> = (0..n)
        .filter(|&i| !faulty.get(i).copied().unwrap_or(false) && !report.crashed[i])
        .collect();

    let termination = correct.iter().all(|&i| report.decisions[i].is_some());
    if !termination {
        violations.push("termination: some correct process never decided".into());
    }

    let decided: Vec<&ValueVector> = correct
        .iter()
        .filter_map(|&i| report.decisions[i].as_ref())
        .collect();
    let agreement = decided.windows(2).all(|w| w[0] == w[1]);
    if !agreement {
        violations.push("agreement: correct processes decided different vectors".into());
    }

    // Ground truth for Vector Validity: correct processes' true values.
    let truth: Vec<Option<Value>> = (0..n)
        .map(|i| {
            if faulty.get(i).copied().unwrap_or(false) || report.crashed[i] {
                None
            } else {
                Some(proposals[i])
            }
        })
        .collect();
    let mut validity = true;
    for vect in &decided {
        if let Err(e) = check_vector_validity(vect, &truth, f) {
            validity = false;
            violations.push(format!("vector validity: {e}"));
            break;
        }
    }

    Verdict {
        termination,
        agreement,
        validity,
        violations,
    }
}

/// Strips the replicated-log workload's `s<slot>:` note prefix, so the
/// note parsers below work on one-shot and per-slot notes alike.
fn strip_slot_prefix(text: &str) -> &str {
    if let Some(rest) = text.strip_prefix('s') {
        if let Some((digits, tail)) = rest.split_once(':') {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return tail;
            }
        }
    }
    text
}

/// Number of rounds `p` opened during the run (counts `round=` notes).
pub fn rounds_used(trace: &Trace, p: ProcessId) -> usize {
    trace
        .notes_of(p)
        .iter()
        .filter(|s| strip_slot_prefix(s).starts_with("round="))
        .count()
}

/// Highest round any process opened.
pub fn max_round(trace: &Trace, n: usize) -> usize {
    (0..n as u32)
        .map(|p| rounds_used(trace, ProcessId(p)))
        .max()
        .unwrap_or(0)
}

/// A parsed `detected=` note: who convicted whom, for what, when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// The convicting observer.
    pub observer: ProcessId,
    /// The convicted process.
    pub culprit: String,
    /// Fault class label (e.g. `bad-certificate`).
    pub class: String,
    /// When the conviction happened.
    pub at: VirtualTime,
}

/// Extracts all non-muteness detections from a trace (notes emitted by the
/// transformed protocol as `detected=<p> class=<c> reason=<r>`, optionally
/// behind a replicated-log slot prefix).
pub fn detections(trace: &Trace) -> Vec<Detection> {
    let mut out = Vec::new();
    for entry in trace.entries() {
        if let TraceEvent::Note { process, text } = &entry.event {
            if let Some(rest) = strip_slot_prefix(text).strip_prefix("detected=") {
                let mut culprit = String::new();
                let mut class = String::new();
                for tok in rest.split_whitespace() {
                    if let Some(c) = tok.strip_prefix("class=") {
                        class = c.to_string();
                    } else if culprit.is_empty() {
                        culprit = tok.to_string();
                    }
                }
                out.push(Detection {
                    observer: *process,
                    culprit,
                    class,
                    at: entry.at,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_sim::metrics::Metrics;
    use ftm_sim::runner::StopReason;

    fn mk_report(decisions: Vec<Option<Value>>, crashed: Vec<bool>) -> RunReport<Value> {
        let n = decisions.len();
        RunReport {
            decisions,
            crashed,
            halted: vec![true; n],
            contradictions: vec![],
            end_time: VirtualTime::at(100),
            stop: StopReason::AllStopped,
            trace: Trace::new(),
            metrics: Metrics::new(n),
        }
    }

    #[test]
    fn crash_verdict_all_good() {
        let r = mk_report(vec![Some(5), Some(5), Some(5)], vec![false; 3]);
        let v = check_crash_consensus(&r, &[5, 6, 7], &[false; 3]);
        assert!(v.ok(), "{:?}", v.violations);
    }

    #[test]
    fn crash_verdict_flags_disagreement() {
        let r = mk_report(vec![Some(5), Some(6), Some(5)], vec![false; 3]);
        let v = check_crash_consensus(&r, &[5, 6, 7], &[false; 3]);
        assert!(!v.agreement);
        assert!(!v.ok());
        assert!(v.violations[0].contains("agreement"));
    }

    #[test]
    fn crash_verdict_flags_invalid_value() {
        let r = mk_report(vec![Some(99), Some(99), Some(99)], vec![false; 3]);
        let v = check_crash_consensus(&r, &[5, 6, 7], &[false; 3]);
        assert!(v.agreement && !v.validity);
    }

    #[test]
    fn crash_verdict_excludes_faulty_and_crashed() {
        let r = mk_report(vec![Some(5), None, Some(5)], vec![false, true, false]);
        let v = check_crash_consensus(&r, &[5, 6, 7], &[false, false, false]);
        assert!(v.ok(), "{:?}", v.violations);
        // A Byzantine-wrapped process deciding garbage is also excluded.
        let r = mk_report(vec![Some(5), Some(42), Some(5)], vec![false; 3]);
        let v = check_crash_consensus(&r, &[5, 6, 7], &[false, true, false]);
        assert!(v.ok(), "{:?}", v.violations);
    }

    #[test]
    fn crash_verdict_flags_missing_decision() {
        let r = mk_report(vec![Some(5), None, Some(5)], vec![false; 3]);
        let v = check_crash_consensus(&r, &[5, 6, 7], &[false; 3]);
        assert!(!v.termination);
    }

    fn mk_vreport(
        decisions: Vec<Option<ValueVector>>,
        crashed: Vec<bool>,
    ) -> RunReport<ValueVector> {
        let n = decisions.len();
        RunReport {
            decisions,
            crashed,
            halted: vec![true; n],
            contradictions: vec![],
            end_time: VirtualTime::at(100),
            stop: StopReason::AllStopped,
            trace: Trace::new(),
            metrics: Metrics::new(n),
        }
    }

    #[test]
    fn vector_verdict_all_good() {
        let vect = ValueVector::from_entries(vec![Some(10), Some(11), Some(12), None]);
        let r = mk_vreport(vec![Some(vect.clone()); 4], vec![false; 4]);
        let v = check_vector_consensus(&r, &[10, 11, 12, 13], &[false, false, false, true], 1);
        assert!(v.ok(), "{:?}", v.violations);
    }

    #[test]
    fn vector_verdict_flags_falsified_entry() {
        let vect = ValueVector::from_entries(vec![Some(10), Some(99), Some(12), None]);
        let r = mk_vreport(vec![Some(vect.clone()); 4], vec![false; 4]);
        let v = check_vector_consensus(&r, &[10, 11, 12, 13], &[false; 4], 1);
        assert!(!v.validity);
    }

    #[test]
    fn detections_parse_notes() {
        let mut trace = Trace::new();
        trace.record(
            VirtualTime::at(9),
            TraceEvent::Note {
                process: ProcessId(1),
                text: "detected=p3 class=bad-certificate reason=whatever".into(),
            },
        );
        trace.record(
            VirtualTime::at(10),
            TraceEvent::Note {
                process: ProcessId(1),
                text: "round=2".into(),
            },
        );
        let d = detections(&trace);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].culprit, "p3");
        assert_eq!(d[0].class, "bad-certificate");
        assert_eq!(d[0].at, VirtualTime::at(9));
    }

    #[test]
    fn rounds_used_counts_notes() {
        let mut trace = Trace::new();
        for r in 1..=3 {
            trace.record(
                VirtualTime::at(r),
                TraceEvent::Note {
                    process: ProcessId(0),
                    text: format!("round={r}"),
                },
            );
        }
        assert_eq!(rounds_used(&trace, ProcessId(0)), 3);
        assert_eq!(max_round(&trace, 2), 3);
    }
}
