//! The canonical home of the paper's quorum algebra — `F ≤ min(⌊(n−1)/2⌋, C)`
//! and every cardinality threshold derived from it.
//!
//! The functions are implemented in the dependency-free [`ftm_quorum`]
//! crate (the workspace layering puts `ftm-core` above `rbcast` and
//! `certify`, which also need them) and re-exported here verbatim: this
//! path is the one the documentation, `ftm-verify`'s exhaustive `quorum`
//! intersection check, and the `ftm-lint` D5 rule all reference. No other
//! module in the workspace is allowed to hand-roll `n - f`, `2*f + 1` or
//! their relatives — D5 flags any that reappear.
//!
//! ```
//! use ftm_core::quorum;
//! // The (31, 10) flagship system: 21-vote quorums, any two overlap in 11.
//! assert_eq!(quorum::quorum_size(31, 10), 21);
//! assert_eq!(quorum::intersection_margin(31, 10), 11);
//! assert_eq!(quorum::resilience_bound(31, 10), 10);
//! ```

pub use ftm_quorum::{
    bracha_echo_quorum, bracha_min_n, bracha_ready_quorum, certification_quorum,
    default_cert_capacity, intersection_margin, max_faults, quorum_size, resilience_bound,
    vector_validity_floor,
};
