//! The paper's contribution: a modular transformation from crash
//! fault-tolerance to arbitrary-fault tolerance, instantiated on consensus.
//!
//! Baldoni, Hélary and Raynal (DSN 2000) propose a *methodology*: take a
//! regular round-based protocol proved correct under crash failures, and
//! make it resilient to arbitrary (Byzantine) failures by encapsulating the
//! detection of each failure class in a dedicated module. This crate
//! contains both endpoints of that transformation and the machinery
//! between them:
//!
//! * [`crash`] — the Hurfin–Raynal ◇S consensus protocol (paper Fig. 2,
//!   the FIFO-channel variant), the *input* of the transformation;
//! * [`transform`] — the five-module process structure (paper Fig. 1) and
//!   the transformation rules of §3 as reusable machinery: the receive
//!   pipeline ([`transform::stack::ModuleStack`]) and the
//!   local-variable-to-certificate expression rules
//!   ([`transform::rules`]);
//! * [`byzantine`] — the *output*: the transformed protocol (paper
//!   Fig. 3), solving **Vector Consensus** with Agreement, Termination and
//!   Vector Validity under `F ≤ min(⌊(n−1)/2⌋, C)` arbitrary failures;
//! * [`spec`] and [`validator`] — problem specifications and trace-level
//!   property checkers shared by tests, examples and the experiment
//!   harness.
//!
//! # Quickstart
//!
//! ```
//! use ftm_core::byzantine::ByzantineConsensus;
//! use ftm_core::config::ProtocolConfig;
//! use ftm_sim::{SimConfig, Simulation};
//!
//! // 4 processes, F = 1, everyone honest, proposals 100 + i.
//! let proto = ProtocolConfig::new(4, 1).seed(7);
//! let setup = proto.setup();
//! let report = Simulation::build_boxed(SimConfig::new(4).seed(7), |id| {
//!     Box::new(ByzantineConsensus::new(&setup, id, 100 + id.0 as u64))
//! })
//! .run();
//! assert!(report.all_decided());
//! let vect = report.unanimous().expect("agreement");
//! assert!(vect.non_null_count() >= 3); // at least n − F entries
//! ```

pub mod byzantine;
pub mod config;
pub mod crash;
pub mod quorum;
pub mod spec;
pub mod transform;
pub mod validator;

pub use byzantine::{ByzantineChandraToueg, ByzantineConsensus, TransformedProtocol};
pub use config::{ProtocolConfig, ProtocolSetup};
pub use crash::CrashConsensus;
