//! The generic transformation methodology (paper §3 and Fig. 1).
//!
//! A process of a transformed protocol is a stack of five modules:
//!
//! ```text
//!        network ──▶ signature ──▶ muteness FD ──▶ non-muteness FD ──▶
//!        certification ──▶ round-based protocol ──▶ signature ──▶ network
//! ```
//!
//! The methodology applies to *regular round-based* protocols — each
//! correct process communicates regularly with the others over
//! asynchronous rounds — whose program text every process knows. The
//! transformation rules are:
//!
//! 1. **Sign everything** — receivers authenticate the sender
//!    ([`ftm_certify::Envelope`]).
//! 2. **Replace the crash detector with a muteness detector ◇M** — a
//!    Byzantine process can fall protocol-mute without crashing
//!    ([`ftm_fd::TimeoutDetector`] fed only with accepted protocol
//!    messages).
//! 3. **Audit every receipt against the sender's state machine** —
//!    out-of-order and wrong-expected messages convict the sender
//!    ([`ftm_detect::Observer`]).
//! 4. **Certify every send** — attach the signed receipts that justify the
//!    carried value and the send condition
//!    ([`ftm_certify::Certificate`]); replace expressions over corruptible
//!    local variables with expressions over certificates ([`rules`]).
//! 5. **Vector-certify what has no history** — initial values become a
//!    certified vector, turning the problem into Vector Consensus
//!    ([`ftm_certify::vector::VectorBuilder`]).
//!
//! [`stack::ModuleStack`] packages modules 1–3 into a single receive
//! pipeline reusable by any protocol whose wire format is
//! [`ftm_certify::Envelope`]; the certification discipline (4–5) is
//! necessarily protocol-specific — the paper is explicit that certificate
//! *design* depends on the protocol being transformed, while the *method*
//! (witness values, witness send conditions, majority cardinalities) is
//! generic.

pub mod rules;
pub mod stack;

pub use stack::{Admit, ModuleStack, MutenessFd, StackStats};
