//! Local-variable handling rules (paper §3, "Handling local variables",
//! and §5.1, "Certifying other local variables").
//!
//! A faulty process can corrupt any local variable, so the transformed
//! protocol must not *trust* plain variables in any expression another
//! process might need to audit. The paper's rule: replace such expressions
//! with expressions over certificates (which cannot be corrupted). For the
//! consensus case study:
//!
//! * `nb_current` → `|current_cert|` (distinct CURRENT signers this round);
//! * `nb_next` → `|next_cert|`;
//! * `rec_from` → `REC_FROM` (distinct CURRENT/NEXT signers);
//! * `state` → the certificate expressions below;
//! * `change_mind` → the certificate expression below.
//!
//! The protocol in [`crate::byzantine`] keeps explicit state for clarity
//! and *asserts* it equal to the certificate-derived state at every
//! transition — making the rule checkable instead of merely followed.

/// The protocol automaton states expressed over certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperState {
    /// `|current_cert| = 0 ∧ own NEXT ∉ next_cert`.
    Q0,
    /// `|current_cert| ≥ 1 ∧ own NEXT ∉ next_cert`.
    Q1,
    /// `own NEXT ∈ next_cert`.
    Q2,
}

/// Derives the automaton state from certificate observations (paper §5.1).
///
/// # Example
///
/// ```
/// use ftm_core::transform::rules::{state_from_certificates, PaperState};
/// assert_eq!(state_from_certificates(0, false), PaperState::Q0);
/// assert_eq!(state_from_certificates(2, false), PaperState::Q1);
/// assert_eq!(state_from_certificates(2, true), PaperState::Q2);
/// ```
pub fn state_from_certificates(current_count: usize, own_next_in_cert: bool) -> PaperState {
    if own_next_in_cert {
        PaperState::Q2
    } else if current_count == 0 {
        PaperState::Q0
    } else {
        PaperState::Q1
    }
}

/// The `change_mind` predicate over certificates:
/// `(|current_cert| ≥ 1) ∧ own NEXT ∉ next_cert ∧ |REC_FROM| ≥ n − F ∧`
/// neither a CURRENT nor a NEXT quorum (those trigger decide / round end
/// instead).
pub fn change_mind_from_certificates(
    current_count: usize,
    next_count: usize,
    own_next_in_cert: bool,
    rec_from_count: usize,
    quorum: usize,
) -> bool {
    state_from_certificates(current_count, own_next_in_cert) == PaperState::Q1
        && rec_from_count >= quorum
        && current_count < quorum
        && next_count < quorum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_derivation_matches_paper_table() {
        assert_eq!(state_from_certificates(0, false), PaperState::Q0);
        assert_eq!(state_from_certificates(1, false), PaperState::Q1);
        assert_eq!(state_from_certificates(3, false), PaperState::Q1);
        // own NEXT dominates: once sent, the process is in q2 regardless.
        assert_eq!(state_from_certificates(0, true), PaperState::Q2);
        assert_eq!(state_from_certificates(5, true), PaperState::Q2);
    }

    #[test]
    fn change_mind_requires_q1_and_split_votes() {
        let q = 3;
        // In q1, 3 voters seen, 1 CURRENT + 2 NEXT: must change mind.
        assert!(change_mind_from_certificates(1, 2, false, 3, q));
        // Not yet a quorum of voters: wait.
        assert!(!change_mind_from_certificates(1, 1, false, 2, q));
        // CURRENT quorum: would decide instead.
        assert!(!change_mind_from_certificates(3, 0, false, 3, q));
        // NEXT quorum: round ends instead.
        assert!(!change_mind_from_certificates(1, 3, false, 4, q));
        // Already in q2: no second NEXT.
        assert!(!change_mind_from_certificates(1, 2, true, 3, q));
        // In q0 (never saw a CURRENT): suspicion path, not change_mind.
        assert!(!change_mind_from_certificates(0, 2, false, 2, q));
    }
}
