//! The receive-side module stack (paper Fig. 1): signature module,
//! muteness failure detection, non-muteness failure detection.

use ftm_certify::analyzer::{CertChecker, NextTrigger};
use ftm_certify::{CertifyError, Envelope, FaultClass, ProtocolId};
use ftm_detect::observer::Checks;
use ftm_detect::Observer;
use ftm_fd::{FailureDetector, MutenessDetector, TimeoutDetector};
use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::config::{MutenessMode, ProtocolSetup};

/// Outcome of pushing one incoming envelope through the stack.
#[derive(Debug)]
pub enum Admit {
    /// All modules passed; the protocol module may consume the message.
    /// For NEXT messages the analyzer's trigger classification is included.
    Accepted(Option<NextTrigger>),
    /// Some module rejected the message; it must be dropped. The sender
    /// has been convicted and recorded.
    Discarded(CertifyError),
}

/// Modules 1–3 of the paper's process structure, as one pipeline.
///
/// * The **signature module** checks that the claimed sender matches the
///   channel and that the core signature verifies.
/// * The **muteness detection module** (◇M) is fed *only with messages the
///   other modules accept*: a process spewing garbage is as mute as one
///   saying nothing — exactly why muteness detection cannot be
///   context-free (Doudou et al., cited in §1).
/// * The **non-muteness detection module** runs the per-peer state machine
///   and the certificate analyzer.
///
/// The protocol module reads two outputs: `suspected` (muteness) and
/// `faulty` (everything else), mirroring the paper's `suspected_i ∪
/// faulty_i` guard at Fig. 3 line 22.
///
/// # Example
///
/// ```
/// use ftm_certify::analyzer::CertChecker;
/// use ftm_certify::{Certificate, Core, Envelope};
/// use ftm_core::transform::{Admit, ModuleStack};
/// use ftm_sim::{Duration, ProcessId, VirtualTime};
///
/// let mut rng = ftm_crypto::rng_from_seed(8);
/// let (dir, keys) = ftm_crypto::keydir::KeyDirectory::generate(&mut rng, 3, 128);
/// let mut stack = ModuleStack::new(CertChecker::new(3, 1, dir), Duration::of(100));
/// let env = Envelope::make(ProcessId(1), Core::Init { value: 4 },
///                          Certificate::new(), &keys[1]);
/// assert!(matches!(stack.admit(ProcessId(1), &env, VirtualTime::ZERO), Admit::Accepted(_)));
/// ```
/// The pluggable muteness detection module: either the generic adaptive
/// timeout detector or the round-aware ◇M variant.
#[derive(Debug, Clone)]
pub enum MutenessFd {
    /// [`TimeoutDetector`]: doubles a peer's timeout on each mistake.
    Adaptive(TimeoutDetector),
    /// [`MutenessDetector`]: allowance additionally grows with the round.
    RoundAware(MutenessDetector),
}

impl MutenessFd {
    fn observe_message(&mut self, peer: ProcessId, now: VirtualTime) {
        match self {
            MutenessFd::Adaptive(d) => d.observe_message(peer, now),
            MutenessFd::RoundAware(d) => d.observe_message(peer, now),
        }
    }

    fn suspects(&mut self, peer: ProcessId, now: VirtualTime) -> bool {
        match self {
            MutenessFd::Adaptive(d) => d.suspects(peer, now),
            MutenessFd::RoundAware(d) => d.suspects(peer, now),
        }
    }

    /// Round progression hook (no-op for the adaptive detector).
    pub fn enter_round(&mut self, round: u64, now: VirtualTime) {
        if let MutenessFd::RoundAware(d) = self {
            d.enter_round(round, now);
        }
    }

    /// Wrongful suspicions corrected so far.
    pub fn mistakes(&self) -> u64 {
        match self {
            MutenessFd::Adaptive(d) => d.mistakes(),
            MutenessFd::RoundAware(d) => d.mistakes(),
        }
    }

    /// Wrongful suspicions of `peer` corrected so far (per-peer breakdown
    /// of [`mistakes`](Self::mistakes)).
    pub fn mistakes_for(&self, peer: ProcessId) -> u64 {
        match self {
            MutenessFd::Adaptive(d) => d.mistakes_for(peer),
            MutenessFd::RoundAware(d) => d.mistakes_for(peer),
        }
    }
}

/// Per-layer activity counters for one process's receive-side stack.
///
/// Every incoming envelope either clears all modules (`admitted`) or is
/// charged to the module that rejected it, so [`StackStats::total`]
/// equals the number of envelopes pushed through [`ModuleStack::admit`].
/// The sweep harness sums these across processes into the per-scenario
/// metrics record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Envelopes accepted by all modules (these feed ◇M).
    pub admitted: u64,
    /// Rejections by the signature module (`bad-signature`).
    pub signature_rejects: u64,
    /// Rejections by the certification analyzer (`bad-certificate`).
    pub certificate_rejects: u64,
    /// Rejections by the non-muteness automaton (`out-of-order` /
    /// wrong-expected receipts).
    pub automaton_rejects: u64,
    /// Rejections for malformed content (`wrong-syntax`).
    pub syntax_rejects: u64,
    /// Checkpoint envelopes that cleared all modules (a subset of
    /// [`admitted`]): quorum-backed slot compactions this stack audited
    /// and accepted. Forged or sub-quorum checkpoints land in
    /// [`certificate_rejects`] like any other bad certificate.
    ///
    /// [`admitted`]: StackStats::admitted
    /// [`certificate_rejects`]: StackStats::certificate_rejects
    pub checkpoints: u64,
    /// Envelopes dropped without inspection because the sender was
    /// already convicted (quarantine). Not counted in [`total`]: the
    /// stack never sees them.
    ///
    /// [`total`]: StackStats::total
    pub quarantined: u64,
}

impl StackStats {
    /// Total envelopes pushed through the stack.
    pub fn total(&self) -> u64 {
        self.admitted
            + self.signature_rejects
            + self.certificate_rejects
            + self.automaton_rejects
            + self.syntax_rejects
    }

    fn on_reject(&mut self, class: FaultClass) {
        match class {
            FaultClass::BadSignature => self.signature_rejects += 1,
            FaultClass::BadCertificate => self.certificate_rejects += 1,
            FaultClass::OutOfOrder => self.automaton_rejects += 1,
            FaultClass::WrongSyntax => self.syntax_rejects += 1,
        }
    }
}

/// The receive-side module stack of the transformation (Fig. 1): syntax,
/// signature, certificate, and automaton checks feeding the muteness
/// detector, with per-class rejection statistics.
#[derive(Debug, Clone)]
pub struct ModuleStack {
    observer: Observer,
    muteness: MutenessFd,
    stats: StackStats,
}

impl ModuleStack {
    /// Builds the stack for the system described by `checker`, with the
    /// given initial muteness timeout.
    pub fn new(checker: CertChecker, muteness_timeout: Duration) -> Self {
        Self::with_checks(checker, muteness_timeout, Checks::default())
    }

    /// Builds the stack with some checks disabled (ablation experiment E8).
    pub fn with_checks(checker: CertChecker, muteness_timeout: Duration, checks: Checks) -> Self {
        let n = checker.n();
        Self::with_options(
            checker,
            checks,
            MutenessFd::Adaptive(TimeoutDetector::new(n, muteness_timeout)),
        )
    }

    /// Builds the stack a transformed-protocol process embeds: the
    /// analyzer keyed to `protocol`'s rule table, the checks and ◇M
    /// implementation selected by the setup's configuration.
    pub fn for_setup(protocol: ProtocolId, setup: &ProtocolSetup) -> Self {
        let res = setup.resilience;
        let checker = CertChecker::new_for(protocol, res.n(), res.f(), setup.dir.clone());
        let muteness = match setup.config.muteness_mode {
            MutenessMode::Adaptive => {
                MutenessFd::Adaptive(TimeoutDetector::new(res.n(), setup.config.muteness_timeout))
            }
            MutenessMode::RoundAware { per_round } => MutenessFd::RoundAware(
                MutenessDetector::new(res.n(), setup.config.muteness_timeout, per_round),
            ),
        };
        Self::with_options(checker, setup.config.checks, muteness)
    }

    /// Fully explicit constructor: check configuration plus the muteness
    /// detection module to embed.
    pub fn with_options(checker: CertChecker, checks: Checks, muteness: MutenessFd) -> Self {
        ModuleStack {
            observer: Observer::with_checks(checker, checks),
            muteness,
            stats: StackStats::default(),
        }
    }

    /// Forwards the observer's round progression to the muteness module
    /// (meaningful for the round-aware ◇M variant).
    pub fn enter_round(&mut self, round: u64, now: VirtualTime) {
        self.muteness.enter_round(round, now);
    }

    /// Pushes one incoming envelope through modules 1–3.
    pub fn admit(&mut self, from: ProcessId, env: &Envelope, now: VirtualTime) -> Admit {
        match self.observer.observe(from, env, now) {
            Ok(trigger) => {
                // Only *accepted* protocol messages count against muteness.
                self.muteness.observe_message(from, now);
                self.stats.admitted += 1;
                if env.kind() == ftm_certify::MessageKind::Checkpoint {
                    self.stats.checkpoints += 1;
                }
                Admit::Accepted(trigger)
            }
            Err(e) => {
                self.stats.on_reject(e.class);
                Admit::Discarded(e)
            }
        }
    }

    /// The muteness detector's current verdict on `p` (◇M query).
    pub fn suspects(&mut self, p: ProcessId, now: VirtualTime) -> bool {
        self.muteness.suspects(p, now)
    }

    /// The non-muteness module's verdict on `p`.
    pub fn is_faulty(&self, p: ProcessId) -> bool {
        self.observer.is_faulty(p)
    }

    /// The Fig. 3 line 22 guard: `p ∈ (suspected_i ∨ faulty_i)`.
    pub fn suspected_or_faulty(&mut self, p: ProcessId, now: VirtualTime) -> bool {
        self.is_faulty(p) || self.suspects(p, now)
    }

    /// Read access to the non-muteness module (evidence, peer phases).
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Read access to the muteness detector (mistake counts).
    pub fn muteness(&self) -> &MutenessFd {
        &self.muteness
    }

    /// The underlying analyzer (quorum sizes, coordinator rule).
    pub fn checker(&self) -> &CertChecker {
        self.observer.checker()
    }

    /// Per-layer admit/reject counters accumulated so far.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Records one envelope dropped because its sender was already
    /// convicted. Quarantine bookkeeping lives with the protocol module
    /// (the drop happens before [`admit`](Self::admit) is reached), but
    /// the counter belongs here with the other per-layer statistics.
    pub fn record_quarantine(&mut self) {
        self.stats.quarantined += 1;
    }

    /// Renders the stack's counters as a `stack-stats` trace note, the
    /// format the sweep harness parses into per-cell metrics. Includes
    /// the ◇M mistake totals, split into mistakes about peers later
    /// convicted anyway versus mistakes about (still-)honest peers.
    pub fn stats_note(&self) -> String {
        let n = self.checker().n();
        let honest_mistakes: u64 = (0..n as u32)
            .map(ProcessId)
            .filter(|&p| !self.is_faulty(p))
            .map(|p| self.muteness.mistakes_for(p))
            .sum();
        let s = self.stats;
        format!(
            "stack-stats admitted={} sig-rejects={} cert-rejects={} \
             auto-rejects={} syntax-rejects={} fd-mistakes={} \
             fd-honest-mistakes={} quarantined={} checkpoints={}",
            s.admitted,
            s.signature_rejects,
            s.certificate_rejects,
            s.automaton_rejects,
            s.syntax_rejects,
            self.muteness.mistakes(),
            honest_mistakes,
            s.quarantined,
            s.checkpoints,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_certify::{Certificate, Core};
    use ftm_crypto::keydir::KeyDirectory;
    use ftm_crypto::rsa::KeyPair;

    fn fixture() -> (ModuleStack, Vec<KeyPair>) {
        let mut rng = ftm_crypto::rng_from_seed(91);
        let (dir, keys) = KeyDirectory::generate(&mut rng, 3, 128);
        (
            ModuleStack::new(CertChecker::new(3, 1, dir), Duration::of(50)),
            keys,
        )
    }

    fn init(keys: &[KeyPair], s: u32) -> Envelope {
        Envelope::make(
            ProcessId(s),
            Core::Init { value: s as u64 },
            Certificate::new(),
            &keys[s as usize],
        )
    }

    #[test]
    fn accepted_messages_feed_the_muteness_detector() {
        let (mut stack, keys) = fixture();
        assert!(matches!(
            stack.admit(ProcessId(1), &init(&keys, 1), VirtualTime::at(60)),
            Admit::Accepted(None)
        ));
        // p1 spoke at t=60: not suspected shortly after.
        assert!(!stack.suspects(ProcessId(1), VirtualTime::at(100)));
        // p2 never spoke: suspected once the timeout elapses.
        assert!(stack.suspects(ProcessId(2), VirtualTime::at(100)));
    }

    #[test]
    fn discarded_messages_do_not_feed_the_muteness_detector() {
        let (mut stack, keys) = fixture();
        // p1 sends garbage (signed with the wrong key) at t=60.
        let bad = Envelope::make(
            ProcessId(1),
            Core::Init { value: 0 },
            Certificate::new(),
            &keys[2],
        );
        assert!(matches!(
            stack.admit(ProcessId(1), &bad, VirtualTime::at(60)),
            Admit::Discarded(_)
        ));
        // Garbage is not a sign of protocol life: p1 is both faulty and,
        // once the timeout passes, suspected.
        assert!(stack.is_faulty(ProcessId(1)));
        assert!(stack.suspects(ProcessId(1), VirtualTime::at(100)));
        assert!(stack.suspected_or_faulty(ProcessId(1), VirtualTime::at(100)));
    }

    #[test]
    fn accessors_expose_modules() {
        let (mut stack, keys) = fixture();
        let _ = stack.admit(ProcessId(0), &init(&keys, 0), VirtualTime::ZERO);
        assert_eq!(stack.observer().faults().len(), 0);
        assert_eq!(stack.muteness().mistakes(), 0);
        assert_eq!(stack.checker().quorum(), 2);
    }

    #[test]
    fn stats_charge_each_layer_for_its_rejections() {
        let (mut stack, keys) = fixture();
        // One clean INIT: admitted.
        let _ = stack.admit(ProcessId(1), &init(&keys, 1), VirtualTime::ZERO);
        // Same INIT again: a duplicate, rejected by the automaton.
        let _ = stack.admit(ProcessId(1), &init(&keys, 1), VirtualTime::at(1));
        // Signed with the wrong key: rejected by the signature module.
        let bad_sig = Envelope::make(
            ProcessId(2),
            Core::Init { value: 0 },
            Certificate::new(),
            &keys[0],
        );
        let _ = stack.admit(ProcessId(2), &bad_sig, VirtualTime::at(2));
        let stats = stack.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.automaton_rejects, 1);
        assert_eq!(stats.signature_rejects, 1);
        assert_eq!(stats.certificate_rejects, 0);
        assert_eq!(stats.total(), 3);
    }

    #[test]
    fn stats_note_reports_all_counters_in_harness_format() {
        let (mut stack, keys) = fixture();
        let _ = stack.admit(ProcessId(1), &init(&keys, 1), VirtualTime::ZERO);
        stack.record_quarantine();
        stack.record_quarantine();
        assert_eq!(stack.stats().quarantined, 2);
        // Quarantined envelopes never reach the stack, so total() is
        // unaffected.
        assert_eq!(stack.stats().total(), 1);
        assert_eq!(
            stack.stats_note(),
            "stack-stats admitted=1 sig-rejects=0 cert-rejects=0 \
             auto-rejects=0 syntax-rejects=0 fd-mistakes=0 \
             fd-honest-mistakes=0 quarantined=2 checkpoints=0"
        );
    }

    #[test]
    fn checkpoints_are_admitted_and_counted_and_forgeries_convicted() {
        use ftm_certify::{make_checkpoint, ProtocolId, SignedCore, ValueVector};

        let (mut stack, keys) = fixture();
        let vect = ValueVector::from_entries(vec![Some(7), Some(8), None]);
        let quorum = Certificate::from_items((0..2u32).map(|s| {
            SignedCore::sign(
                ftm_certify::MessageCore::new(
                    ProcessId(s),
                    Core::Current {
                        round: 1,
                        vector: vect.clone(),
                    },
                ),
                &keys[s as usize],
            )
        }));
        // A quorum-backed checkpoint clears the stack and is counted.
        let good = make_checkpoint(
            ProtocolId::HurfinRaynal,
            4,
            &vect,
            quorum.clone(),
            ProcessId(1),
            &keys[1],
        );
        assert!(matches!(
            stack.admit(ProcessId(1), &good, VirtualTime::ZERO),
            Admit::Accepted(None)
        ));
        assert_eq!(stack.stats().checkpoints, 1);
        assert_eq!(stack.stats().admitted, 1);
        // A forged digest (quorum certifies a different vector) is a
        // bad-certificate conviction, not a counted checkpoint.
        let mut other = vect.clone();
        other.set(2, 99);
        let forged = make_checkpoint(
            ProtocolId::HurfinRaynal,
            4,
            &other,
            quorum,
            ProcessId(2),
            &keys[2],
        );
        assert!(matches!(
            stack.admit(ProcessId(2), &forged, VirtualTime::at(1)),
            Admit::Discarded(_)
        ));
        assert_eq!(stack.stats().checkpoints, 1);
        assert_eq!(stack.stats().certificate_rejects, 1);
        assert!(stack.is_faulty(ProcessId(2)));
        assert!(stack.stats_note().contains("checkpoints=1"));
    }

    #[test]
    fn honest_mistakes_exclude_convicted_peers() {
        let (mut stack, keys) = fixture();
        // Force a muteness mistake on p1: suspect, then rehabilitate.
        assert!(stack.suspects(ProcessId(1), VirtualTime::at(60)));
        let _ = stack.admit(ProcessId(1), &init(&keys, 1), VirtualTime::at(61));
        assert_eq!(stack.muteness().mistakes(), 1);
        assert!(stack.stats_note().contains("fd-honest-mistakes=1"));
        // Convict p1 via a forged signature: its past mistake no longer
        // counts as a mistake about an honest peer.
        let bad = Envelope::make(
            ProcessId(1),
            Core::Init { value: 0 },
            Certificate::new(),
            &keys[2],
        );
        let _ = stack.admit(ProcessId(1), &bad, VirtualTime::at(62));
        assert!(stack.is_faulty(ProcessId(1)));
        assert!(stack.stats_note().contains("fd-honest-mistakes=0"));
        assert!(stack.stats_note().contains("fd-mistakes=1"));
    }
}
