//! Protocol-level configuration and shared setup (key material).

use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::rsa::KeyPair;
use ftm_detect::observer::Checks;
use ftm_sim::Duration;

use crate::spec::Resilience;

/// Which ◇M implementation the transformed protocol embeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutenessMode {
    /// The generic adaptive timeout detector (doubles on mistakes).
    Adaptive,
    /// The round-aware variant: allowance grows by `per_round` with every
    /// round the observer enters (Doudou et al.'s implementation shape).
    RoundAware {
        /// Per-round allowance increment.
        per_round: Duration,
    },
}

/// Tunable parameters of both protocols.
///
/// # Example
///
/// ```
/// use ftm_core::config::ProtocolConfig;
/// use ftm_sim::Duration;
/// let cfg = ProtocolConfig::new(5, 2)
///     .seed(3)
///     .muteness_timeout(Duration::of(200));
/// let setup = cfg.setup();
/// assert_eq!(setup.resilience.quorum(), 3);
/// assert_eq!(setup.keys.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// Number of processes.
    pub n: usize,
    /// Tolerated faults `F`.
    pub f: usize,
    /// Seed for key generation (independent of the network seed).
    pub key_seed: u64,
    /// RSA modulus width; 128 bits keeps big sweeps fast (see the crypto
    /// crate's security disclaimer).
    pub modulus_bits: usize,
    /// Initial timeout of the muteness detector ◇M (Byzantine protocol).
    pub muteness_timeout: Duration,
    /// Initial timeout of the crash detector ◇S (crash protocol).
    pub crash_fd_timeout: Duration,
    /// How often a waiting process re-evaluates its suspicion of the
    /// coordinator (the event-driven rendering of the paper's `upon`).
    pub poll_interval: Duration,
    /// Heartbeat period for the crash protocol's ◇S implementation
    /// (`None` disables heartbeats; the detector then feeds on protocol
    /// messages only).
    pub heartbeat_interval: Option<Duration>,
    /// Which non-muteness checks run (all on by default; the ablation
    /// experiment E8 turns modules off one at a time).
    pub checks: Checks,
    /// Which ◇M implementation the transformed protocol embeds.
    pub muteness_mode: MutenessMode,
}

impl ProtocolConfig {
    /// Conservative defaults: key seed 0xF7, 128-bit keys, muteness/crash
    /// timeouts 150, poll every 25, heartbeats every 40.
    ///
    /// # Panics
    ///
    /// Panics if `(n, f)` violate the resilience bound (see
    /// [`Resilience::new`]).
    pub fn new(n: usize, f: usize) -> Self {
        let _ = Resilience::new(n, f); // validate early
        ProtocolConfig {
            n,
            f,
            key_seed: 0xF7,
            modulus_bits: 128,
            muteness_timeout: Duration::of(150),
            crash_fd_timeout: Duration::of(150),
            poll_interval: Duration::of(25),
            heartbeat_interval: Some(Duration::of(40)),
            checks: Checks::default(),
            muteness_mode: MutenessMode::Adaptive,
        }
    }

    /// Selects the ◇M implementation.
    pub fn muteness_mode(mut self, mode: MutenessMode) -> Self {
        self.muteness_mode = mode;
        self
    }

    /// Disables some non-muteness checks (ablation experiment E8 only).
    pub fn checks(mut self, checks: Checks) -> Self {
        self.checks = checks;
        self
    }

    /// Sets the key-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.key_seed = seed;
        self
    }

    /// Sets the RSA modulus width.
    pub fn modulus_bits(mut self, bits: usize) -> Self {
        self.modulus_bits = bits;
        self
    }

    /// Sets the ◇M initial timeout.
    pub fn muteness_timeout(mut self, t: Duration) -> Self {
        self.muteness_timeout = t;
        self
    }

    /// Sets the ◇S initial timeout.
    pub fn crash_fd_timeout(mut self, t: Duration) -> Self {
        self.crash_fd_timeout = t;
        self
    }

    /// Sets the suspicion poll interval.
    pub fn poll_interval(mut self, t: Duration) -> Self {
        self.poll_interval = t;
        self
    }

    /// Enables/disables heartbeats for the crash protocol's detector.
    pub fn heartbeats(mut self, interval: Option<Duration>) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Generates the run's shared key material and resilience parameters.
    pub fn setup(&self) -> ProtocolSetup {
        let mut rng = ftm_crypto::rng_from_seed(self.key_seed);
        let (dir, keys) = KeyDirectory::generate(&mut rng, self.n, self.modulus_bits);
        ProtocolSetup {
            resilience: Resilience::new(self.n, self.f),
            dir,
            keys,
            config: self.clone(),
        }
    }
}

/// Everything the actors of one run share: resilience parameters, the
/// public-key directory, and each process's key pair.
///
/// Faulty processes receive the same setup — they can misuse their own key
/// but cannot alter the directory or read other private keys (except when a
/// fault injector deliberately models a stolen key).
#[derive(Debug, Clone)]
pub struct ProtocolSetup {
    /// `(n, F)` and derived thresholds.
    pub resilience: Resilience,
    /// Public keys of all processes.
    pub dir: KeyDirectory,
    /// Private key pairs, indexed by process.
    pub keys: Vec<KeyPair>,
    /// The generating configuration (for timeouts etc.).
    pub config: ProtocolConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_deterministic_in_seed() {
        let a = ProtocolConfig::new(3, 1).seed(5).setup();
        let b = ProtocolConfig::new(3, 1).seed(5).setup();
        assert_eq!(a.keys[0].public(), b.keys[0].public());
        let c = ProtocolConfig::new(3, 1).seed(6).setup();
        assert_ne!(a.keys[0].public(), c.keys[0].public());
    }

    #[test]
    fn builder_round_trip() {
        let cfg = ProtocolConfig::new(4, 1)
            .modulus_bits(64)
            .muteness_timeout(Duration::of(9))
            .crash_fd_timeout(Duration::of(8))
            .poll_interval(Duration::of(7))
            .heartbeats(None);
        assert_eq!(cfg.modulus_bits, 64);
        assert_eq!(cfg.muteness_timeout, Duration::of(9));
        assert_eq!(cfg.crash_fd_timeout, Duration::of(8));
        assert_eq!(cfg.poll_interval, Duration::of(7));
        assert!(cfg.heartbeat_interval.is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn invalid_resilience_rejected_early() {
        let _ = ProtocolConfig::new(4, 2);
    }
}
