//! The Chandra–Toueg ◇S consensus protocol — a second member of the
//! "regular round-based" class the paper's methodology targets.
//!
//! Included as an extension: the paper's transformation is defined for any
//! regular round-based protocol, not just Hurfin–Raynal's. Implementing a
//! second such protocol (the classic one the ◇S class was introduced
//! with) lets the harness compare the *inputs* of the transformation
//! (E1's HR-vs-CT table) and documents what "regular communication
//! pattern" means concretely: every round has the same four phases.
//!
//! Round structure (rotating coordinator `c = (r−1) mod n`):
//!
//! 1. **Estimate** — everyone sends `(est, ts)` to the coordinator;
//! 2. **Propose** — the coordinator adopts the estimate with the highest
//!    timestamp among a majority and broadcasts it;
//! 3. **Ack/Nack** — each process waits for the proposal or a suspicion
//!    of the coordinator, replying ACK (adopting the proposal) or NACK;
//! 4. **Decide** — on a majority of ACKs the coordinator reliably
//!    broadcasts DECIDE; everyone relays and decides (the relay is the
//!    reliable-broadcast echo that keeps Agreement across crashes).

use std::collections::HashSet;

use ftm_certify::{Round, Value};
use ftm_fd::FailureDetector;
use ftm_sim::{Actor, Context, Payload, ProcessId, TimerTag};

use crate::spec::Resilience;

const POLL_TIMER: TimerTag = 1;
const HEARTBEAT_TIMER: TimerTag = 2;

/// Wire messages of the Chandra–Toueg protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtMsg {
    /// Phase 1: `(round, est, ts)` to the coordinator.
    Estimate {
        /// Current round.
        round: Round,
        /// The sender's current estimate.
        est: Value,
        /// Round in which the estimate was last adopted.
        ts: Round,
    },
    /// Phase 2: the coordinator's proposal.
    Propose {
        /// Current round.
        round: Round,
        /// The proposed estimate.
        est: Value,
    },
    /// Phase 3: positive acknowledgment, echoing the adopted estimate.
    Ack {
        /// Current round.
        round: Round,
        /// The estimate being acknowledged (the coordinator's proposal).
        est: Value,
    },
    /// Phase 3: negative acknowledgment (coordinator suspected).
    Nack {
        /// Current round.
        round: Round,
    },
    /// Phase 4 / reliable broadcast: the decision.
    Decide {
        /// The decided value.
        est: Value,
    },
    /// Failure-detector heartbeat.
    Heartbeat,
}

impl Payload for CtMsg {
    fn size_bytes(&self) -> usize {
        match self {
            CtMsg::Estimate { .. } => 1 + 8 + 8 + 8,
            CtMsg::Propose { .. } | CtMsg::Ack { .. } => 1 + 8 + 8,
            CtMsg::Nack { .. } => 1 + 8,
            CtMsg::Decide { .. } => 1 + 8,
            CtMsg::Heartbeat => 1,
        }
    }

    fn label(&self) -> String {
        match self {
            CtMsg::Estimate { round, .. } => format!("EST(r={round})"),
            CtMsg::Propose { round, est } => format!("PROP(r={round},est={est})"),
            CtMsg::Ack { round, est } => format!("ACK(r={round},est={est})"),
            CtMsg::Nack { round } => format!("NACK(r={round})"),
            CtMsg::Decide { est } => format!("DECIDE(est={est})"),
            CtMsg::Heartbeat => "HB".to_string(),
        }
    }
}

/// Which phase of the current round this process is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting to send the estimate (transient).
    Start,
    /// Coordinator: collecting a majority of estimates.
    CollectEstimates,
    /// Non-coordinator: waiting for the proposal (or suspicion).
    AwaitProposal,
    /// Coordinator: collecting acks/nacks.
    CollectAcks,
}

/// One process of the Chandra–Toueg protocol.
///
/// # Example
///
/// ```
/// use ftm_core::crash::chandra_toueg::ChandraToueg;
/// use ftm_core::spec::Resilience;
/// use ftm_fd::TimeoutDetector;
/// use ftm_sim::{Duration, SimConfig, Simulation};
///
/// let n = 4;
/// let report = Simulation::build(SimConfig::new(n).seed(3), |id| {
///     ChandraToueg::new(
///         Resilience::new(n, 1),
///         id,
///         10 + id.0 as u64,
///         TimeoutDetector::new(n, Duration::of(150)),
///         Duration::of(25),
///         Some(Duration::of(40)),
///     )
/// })
/// .run();
/// assert!(report.all_decided());
/// ```
#[derive(Debug)]
pub struct ChandraToueg<FD> {
    res: Resilience,
    me: ProcessId,
    r: Round,
    est: Value,
    ts: Round,
    phase: Phase,
    // Coordinator bookkeeping.
    estimates: Vec<(ProcessId, Value, Round)>,
    acks: HashSet<ProcessId>,
    nacks: HashSet<ProcessId>,
    fd: FD,
    poll_interval: ftm_sim::Duration,
    heartbeat_interval: Option<ftm_sim::Duration>,
    buffered: Vec<(ProcessId, CtMsg)>,
    decided: bool,
}

impl<FD: FailureDetector> ChandraToueg<FD> {
    /// Creates a process proposing `value`.
    pub fn new(
        res: Resilience,
        me: ProcessId,
        value: Value,
        fd: FD,
        poll_interval: ftm_sim::Duration,
        heartbeat_interval: Option<ftm_sim::Duration>,
    ) -> Self {
        ChandraToueg {
            res,
            me,
            r: 0,
            est: value,
            ts: 0,
            phase: Phase::Start,
            estimates: Vec::new(),
            acks: HashSet::new(),
            nacks: HashSet::new(),
            fd,
            poll_interval,
            heartbeat_interval,
            buffered: Vec::new(),
            decided: false,
        }
    }

    fn coordinator(&self) -> ProcessId {
        ProcessId(self.res.coordinator(self.r) as u32)
    }

    fn majority(&self) -> usize {
        self.res.crash_majority()
    }

    fn begin_round(&mut self, ctx: &mut Context<'_, CtMsg, Value>) {
        self.r += 1;
        self.estimates.clear();
        self.acks.clear();
        self.nacks.clear();
        ctx.note(format!("round={}", self.r));
        // Phase 1: everyone (coordinator included) sends its estimate.
        ctx.send(
            self.coordinator(),
            CtMsg::Estimate {
                round: self.r,
                est: self.est,
                ts: self.ts,
            },
        );
        self.phase = if self.me == self.coordinator() {
            Phase::CollectEstimates
        } else {
            Phase::AwaitProposal
        };
        self.drain_buffer(ctx);
    }

    fn drain_buffer(&mut self, ctx: &mut Context<'_, CtMsg, Value>) {
        loop {
            if self.decided {
                return;
            }
            let r = self.r;
            let Some(pos) = self.buffered.iter().position(|(_, m)| match m {
                CtMsg::Estimate { round, .. }
                | CtMsg::Propose { round, .. }
                | CtMsg::Ack { round, .. }
                | CtMsg::Nack { round } => *round == r,
                _ => false,
            }) else {
                return;
            };
            let (from, msg) = self.buffered.remove(pos);
            self.handle_current(from, msg, ctx);
        }
    }

    fn decide(&mut self, value: Value, ctx: &mut Context<'_, CtMsg, Value>) {
        // Reliable-broadcast echo: relay before deciding.
        self.decided = true;
        ctx.broadcast(CtMsg::Decide { est: value });
        ctx.decide(value);
        ctx.halt();
    }

    fn handle_current(&mut self, from: ProcessId, msg: CtMsg, ctx: &mut Context<'_, CtMsg, Value>) {
        match msg {
            CtMsg::Estimate { est, ts, .. } => {
                if self.phase != Phase::CollectEstimates {
                    return; // stale estimate to a past coordinator
                }
                self.estimates.push((from, est, ts));
                if self.estimates.len() >= self.majority() {
                    // Phase 2: adopt the freshest estimate and propose it.
                    let Some((_, best_est, _)) =
                        self.estimates.iter().max_by_key(|(_, _, ts)| *ts).copied()
                    else {
                        return; // the majority test guarantees nonempty
                    };
                    self.est = best_est;
                    self.ts = self.r;
                    ctx.broadcast(CtMsg::Propose {
                        round: self.r,
                        est: self.est,
                    });
                    self.phase = Phase::CollectAcks;
                }
            }
            CtMsg::Propose { est, .. } => {
                if self.phase != Phase::AwaitProposal {
                    // The coordinator receives its own proposal: treat it
                    // as an implicit ACK (it adopted the value already).
                    if self.me == self.coordinator() && self.phase == Phase::CollectAcks {
                        self.acks.insert(self.me);
                        self.check_acks(ctx);
                    }
                    return;
                }
                // Phase 3: adopt and ACK, echoing the adopted estimate.
                self.est = est;
                self.ts = self.r;
                ctx.send(self.coordinator(), CtMsg::Ack { round: self.r, est });
                self.begin_round(ctx);
            }
            CtMsg::Ack { .. } => {
                if self.phase == Phase::CollectAcks {
                    self.acks.insert(from);
                    self.check_acks(ctx);
                }
            }
            CtMsg::Nack { .. } => {
                if self.phase == Phase::CollectAcks {
                    self.nacks.insert(from);
                    self.check_acks(ctx);
                }
            }
            _ => unreachable!("handle_current only takes round messages"),
        }
    }

    fn check_acks(&mut self, ctx: &mut Context<'_, CtMsg, Value>) {
        if self.acks.len() >= self.majority() {
            // Phase 4: decide and reliably broadcast.
            self.decide(self.est, ctx);
        } else if self.acks.len() + self.nacks.len() >= self.majority() && !self.nacks.is_empty() {
            // The round cannot succeed; move on as a regular process.
            self.begin_round(ctx);
        }
    }
}

impl<FD: FailureDetector + 'static> Actor for ChandraToueg<FD> {
    type Msg = CtMsg;
    type Decision = Value;

    fn on_start(&mut self, ctx: &mut Context<'_, CtMsg, Value>) {
        self.begin_round(ctx);
        ctx.set_timer(self.poll_interval, POLL_TIMER);
        if let Some(hb) = self.heartbeat_interval {
            ctx.broadcast(CtMsg::Heartbeat);
            ctx.set_timer(hb, HEARTBEAT_TIMER);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: &CtMsg, ctx: &mut Context<'_, CtMsg, Value>) {
        if self.decided {
            return;
        }
        self.fd.observe_message(from, ctx.now());
        match msg {
            CtMsg::Heartbeat => {}
            CtMsg::Decide { est } => self.decide(*est, ctx),
            CtMsg::Estimate { round, .. }
            | CtMsg::Propose { round, .. }
            | CtMsg::Ack { round, .. }
            | CtMsg::Nack { round } => {
                if *round < self.r {
                    // Stale; drop. (Estimates for future rounds arrive when
                    // a peer outpaces us — buffer them.)
                } else if *round > self.r {
                    self.buffered.push((from, msg.clone()));
                } else {
                    self.handle_current(from, msg.clone(), ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, CtMsg, Value>) {
        if self.decided {
            return;
        }
        match tag {
            POLL_TIMER => {
                // Phase 3's escape hatch: suspect the coordinator → NACK
                // and move to the next round.
                if self.phase == Phase::AwaitProposal {
                    let coord = self.coordinator();
                    if self.fd.suspects(coord, ctx.now()) {
                        ctx.note(format!("suspect={} r={}", coord, self.r));
                        ctx.send(coord, CtMsg::Nack { round: self.r });
                        self.begin_round(ctx);
                    }
                }
                ctx.set_timer(self.poll_interval, POLL_TIMER);
            }
            HEARTBEAT_TIMER => {
                ctx.broadcast(CtMsg::Heartbeat);
                if let Some(hb) = self.heartbeat_interval {
                    ctx.set_timer(hb, HEARTBEAT_TIMER);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_fd::TimeoutDetector;
    use ftm_sim::{Duration, RunReport, SimConfig, Simulation, VirtualTime};

    fn run(n: usize, seed: u64, crashes: &[(usize, u64)]) -> RunReport<Value> {
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        let res = Resilience::new(n, crate::quorum::max_faults(n));
        Simulation::build(cfg, |id| {
            ChandraToueg::new(
                res,
                id,
                100 + id.0 as u64,
                TimeoutDetector::new(n, Duration::of(150)),
                Duration::of(25),
                Some(Duration::of(40)),
            )
        })
        .run()
    }

    #[test]
    fn all_honest_decide_round_one() {
        let report = run(4, 1, &[]);
        assert!(report.all_decided());
        // Round 1's coordinator is p0; with everyone honest its estimate
        // (the freshest is any ts=0; max_by_key picks one) is decided and
        // shared by all.
        assert!(report.unanimous().is_some());
    }

    #[test]
    fn agreement_and_validity_across_seeds() {
        for seed in 0..20 {
            let report = run(5, seed, &[]);
            assert!(report.all_decided(), "seed {seed}");
            let v = report.unanimous().expect("agreement");
            assert!((100..105).contains(&v), "validity: {v}");
        }
    }

    #[test]
    fn crashed_coordinator_is_bypassed() {
        let report = run(4, 2, &[(0, 0)]);
        assert!(report.all_decided());
        let v = report.unanimous().expect("agreement among survivors");
        assert_ne!(v, 100);
    }

    #[test]
    fn tolerates_bound_crashes() {
        let report = run(7, 3, &[(0, 0), (1, 30), (2, 60)]);
        assert!(report.all_decided());
        assert!(report.unanimous().is_some());
    }

    #[test]
    fn late_crash_of_a_decider_is_harmless() {
        let report = run(4, 4, &[(0, 80)]);
        // p0 decides (round-1 coordinator) then crashes; the reliable
        // broadcast echo must still spread the decision.
        assert!(report.all_decided());
    }

    #[test]
    fn message_pattern_is_leaner_than_hr() {
        // CT phase 1/3 are point-to-point (to the coordinator) while HR
        // broadcasts everything: CT should use fewer messages at equal n.
        // Any single schedule can tie, so compare totals across seeds.
        let mut ct_total = 0;
        let mut hr_total = 0;
        for seed in 0..5 {
            let ct = run(5, seed, &[]);
            let hr = {
                let res = Resilience::new(5, 2);
                Simulation::build(SimConfig::new(5).seed(seed), |id| {
                    crate::crash::CrashConsensus::new(
                        res,
                        id,
                        100 + id.0 as u64,
                        TimeoutDetector::new(5, Duration::of(150)),
                        Duration::of(25),
                        Some(Duration::of(40)),
                    )
                })
                .run()
            };
            assert!(ct.all_decided() && hr.all_decided(), "seed {seed}");
            ct_total += ct.metrics.messages_sent;
            hr_total += hr.metrics.messages_sent;
        }
        assert!(
            ct_total < hr_total,
            "CT {ct_total} vs HR {hr_total} across seeds"
        );
    }
}
