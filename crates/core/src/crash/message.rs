//! Wire messages of the crash-model protocol.

use ftm_certify::{Round, Value};
use ftm_sim::Payload;

/// Messages of the Hurfin–Raynal protocol, plus heartbeats for the ◇S
/// implementation.
///
/// In the crash model no signatures or certificates are needed: processes
/// fail only by stopping, so every received message is trusted — exactly
/// the assumption the transformation removes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashMsg {
    /// `CURRENT(r, est)` — vote to decide `est` in round `r`.
    Current {
        /// Round of the vote.
        round: Round,
        /// The coordinator's estimate being endorsed.
        est: Value,
    },
    /// `NEXT(r)` — vote to move past round `r`.
    Next {
        /// Round being abandoned.
        round: Round,
    },
    /// `DECIDE(est)` — decision announcement (relayed on receipt).
    Decide {
        /// The decided value.
        est: Value,
    },
    /// Failure-detector heartbeat (not part of Fig. 2; the standard ◇S
    /// implementation under partial synchrony).
    Heartbeat,
}

impl Payload for CrashMsg {
    fn size_bytes(&self) -> usize {
        // Tag byte plus 8-byte fields.
        match self {
            CrashMsg::Current { .. } => 1 + 8 + 8,
            CrashMsg::Next { .. } => 1 + 8,
            CrashMsg::Decide { .. } => 1 + 8,
            CrashMsg::Heartbeat => 1,
        }
    }

    fn label(&self) -> String {
        match self {
            CrashMsg::Current { round, est } => format!("CURRENT(r={round},est={est})"),
            CrashMsg::Next { round } => format!("NEXT(r={round})"),
            CrashMsg::Decide { est } => format!("DECIDE(est={est})"),
            CrashMsg::Heartbeat => "HB".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_reflect_fields() {
        assert_eq!(CrashMsg::Current { round: 1, est: 2 }.size_bytes(), 17);
        assert_eq!(CrashMsg::Next { round: 1 }.size_bytes(), 9);
        assert_eq!(CrashMsg::Decide { est: 2 }.size_bytes(), 9);
        assert_eq!(CrashMsg::Heartbeat.size_bytes(), 1);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(
            CrashMsg::Current { round: 3, est: 7 }.label(),
            "CURRENT(r=3,est=7)"
        );
        assert_eq!(CrashMsg::Heartbeat.label(), "HB");
    }
}
