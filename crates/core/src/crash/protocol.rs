//! Event-driven rendering of Hurfin–Raynal's ◇S consensus (paper Fig. 2).
//!
//! The paper's two concurrent tasks and `upon` guards map onto the
//! simulator's actor callbacks:
//!
//! * the vote-handling `upon receipt` clauses become `on_message` arms;
//! * `upon (p_c ∈ suspected_i)` becomes a periodic poll timer querying the
//!   embedded failure detector (line 13);
//! * footnote 5 (votes from past rounds are discarded, votes from future
//!   rounds are buffered until `r_i` catches up) becomes an explicit
//!   buffer.
//!
//! Line-number comments reference Fig. 2.

use std::collections::HashSet;

use ftm_certify::{Round, Value};
use ftm_fd::FailureDetector;
use ftm_sim::{Actor, Context, ProcessId, TimerTag};

use crate::crash::message::CrashMsg;
use crate::spec::Resilience;

const POLL_TIMER: TimerTag = 1;
const HEARTBEAT_TIMER: TimerTag = 2;

/// The three automaton states of a round (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Has not voted in this round.
    Q0,
    /// Voted CURRENT and has not changed its mind.
    Q1,
    /// Voted NEXT.
    Q2,
}

/// One process of the crash-model protocol.
///
/// Generic over the failure detector so experiments can swap the
/// heartbeat-driven [`ftm_fd::TimeoutDetector`] for an
/// [`ftm_fd::OracleDetector`] with scripted accuracy.
///
/// # Example
///
/// ```
/// use ftm_core::crash::CrashConsensus;
/// use ftm_core::spec::Resilience;
/// use ftm_fd::TimeoutDetector;
/// use ftm_sim::{Duration, SimConfig, Simulation};
///
/// let n = 5;
/// let report = Simulation::build(SimConfig::new(n).seed(11), |id| {
///     CrashConsensus::new(
///         Resilience::new(n, 2),
///         id,
///         10 + id.0 as u64,
///         TimeoutDetector::new(n, Duration::of(150)),
///         Duration::of(25),
///         Some(Duration::of(40)),
///     )
/// })
/// .run();
/// assert!(report.all_decided());
/// assert!(report.unanimous().is_some());
/// ```
#[derive(Debug)]
pub struct CrashConsensus<FD> {
    res: Resilience,
    me: ProcessId,
    // Protocol variables of Fig. 2.
    r: Round,
    est: Value,
    state: State,
    nb_current: usize,
    nb_next: usize,
    rec_from: HashSet<ProcessId>,
    // Module plumbing.
    fd: FD,
    poll_interval: ftm_sim::Duration,
    heartbeat_interval: Option<ftm_sim::Duration>,
    buffered: Vec<(ProcessId, CrashMsg)>,
    decided: bool,
}

impl<FD: FailureDetector> CrashConsensus<FD> {
    /// Creates a process proposing `value`.
    pub fn new(
        res: Resilience,
        me: ProcessId,
        value: Value,
        fd: FD,
        poll_interval: ftm_sim::Duration,
        heartbeat_interval: Option<ftm_sim::Duration>,
    ) -> Self {
        CrashConsensus {
            res,
            me,
            r: 0,
            est: value, // line 1: est_i ← v_i
            state: State::Q0,
            nb_current: 0,
            nb_next: 0,
            rec_from: HashSet::new(),
            fd,
            poll_interval,
            heartbeat_interval,
            buffered: Vec::new(),
            decided: false,
        }
    }

    /// The failure detector (for post-run inspection in tests).
    pub fn detector(&self) -> &FD {
        &self.fd
    }

    fn coordinator(&self) -> ProcessId {
        ProcessId(self.res.coordinator(self.r) as u32)
    }

    /// Lines 4–5: open round `r + 1`.
    fn begin_round(&mut self, ctx: &mut Context<'_, CrashMsg, Value>) {
        self.r += 1;
        self.state = State::Q0;
        self.rec_from.clear();
        self.nb_current = 0;
        self.nb_next = 0;
        ctx.note(format!("round={}", self.r));
        if self.me == self.coordinator() {
            // Line 5: the coordinator proposes its estimate.
            ctx.broadcast(CrashMsg::Current {
                round: self.r,
                est: self.est,
            });
        }
        self.drain_buffer(ctx);
    }

    /// Re-delivers buffered future-round votes that became current.
    fn drain_buffer(&mut self, ctx: &mut Context<'_, CrashMsg, Value>) {
        loop {
            let round = self.r;
            let Some(pos) = self.buffered.iter().position(|(_, m)| match m {
                CrashMsg::Current { round: rk, .. } | CrashMsg::Next { round: rk } => *rk == round,
                _ => false,
            }) else {
                return;
            };
            let (from, msg) = self.buffered.remove(pos);
            self.handle_vote(from, msg, ctx);
            if self.decided {
                return;
            }
        }
    }

    /// Decide and shut down (lines 2 and 12).
    fn decide(&mut self, value: Value, ctx: &mut Context<'_, CrashMsg, Value>) {
        self.decided = true;
        ctx.broadcast(CrashMsg::Decide { est: value });
        ctx.decide(value);
        ctx.halt();
    }

    /// Lines 15 and 17 share this: vote NEXT once.
    fn vote_next(&mut self, ctx: &mut Context<'_, CrashMsg, Value>) {
        self.state = State::Q2;
        ctx.broadcast(CrashMsg::Next { round: self.r });
    }

    /// The `change_mind` predicate (paper §4): in `q1` with a majority of
    /// votes received but neither a CURRENT majority (line 12 would have
    /// decided) nor a NEXT majority (line 6 would advance).
    fn change_mind(&self) -> bool {
        self.state == State::Q1
            && self.rec_from.len() > self.res.n() / 2
            && self.nb_current <= self.res.n() / 2
            && self.nb_next <= self.res.n() / 2
    }

    fn handle_vote(
        &mut self,
        from: ProcessId,
        msg: CrashMsg,
        ctx: &mut Context<'_, CrashMsg, Value>,
    ) {
        match msg {
            CrashMsg::Current { round, est } => {
                debug_assert_eq!(round, self.r);
                // Lines 7–12.
                self.nb_current += 1;
                self.rec_from.insert(from);
                if self.nb_current == 1 {
                    self.est = est; // line 9: adopt the first CURRENT
                }
                if self.state == State::Q0 {
                    // Line 10: q0 → q1, relaying unless we are coordinator.
                    self.state = State::Q1;
                    if self.me != self.coordinator() {
                        ctx.broadcast(CrashMsg::Current {
                            round: self.r,
                            est: self.est,
                        });
                    }
                }
                if self.nb_current > self.res.n() / 2 {
                    // Line 12: CURRENT majority → decide.
                    self.decide(self.est, ctx);
                    return;
                }
            }
            CrashMsg::Next { round } => {
                debug_assert_eq!(round, self.r);
                // Line 14.
                self.nb_next += 1;
                self.rec_from.insert(from);
            }
            _ => unreachable!("handle_vote only takes votes"),
        }
        // Line 15: upon change_mind.
        if self.change_mind() {
            self.vote_next(ctx);
        }
        // Line 6/16–17: NEXT majority ends the round.
        if self.nb_next > self.res.n() / 2 {
            if self.state != State::Q2 {
                self.vote_next(ctx); // line 17
            }
            self.begin_round(ctx);
        }
    }
}

impl<FD: FailureDetector + 'static> Actor for CrashConsensus<FD> {
    type Msg = CrashMsg;
    type Decision = Value;

    fn on_start(&mut self, ctx: &mut Context<'_, CrashMsg, Value>) {
        self.begin_round(ctx); // opens round 1
        ctx.set_timer(self.poll_interval, POLL_TIMER);
        if let Some(hb) = self.heartbeat_interval {
            ctx.broadcast(CrashMsg::Heartbeat);
            ctx.set_timer(hb, HEARTBEAT_TIMER);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: &CrashMsg,
        ctx: &mut Context<'_, CrashMsg, Value>,
    ) {
        if self.decided {
            return;
        }
        // Every receipt feeds the detector (crash detection is
        // context-free: any sign of life counts).
        self.fd.observe_message(from, ctx.now());
        match msg {
            CrashMsg::Heartbeat => {}
            CrashMsg::Decide { est } => {
                // Line 2: relay and decide.
                self.decide(*est, ctx);
            }
            CrashMsg::Current { round, .. } | CrashMsg::Next { round } => {
                if *round < self.r {
                    // Footnote 5: stale votes are discarded.
                } else if *round > self.r {
                    self.buffered.push((from, msg.clone()));
                } else {
                    self.handle_vote(from, msg.clone(), ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, ctx: &mut Context<'_, CrashMsg, Value>) {
        if self.decided {
            return;
        }
        match tag {
            POLL_TIMER => {
                // Line 13: upon (p_c ∈ suspected_i) in state q0.
                let coord = self.coordinator();
                if self.state == State::Q0 && self.fd.suspects(coord, ctx.now()) {
                    ctx.note(format!("suspect={} r={}", coord, self.r));
                    self.vote_next(ctx);
                }
                ctx.set_timer(self.poll_interval, POLL_TIMER);
            }
            HEARTBEAT_TIMER => {
                ctx.broadcast(CrashMsg::Heartbeat);
                if let Some(hb) = self.heartbeat_interval {
                    ctx.set_timer(hb, HEARTBEAT_TIMER);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftm_fd::{OracleDetector, TimeoutDetector};
    use ftm_sim::{Duration, RunReport, SimConfig, Simulation, VirtualTime};

    fn run_timeout_fd(n: usize, seed: u64, crashes: &[(usize, u64)]) -> RunReport<Value> {
        let mut cfg = SimConfig::new(n).seed(seed);
        for &(p, t) in crashes {
            cfg = cfg.crash(p, VirtualTime::at(t));
        }
        let res = Resilience::new(n, crate::quorum::max_faults(n));
        Simulation::build(cfg, |id| {
            CrashConsensus::new(
                res,
                id,
                100 + id.0 as u64,
                TimeoutDetector::new(n, Duration::of(150)),
                Duration::of(25),
                Some(Duration::of(40)),
            )
        })
        .run()
    }

    #[test]
    fn all_correct_processes_decide_round_one() {
        let report = run_timeout_fd(5, 1, &[]);
        assert!(report.all_decided());
        // Validity: the round-1 coordinator is p0 → its estimate wins.
        assert_eq!(report.unanimous(), Some(100));
    }

    #[test]
    fn agreement_across_seeds() {
        for seed in 0..20 {
            let report = run_timeout_fd(4, seed, &[]);
            assert!(report.all_decided(), "seed {seed}");
            assert!(report.unanimous().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn crashed_coordinator_is_bypassed() {
        // p0 (round-1 coordinator) crashes immediately: the others must
        // suspect it, round past it, and decide on p1's estimate.
        let report = run_timeout_fd(5, 3, &[(0, 0)]);
        assert!(report.all_decided());
        let v = report.unanimous().expect("agreement among survivors");
        assert_ne!(v, 100); // the crashed coordinator's value cannot win
    }

    #[test]
    fn tolerates_floor_half_minus_crashes() {
        // n = 5 tolerates 2 crashes.
        let report = run_timeout_fd(5, 4, &[(0, 0), (1, 50)]);
        assert!(report.all_decided());
        assert!(report.unanimous().is_some());
    }

    #[test]
    fn late_crash_after_decide_is_harmless() {
        let report = run_timeout_fd(4, 5, &[(3, 5_000)]);
        assert!(report.all_decided());
    }

    #[test]
    fn oracle_detector_with_lies_still_terminates() {
        // The detector wrongly suspects the round-1 coordinator for a long
        // while: rounds churn, but eventual accuracy restores progress.
        let n = 4;
        let res = Resilience::new(n, 1);
        let report = Simulation::build(SimConfig::new(n).seed(9), |id| {
            CrashConsensus::new(
                res,
                id,
                10 + id.0 as u64,
                OracleDetector::new(n).wrongly_suspect_until(ProcessId(0), VirtualTime::at(400)),
                Duration::of(25),
                None,
            )
        })
        .run();
        assert!(report.all_decided());
        assert!(report.unanimous().is_some());
    }

    #[test]
    fn votes_for_future_rounds_are_buffered_not_lost() {
        // Indirect check: runs with heavy delay jitter still decide.
        for seed in 0..10 {
            let n = 4;
            let res = Resilience::new(n, 1);
            let cfg = SimConfig::new(n)
                .seed(seed)
                .delay_range(Duration::of(1), Duration::of(80))
                .gst(VirtualTime::at(3_000), Duration::of(10));
            let report = Simulation::build(cfg, |id| {
                CrashConsensus::new(
                    res,
                    id,
                    10 + id.0 as u64,
                    TimeoutDetector::new(n, Duration::of(60)),
                    Duration::of(25),
                    Some(Duration::of(30)),
                )
            })
            .run();
            assert!(report.all_decided(), "seed {seed}");
            assert!(report.unanimous().is_some(), "seed {seed}");
        }
    }

    #[test]
    fn decision_latency_reported_in_rounds() {
        let report = run_timeout_fd(4, 2, &[]);
        // With a correct coordinator, no process should pass round 1.
        let max_round = (0..4u32)
            .map(|p| {
                report
                    .trace
                    .notes_of(ProcessId(p))
                    .iter()
                    .filter(|s| s.starts_with("round="))
                    .count()
            })
            .max()
            .unwrap();
        assert_eq!(max_round, 1);
    }
}
