//! The crash-model Hurfin–Raynal consensus protocol (paper Fig. 2).
//!
//! This is the *input* of the paper's transformation: a ◇S-based,
//! rotating-coordinator, asynchronous-round consensus protocol assuming a
//! majority of correct processes and reliable FIFO channels. Each round, a
//! predetermined coordinator tries to impose its estimate; every process
//! votes `CURRENT` (adopt and conclude) or `NEXT` (move on), with a
//! `change_mind` escape hatch preventing deadlock when votes split.

pub mod chandra_toueg;
pub mod message;
pub mod protocol;

pub use chandra_toueg::{ChandraToueg, CtMsg};
pub use message::CrashMsg;
pub use protocol::CrashConsensus;
