//! Property tests for the simulator's core invariants: event ordering,
//! FIFO channels, and whole-run determinism.

use ftm_sim::event::{EventKind, EventQueue};
use ftm_sim::network::Network;
use ftm_sim::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    /// The event queue pops in nondecreasing time order, with ties broken
    /// by insertion order (determinism).
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..100, 1..60)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VirtualTime::at(t), ProcessId(i as u32), EventKind::Start);
        }
        let mut last_time = 0u64;
        let mut last_idx_at_time: Option<u32> = None;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at.ticks() >= last_time);
            if ev.at.ticks() == last_time {
                if let Some(prev) = last_idx_at_time {
                    prop_assert!(ev.target.0 > prev, "tie not broken by insertion order");
                }
            }
            last_time = ev.at.ticks();
            last_idx_at_time = Some(ev.target.0);
        }
    }

    /// FIFO holds per ordered pair for arbitrary (even decreasing-delay)
    /// traffic patterns and delay ranges.
    #[test]
    fn network_is_fifo_per_channel(
        seed in any::<u64>(),
        max_delay in 1u64..200,
        send_times in proptest::collection::vec(0u64..500, 2..80),
    ) {
        let cfg = SimConfig::new(2).delay_range(Duration::of(1), Duration::of(max_delay));
        let mut net = Network::new(&cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sorted = send_times.clone();
        sorted.sort_unstable();
        let mut last = VirtualTime::ZERO;
        for &t in &sorted {
            let at = net.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::at(t));
            prop_assert!(at > VirtualTime::at(t), "delivery not strictly after send");
            prop_assert!(at > last, "FIFO violated");
            last = at;
        }
    }

    /// A full run is a pure function of its configuration: same seed, same
    /// everything — different seed, (almost surely) different trace.
    #[test]
    fn runs_are_pure_functions_of_config(seed in any::<u64>(), n in 2usize..6) {
        struct Gossip { hops: u64 }
        impl Actor for Gossip {
            type Msg = u64;
            type Decision = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
                ctx.send(ProcessId((ctx.me().0 + 1) % ctx.process_count() as u32), 0);
            }
            fn on_message(&mut self, _: ProcessId, hop: u64, ctx: &mut Context<'_, u64, u64>) {
                self.hops = hop;
                if hop >= 8 {
                    ctx.decide(hop);
                    ctx.halt();
                } else {
                    ctx.send(ProcessId((ctx.me().0 + 1) % ctx.process_count() as u32), hop + 1);
                }
            }
        }
        let mk = |s: u64| {
            Simulation::build(SimConfig::new(n).seed(s), |_| Gossip { hops: 0 }).run()
        };
        let (a, b) = (mk(seed), mk(seed));
        prop_assert_eq!(a.trace.entries(), b.trace.entries());
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(&a.metrics, &b.metrics);
        let c = mk(seed.wrapping_add(1));
        // End times may coincide; full traces essentially never do for
        // nontrivial runs. Only assert when the runs did real work.
        if a.metrics.messages_sent > 4 {
            prop_assert!(
                a.trace.entries() != c.trace.entries() || a.end_time == c.end_time,
                "different seeds produced identical traces with different end times"
            );
        }
    }
}
