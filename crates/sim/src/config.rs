//! Run configuration: everything a simulation's outcome depends on.

use std::fmt;
use std::sync::Arc;

use crate::process::ProcessId;
use crate::time::{Duration, VirtualTime};

/// A scripted delay policy: given `(src, dst, send time)`, return the
/// message delay in ticks (clamped to ≥ 1; the FIFO floor still applies).
///
/// Scripts replace the random delay draw entirely, letting tests construct
/// *specific* adversarial schedules — e.g. the attempted agreement-violation
/// schedule analyzed in DESIGN.md §6.
pub type DelayScript = dyn Fn(ProcessId, ProcessId, VirtualTime) -> u64 + Send + Sync;

/// Complete configuration of a simulation run.
///
/// A run is a pure function of this value plus the actor factory, so tests
/// and experiments record the config (notably [`SimConfig::seed`]) to make
/// every result replayable.
///
/// # Example
///
/// ```
/// use ftm_sim::{Duration, SimConfig, VirtualTime};
/// let cfg = SimConfig::new(7)
///     .seed(42)
///     .delay_range(Duration::of(1), Duration::of(20))
///     .gst(VirtualTime::at(500), Duration::of(10));
/// assert_eq!(cfg.n, 7);
/// ```
#[derive(Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub n: usize,
    /// RNG seed governing message delays (and any actor-requested draws).
    pub rng_seed: u64,
    /// Minimum message delay.
    pub min_delay: Duration,
    /// Maximum message delay before GST (the "arbitrary but finite" phase).
    pub max_delay: Duration,
    /// Global Stabilization Time: after this instant delays are capped by
    /// `post_gst_max_delay`. `None` means the network never stabilizes
    /// (pure asynchrony) — timeout-based detectors may then never become
    /// accurate, exactly as FLP warns.
    pub gst: Option<VirtualTime>,
    /// Delay cap after GST (ignored when `gst` is `None`).
    pub post_gst_max_delay: Duration,
    /// Hard stop: the run aborts (marked non-quiescent) past this time.
    pub max_time: VirtualTime,
    /// Hard stop on the number of processed events (runaway-protocol guard).
    pub max_events: u64,
    /// Scheduled crash times: `(process index, crash instant)` pairs.
    /// Crashed processes stop receiving, sending and firing timers.
    pub crashes: Vec<(usize, VirtualTime)>,
    /// Optional scripted delays (replaces random draws when set).
    pub delay_script: Option<Arc<DelayScript>>,
}

impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimConfig")
            .field("n", &self.n)
            .field("rng_seed", &self.rng_seed)
            .field("min_delay", &self.min_delay)
            .field("max_delay", &self.max_delay)
            .field("gst", &self.gst)
            .field("post_gst_max_delay", &self.post_gst_max_delay)
            .field("max_time", &self.max_time)
            .field("max_events", &self.max_events)
            .field("crashes", &self.crashes)
            .field(
                "delay_script",
                &self.delay_script.as_ref().map(|_| "<script>"),
            )
            .finish()
    }
}

impl SimConfig {
    /// Creates a configuration for `n` processes with conservative defaults:
    /// seed 0, delays in `[1, 10]`, GST at 2 000 with post-GST cap 10,
    /// `max_time` 2 000 000, `max_events` 5 000 000, no crashes.
    pub fn new(n: usize) -> Self {
        SimConfig {
            n,
            rng_seed: 0,
            min_delay: Duration::of(1),
            max_delay: Duration::of(10),
            gst: Some(VirtualTime::at(2_000)),
            post_gst_max_delay: Duration::of(10),
            max_time: VirtualTime::at(2_000_000),
            max_events: 5_000_000,
            crashes: Vec::new(),
            delay_script: None,
        }
    }

    /// Installs a scripted delay policy (see [`DelayScript`]).
    pub fn delay_script<F>(mut self, script: F) -> Self
    where
        F: Fn(ProcessId, ProcessId, VirtualTime) -> u64 + Send + Sync + 'static,
    {
        self.delay_script = Some(Arc::new(script));
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the pre-GST message delay range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn delay_range(mut self, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "min delay exceeds max delay");
        self.min_delay = min;
        self.max_delay = max;
        self
    }

    /// Sets the Global Stabilization Time and the post-GST delay cap.
    pub fn gst(mut self, at: VirtualTime, post_max: Duration) -> Self {
        self.gst = Some(at);
        self.post_gst_max_delay = post_max;
        self
    }

    /// Removes the GST: the network stays arbitrarily slow forever.
    pub fn no_gst(mut self) -> Self {
        self.gst = None;
        self
    }

    /// Schedules process `index` to crash at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn crash(mut self, index: usize, at: VirtualTime) -> Self {
        assert!(index < self.n, "crash index out of range");
        self.crashes.push((index, at));
        self
    }

    /// Sets the hard stop time.
    pub fn max_time(mut self, t: VirtualTime) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the processed-event budget.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = SimConfig::new(5)
            .seed(9)
            .delay_range(Duration::of(2), Duration::of(4))
            .no_gst()
            .crash(1, VirtualTime::at(100))
            .max_time(VirtualTime::at(10))
            .max_events(99);
        assert_eq!(cfg.rng_seed, 9);
        assert_eq!(cfg.min_delay, Duration::of(2));
        assert!(cfg.gst.is_none());
        assert_eq!(cfg.crashes, vec![(1, VirtualTime::at(100))]);
        assert_eq!(cfg.max_events, 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crash_index_validated() {
        let _ = SimConfig::new(3).crash(3, VirtualTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "min delay exceeds")]
    fn delay_range_validated() {
        let _ = SimConfig::new(3).delay_range(Duration::of(5), Duration::of(1));
    }
}
