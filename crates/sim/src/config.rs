//! Run configuration: everything a simulation's outcome depends on.

use std::fmt;
use std::sync::Arc;

use crate::process::ProcessId;
use crate::time::{Duration, VirtualTime};

/// A scripted delay policy: given `(src, dst, send time)`, return the
/// message delay in ticks (clamped to ≥ 1; the FIFO floor still applies).
///
/// Scripts replace the random delay draw entirely, letting tests construct
/// *specific* adversarial schedules — e.g. the attempted agreement-violation
/// schedule analyzed in DESIGN.md §6.
pub type DelayScript = dyn Fn(ProcessId, ProcessId, VirtualTime) -> u64 + Send + Sync;

/// Complete configuration of a simulation run.
///
/// A run is a pure function of this value plus the actor factory, so tests
/// and experiments record the config (notably [`SimConfig::seed`]) to make
/// every result replayable.
///
/// # Example
///
/// ```
/// use ftm_sim::{Duration, SimConfig, VirtualTime};
/// let cfg = SimConfig::new(7)
///     .seed(42)
///     .delay_range(Duration::of(1), Duration::of(20))
///     .gst(VirtualTime::at(500), Duration::of(10));
/// assert_eq!(cfg.n, 7);
/// ```
#[derive(Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub n: usize,
    /// RNG seed governing message delays (and any actor-requested draws).
    pub rng_seed: u64,
    /// Minimum message delay.
    pub min_delay: Duration,
    /// Maximum message delay before GST (the "arbitrary but finite" phase).
    pub max_delay: Duration,
    /// Global Stabilization Time: after this instant delays are capped by
    /// `post_gst_max_delay`. `None` means the network never stabilizes
    /// (pure asynchrony) — timeout-based detectors may then never become
    /// accurate, exactly as FLP warns.
    pub gst: Option<VirtualTime>,
    /// Delay cap after GST (ignored when `gst` is `None`).
    pub post_gst_max_delay: Duration,
    /// Hard stop: the run aborts (marked non-quiescent) past this time.
    pub max_time: VirtualTime,
    /// Hard stop on the number of processed events (runaway-protocol guard).
    pub max_events: u64,
    /// Scheduled crash times: `(process index, crash instant)` pairs.
    /// Crashed processes stop receiving, sending and firing timers.
    pub crashes: Vec<(usize, VirtualTime)>,
    /// Optional scripted delays (replaces random draws when set).
    pub delay_script: Option<Arc<DelayScript>>,
    /// Hard stop on protocol rounds: the run ends once any process notes
    /// entry into a round beyond this cap (`round=N` with `N > max_rounds`).
    /// `None` (the default) leaves rounds unbounded. This is the
    /// termination backstop for never-stabilizing networks (`gst: None`),
    /// where round churn may otherwise continue until `max_time`.
    pub max_rounds: Option<u64>,
}

impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimConfig")
            .field("n", &self.n)
            .field("rng_seed", &self.rng_seed)
            .field("min_delay", &self.min_delay)
            .field("max_delay", &self.max_delay)
            .field("gst", &self.gst)
            .field("post_gst_max_delay", &self.post_gst_max_delay)
            .field("max_time", &self.max_time)
            .field("max_events", &self.max_events)
            .field("crashes", &self.crashes)
            .field(
                "delay_script",
                &self.delay_script.as_ref().map(|_| "<script>"),
            )
            .finish()
    }
}

impl SimConfig {
    /// Creates a configuration for `n` processes with conservative defaults:
    /// seed 0, delays in `[1, 10]`, GST at 2 000 with post-GST cap 10,
    /// `max_time` 2 000 000, `max_events` 5 000 000, no crashes.
    pub fn new(n: usize) -> Self {
        SimConfig {
            n,
            rng_seed: 0,
            min_delay: Duration::of(1),
            max_delay: Duration::of(10),
            gst: Some(VirtualTime::at(2_000)),
            post_gst_max_delay: Duration::of(10),
            max_time: VirtualTime::at(2_000_000),
            max_events: 5_000_000,
            crashes: Vec::new(),
            delay_script: None,
            max_rounds: None,
        }
    }

    /// Installs a scripted delay policy (see [`DelayScript`]).
    pub fn delay_script<F>(mut self, script: F) -> Self
    where
        F: Fn(ProcessId, ProcessId, VirtualTime) -> u64 + Send + Sync + 'static,
    {
        self.delay_script = Some(Arc::new(script));
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the pre-GST message delay range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn delay_range(mut self, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "min delay exceeds max delay");
        self.min_delay = min;
        self.max_delay = max;
        self
    }

    /// Sets the Global Stabilization Time and the post-GST delay cap.
    pub fn gst(mut self, at: VirtualTime, post_max: Duration) -> Self {
        self.gst = Some(at);
        self.post_gst_max_delay = post_max;
        self
    }

    /// Removes the GST: the network stays arbitrarily slow forever.
    pub fn no_gst(mut self) -> Self {
        self.gst = None;
        self
    }

    /// Schedules process `index` to crash at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn crash(mut self, index: usize, at: VirtualTime) -> Self {
        assert!(index < self.n, "crash index out of range");
        self.crashes.push((index, at));
        self
    }

    /// Sets the hard stop time.
    pub fn max_time(mut self, t: VirtualTime) -> Self {
        self.max_time = t;
        self
    }

    /// Sets the processed-event budget.
    pub fn max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Caps protocol rounds: the run stops once any process notes entry
    /// into round `cap + 1` (see [`SimConfig::max_rounds`]).
    pub fn max_rounds(mut self, cap: u64) -> Self {
        self.max_rounds = Some(cap);
        self
    }
}

/// A named network-adversity level: one point on the delay/GST axis the
/// sweep harness crosses scenarios with.
///
/// A profile bundles the simulator's partial-synchrony knobs — the pre-GST
/// delay range, the Global Stabilization Time (or its absence), the
/// post-GST delay cap — plus the round-cap backstop that keeps
/// never-stabilizing runs finite. [`NetworkProfile::apply`] maps a profile
/// onto a [`SimConfig`]; [`NetworkProfile::calm`] reproduces the
/// `SimConfig::new` defaults exactly, so sweeps that only use the calm
/// profile are byte-identical to sweeps that predate the axis.
///
/// # Example
///
/// ```
/// use ftm_sim::{NetworkProfile, SimConfig};
/// let cfg = NetworkProfile::adverse().apply(SimConfig::new(4).seed(7));
/// assert!(cfg.max_delay > SimConfig::new(4).max_delay);
/// let cfg = NetworkProfile::no_gst().apply(SimConfig::new(4));
/// assert!(cfg.gst.is_none() && cfg.max_rounds.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkProfile {
    /// Stable kebab-case name used in sweep cell keys.
    pub label: &'static str,
    /// Minimum message delay.
    pub min_delay: Duration,
    /// Maximum message delay before GST.
    pub max_delay: Duration,
    /// Global Stabilization Time; `None` = the network never stabilizes.
    pub gst: Option<VirtualTime>,
    /// Delay cap after GST (ignored when `gst` is `None`).
    pub post_gst_max_delay: Duration,
    /// Round cap (termination backstop for `gst: None` profiles).
    pub max_rounds: Option<u64>,
}

impl NetworkProfile {
    /// The default network: delays in `[1, 10]`, GST at 2 000 with
    /// post-GST cap 10 — exactly the [`SimConfig::new`] defaults, so calm
    /// cells keep their historical keys and traces.
    pub fn calm() -> Self {
        NetworkProfile {
            label: "calm",
            min_delay: Duration::of(1),
            max_delay: Duration::of(10),
            gst: Some(VirtualTime::at(2_000)),
            post_gst_max_delay: Duration::of(10),
            max_rounds: None,
        }
    }

    /// A jittery but benign network: delays in `[1, 60]`, same GST. Wide
    /// enough to reorder messages aggressively, still below the default
    /// muteness timeout, so detectors rarely err.
    pub fn jittery() -> Self {
        NetworkProfile {
            label: "jittery",
            min_delay: Duration::of(1),
            max_delay: Duration::of(60),
            gst: Some(VirtualTime::at(2_000)),
            post_gst_max_delay: Duration::of(10),
            max_rounds: None,
        }
    }

    /// An adverse network: pre-GST delays in `[1, 250]` — beyond the
    /// default muteness timeout, so ◇M detectors make real mistakes before
    /// stabilization — with GST at 2 500 and a post-GST cap of 20.
    /// Liveness is still guaranteed (GST exists); the mistake counters are
    /// what this profile is for.
    pub fn adverse() -> Self {
        NetworkProfile {
            label: "adverse",
            min_delay: Duration::of(1),
            max_delay: Duration::of(250),
            gst: Some(VirtualTime::at(2_500)),
            post_gst_max_delay: Duration::of(20),
            max_rounds: None,
        }
    }

    /// A never-stabilizing network (`gst: None`): delays stay in
    /// `[1, 250]` forever. Termination cannot be promised (FLP territory) —
    /// the round cap of 12 ends runs that churn without deciding, so a
    /// sweep cell under this profile always terminates, via decision or
    /// via [`crate::runner::StopReason::RoundLimit`].
    pub fn no_gst() -> Self {
        NetworkProfile {
            label: "no-gst",
            min_delay: Duration::of(1),
            max_delay: Duration::of(250),
            gst: None,
            post_gst_max_delay: Duration::of(10),
            max_rounds: Some(12),
        }
    }

    /// Every built-in profile, in the stable sweep-axis order.
    pub fn all() -> Vec<NetworkProfile> {
        vec![
            NetworkProfile::calm(),
            NetworkProfile::jittery(),
            NetworkProfile::adverse(),
            NetworkProfile::no_gst(),
        ]
    }

    /// Maps the profile onto `cfg`, overriding its delay range, GST and
    /// round cap.
    pub fn apply(&self, mut cfg: SimConfig) -> SimConfig {
        cfg = cfg.delay_range(self.min_delay, self.max_delay);
        cfg = match self.gst {
            Some(at) => cfg.gst(at, self.post_gst_max_delay),
            None => cfg.no_gst(),
        };
        if let Some(cap) = self.max_rounds {
            cfg = cfg.max_rounds(cap);
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = SimConfig::new(5)
            .seed(9)
            .delay_range(Duration::of(2), Duration::of(4))
            .no_gst()
            .crash(1, VirtualTime::at(100))
            .max_time(VirtualTime::at(10))
            .max_events(99);
        assert_eq!(cfg.rng_seed, 9);
        assert_eq!(cfg.min_delay, Duration::of(2));
        assert!(cfg.gst.is_none());
        assert_eq!(cfg.crashes, vec![(1, VirtualTime::at(100))]);
        assert_eq!(cfg.max_events, 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn crash_index_validated() {
        let _ = SimConfig::new(3).crash(3, VirtualTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "min delay exceeds")]
    fn delay_range_validated() {
        let _ = SimConfig::new(3).delay_range(Duration::of(5), Duration::of(1));
    }

    #[test]
    fn calm_profile_reproduces_the_defaults() {
        let plain = SimConfig::new(4).seed(9);
        let calm = NetworkProfile::calm().apply(SimConfig::new(4).seed(9));
        assert_eq!(calm.min_delay, plain.min_delay);
        assert_eq!(calm.max_delay, plain.max_delay);
        assert_eq!(calm.gst, plain.gst);
        assert_eq!(calm.post_gst_max_delay, plain.post_gst_max_delay);
        assert_eq!(calm.max_rounds, plain.max_rounds);
    }

    #[test]
    fn profiles_have_distinct_labels_and_no_gst_is_round_capped() {
        let profiles = NetworkProfile::all();
        let labels: std::collections::BTreeSet<&str> = profiles.iter().map(|p| p.label).collect();
        assert_eq!(labels.len(), profiles.len(), "profile labels collide");
        for p in &profiles {
            assert!(
                p.gst.is_some() || p.max_rounds.is_some(),
                "{}: a never-stabilizing profile must carry a round cap",
                p.label
            );
        }
        let cfg = NetworkProfile::no_gst().apply(SimConfig::new(3));
        assert!(cfg.gst.is_none());
        assert_eq!(cfg.max_rounds, Some(12));
    }
}
