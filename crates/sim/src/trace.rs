//! Run traces: the evidence a simulation leaves behind.
//!
//! Property validators (Agreement, Termination, detector completeness, …)
//! are pure functions over a [`Trace`], so tests, examples and the
//! experiment harness all judge runs by the same record.

use std::fmt;

use crate::process::{ProcessId, TimerTag};
use crate::time::VirtualTime;

/// One observable step of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `src` handed a message of `bytes` bytes for `dst` to the network.
    Send {
        /// Sending process.
        src: ProcessId,
        /// Destination process.
        dst: ProcessId,
        /// Payload size in bytes.
        bytes: usize,
        /// Short payload description (message kind and round, typically).
        label: String,
    },
    /// The network delivered a message to `dst`.
    Deliver {
        /// Original sender.
        src: ProcessId,
        /// Receiving process.
        dst: ProcessId,
        /// Short payload description.
        label: String,
    },
    /// A timer fired at `at`.
    Timer {
        /// Process whose timer fired.
        at_process: ProcessId,
        /// The actor-chosen tag.
        tag: TimerTag,
    },
    /// `process` crashed (benign fault injected by the runner).
    Crash {
        /// The crashed process.
        process: ProcessId,
    },
    /// `process` decided.
    Decide {
        /// The deciding process.
        process: ProcessId,
        /// Debug rendering of the decision value.
        value: String,
    },
    /// `process` halted voluntarily.
    Halt {
        /// The halting process.
        process: ProcessId,
    },
    /// Free-form protocol annotation (round starts, suspicions, detections).
    Note {
        /// Annotating process.
        process: ProcessId,
        /// Annotation text, `key=value` style by convention.
        text: String,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event happened.
    pub at: VirtualTime,
    /// What happened.
    pub event: TraceEvent,
}

/// The full record of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event at `at`.
    pub fn record(&mut self, at: VirtualTime, event: TraceEvent) {
        self.entries.push(TraceEntry { at, event });
    }

    /// All entries in chronological order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Iterates over entries matching a predicate.
    pub fn filter<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a TraceEntry>
    where
        F: Fn(&TraceEvent) -> bool + 'a,
    {
        self.entries.iter().filter(move |e| pred(&e.event))
    }

    /// Time of the first entry satisfying `pred`, if any.
    pub fn first_time<F>(&self, pred: F) -> Option<VirtualTime>
    where
        F: Fn(&TraceEvent) -> bool,
    {
        self.entries.iter().find(|e| pred(&e.event)).map(|e| e.at)
    }

    /// All `Note` texts emitted by `process`, in order.
    pub fn notes_of(&self, process: ProcessId) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Note { process: p, text } if *p == process => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    /// A 64-bit FNV-1a digest of the full trace (timestamps and a canonical
    /// rendering of every event).
    ///
    /// Two traces are equal iff their entry sequences are equal, and the
    /// fingerprint is a cheap, order-sensitive proxy for that comparison —
    /// the sweep harness uses it to assert that distinct seeds produce
    /// distinct schedules without storing whole traces.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        };
        for entry in &self.entries {
            eat(&entry.at.ticks().to_le_bytes());
            eat(format!("{:?}", entry.event).as_bytes());
        }
        hash
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "[{:>8}] {:?}", e.at, e.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_filters() {
        let mut t = Trace::new();
        t.record(
            VirtualTime::at(1),
            TraceEvent::Crash {
                process: ProcessId(0),
            },
        );
        t.record(
            VirtualTime::at(2),
            TraceEvent::Decide {
                process: ProcessId(1),
                value: "7".into(),
            },
        );
        assert_eq!(t.len(), 2);
        let decides: Vec<_> = t
            .filter(|e| matches!(e, TraceEvent::Decide { .. }))
            .collect();
        assert_eq!(decides.len(), 1);
        assert_eq!(
            t.first_time(|e| matches!(e, TraceEvent::Decide { .. })),
            Some(VirtualTime::at(2))
        );
    }

    #[test]
    fn notes_of_selects_by_process() {
        let mut t = Trace::new();
        t.record(
            VirtualTime::at(1),
            TraceEvent::Note {
                process: ProcessId(0),
                text: "round=1".into(),
            },
        );
        t.record(
            VirtualTime::at(2),
            TraceEvent::Note {
                process: ProcessId(1),
                text: "round=2".into(),
            },
        );
        assert_eq!(t.notes_of(ProcessId(0)), vec!["round=1"]);
    }

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        let mk = |first: u32, second: u32| {
            let mut t = Trace::new();
            t.record(
                VirtualTime::at(1),
                TraceEvent::Crash {
                    process: ProcessId(first),
                },
            );
            t.record(
                VirtualTime::at(2),
                TraceEvent::Halt {
                    process: ProcessId(second),
                },
            );
            t
        };
        assert_eq!(mk(0, 1).fingerprint(), mk(0, 1).fingerprint());
        assert_ne!(mk(0, 1).fingerprint(), mk(1, 0).fingerprint());
        assert_ne!(Trace::new().fingerprint(), mk(0, 1).fingerprint());
    }

    #[test]
    fn display_renders_every_entry() {
        let mut t = Trace::new();
        t.record(
            VirtualTime::at(3),
            TraceEvent::Halt {
                process: ProcessId(2),
            },
        );
        let s = t.to_string();
        assert!(s.contains("Halt"));
        assert!(!t.is_empty());
    }
}
