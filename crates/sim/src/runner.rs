//! The simulation runner: event loop, effect application, run reports.
//!
//! The runner is the simulator's implementation of the runtime-agnostic
//! [`ftm_runtime::Runtime`] seam: a private `SimDriver` maps the trait's
//! capabilities onto the seeded delay model (`dispatch` → delivery events,
//! `schedule` → timer events, `now` → virtual time, `rng_draw` → the run's
//! one PRNG stream), and every callback goes through [`ftm_runtime::step`]
//! — the same choke point the real transport uses.
//!
//! Payloads travel the event queue behind [`Arc`]: a broadcast allocates
//! its message once and every pending delivery shares it, so large
//! envelopes (signature + certificate) are not cloned per receiver.

use std::fmt;
use std::sync::Arc;

use ftm_runtime::{step, Runtime};

use crate::config::SimConfig;
use crate::event::{EventKind, EventQueue};
use crate::metrics::Metrics;
use crate::network::Network;
use crate::prng::{Rng64, Xoshiro256PlusPlus};
use crate::process::{Actor, Payload, ProcessId, StagedSend, TimerTag};
use crate::time::{Duration, VirtualTime};
use crate::trace::{Trace, TraceEvent};

/// A boxed, type-erased actor (lets one run mix honest and faulty actors).
pub type BoxedActor<M, D> = Box<dyn Actor<Msg = M, Decision = D>>;

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every process halted or crashed — the protocol ran to completion.
    AllStopped,
    /// The event queue drained (no process had anything left to do).
    Quiescent,
    /// The configured `max_time` was exceeded.
    TimeLimit,
    /// The configured `max_events` budget was exhausted.
    EventLimit,
    /// A process entered a round beyond the configured `max_rounds` cap —
    /// the termination backstop for never-stabilizing networks.
    RoundLimit,
}

/// Parses the round number from a `round=N` trace note, tolerating the
/// replicated-log workload's `s<slot>:` prefix.
fn note_round(text: &str) -> Option<u64> {
    let body = match text.strip_prefix('s').and_then(|rest| rest.split_once(':')) {
        Some((digits, tail))
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) =>
        {
            tail
        }
        _ => text,
    };
    body.strip_prefix("round=")?.parse().ok()
}

/// Outcome of one simulation run.
#[derive(Debug)]
pub struct RunReport<D> {
    /// Decision per process (`None` = never decided).
    pub decisions: Vec<Option<D>>,
    /// Which processes were crashed by the schedule.
    pub crashed: Vec<bool>,
    /// Which processes halted voluntarily.
    pub halted: Vec<bool>,
    /// Processes that decided twice with *different* values (a local
    /// contradiction — only a faulty actor can produce this).
    pub contradictions: Vec<ProcessId>,
    /// Virtual time when the run stopped.
    pub end_time: VirtualTime,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Full event record.
    pub trace: Trace,
    /// Cost counters.
    pub metrics: Metrics,
}

impl<D: Clone + PartialEq + fmt::Debug> RunReport<D> {
    /// `true` when every non-crashed process decided.
    pub fn all_decided(&self) -> bool {
        self.decisions
            .iter()
            .zip(&self.crashed)
            .all(|(d, crashed)| *crashed || d.is_some())
    }

    /// The common decision of all non-crashed deciders, if they agree and at
    /// least one decided; `None` on disagreement or no decision.
    pub fn unanimous(&self) -> Option<D> {
        let mut it = self
            .decisions
            .iter()
            .zip(&self.crashed)
            .filter(|(_, c)| !**c)
            .filter_map(|(d, _)| d.as_ref());
        let first = it.next()?;
        if it.all(|d| d == first) {
            Some(first.clone())
        } else {
            None
        }
    }

    /// Decisions of the given processes (crashed or not), in order.
    pub fn decisions_of(&self, processes: &[usize]) -> Vec<Option<D>> {
        processes
            .iter()
            .map(|&i| self.decisions.get(i).cloned().flatten())
            .collect()
    }
}

/// A configured simulation ready to [`run`](Simulation::run).
pub struct Simulation<M: Payload, D> {
    cfg: SimConfig,
    actors: Vec<BoxedActor<M, D>>,
}

impl<M: Payload, D> fmt::Debug for Simulation<M, D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("cfg", &self.cfg)
            .field("actors", &self.actors.len())
            .finish()
    }
}

impl<M, D> Simulation<M, D>
where
    M: Payload + 'static,
    D: Clone + PartialEq + fmt::Debug + 'static,
{
    /// Builds a simulation where every process runs `factory(id)`.
    pub fn build<A, F>(cfg: SimConfig, mut factory: F) -> Self
    where
        A: Actor<Msg = M, Decision = D> + 'static,
        F: FnMut(ProcessId) -> A,
    {
        Self::build_boxed(cfg, |id| Box::new(factory(id)))
    }

    /// Builds a simulation from a factory returning boxed actors — use this
    /// to mix honest processes with fault-injected ones.
    pub fn build_boxed<F>(cfg: SimConfig, mut factory: F) -> Self
    where
        F: FnMut(ProcessId) -> BoxedActor<M, D>,
    {
        let actors = (0..cfg.n as u32).map(|i| factory(ProcessId(i))).collect();
        Simulation { cfg, actors }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> RunReport<D> {
        let Simulation { cfg, mut actors } = self;
        let n = cfg.n;
        let mut d: SimDriver<M, D> = SimDriver {
            n,
            now: VirtualTime::ZERO,
            rng: Xoshiro256PlusPlus::from_seed(cfg.rng_seed),
            network: Network::new(&cfg),
            queue: EventQueue::new(),
            trace: Trace::new(),
            metrics: Metrics::new(n),
            decisions: vec![None; n],
            crashed: vec![false; n],
            halted: vec![false; n],
            contradictions: Vec::new(),
            max_rounds: cfg.max_rounds,
            round_cap_hit: false,
            all_stopped: false,
        };

        // Crashes are scheduled first so a crash at the same instant as a
        // delivery or start pre-empts it (the process dies before acting).
        for &(idx, at) in &cfg.crashes {
            d.queue.push(at, ProcessId(idx as u32), EventKind::Crash);
        }
        for i in 0..n as u32 {
            d.queue
                .push(VirtualTime::ZERO, ProcessId(i), EventKind::Start);
        }

        let stop = loop {
            let Some(ev) = d.queue.pop() else {
                break StopReason::Quiescent;
            };
            if ev.at > cfg.max_time {
                break StopReason::TimeLimit;
            }
            if d.metrics.events_processed >= cfg.max_events {
                break StopReason::EventLimit;
            }
            d.metrics.events_processed += 1;
            d.now = ev.at;
            let pid = ev.target;
            let idx = pid.index();

            if let EventKind::Crash = ev.kind {
                if !d.crashed[idx] {
                    d.crashed[idx] = true;
                    d.trace.record(d.now, TraceEvent::Crash { process: pid });
                }
                if d.crashed.iter().zip(&d.halted).all(|(c, h)| *c || *h) {
                    break StopReason::AllStopped;
                }
                continue;
            }
            if d.crashed[idx] || d.halted[idx] {
                continue; // silence of the dead
            }

            // One callback through the shared runtime choke point: the
            // context borrows the driver's clock and RNG, and the staged
            // effects are applied in the canonical order.
            match ev.kind {
                EventKind::Start => step(&mut d, pid, |ctx| actors[idx].on_start(ctx)),
                EventKind::Deliver { from, msg } => {
                    d.metrics.on_deliver();
                    d.trace.record(
                        d.now,
                        TraceEvent::Deliver {
                            src: from,
                            dst: pid,
                            label: msg.label(),
                        },
                    );
                    step(&mut d, pid, |ctx| {
                        actors[idx].on_message(from, msg.as_ref(), ctx);
                    });
                }
                EventKind::Timer { tag } => {
                    d.metrics.on_timer();
                    d.trace.record(
                        d.now,
                        TraceEvent::Timer {
                            at_process: pid,
                            tag,
                        },
                    );
                    step(&mut d, pid, |ctx| actors[idx].on_timer(tag, ctx));
                }
                EventKind::Crash => unreachable!("handled above"),
            }

            // Break precedence: a completed run (everyone halted/crashed)
            // wins over the round-cap backstop at the same instant.
            if d.all_stopped {
                break StopReason::AllStopped;
            }
            if d.round_cap_hit {
                break StopReason::RoundLimit;
            }
        };

        RunReport {
            decisions: d.decisions,
            crashed: d.crashed,
            halted: d.halted,
            contradictions: d.contradictions,
            end_time: d.now,
            stop,
            trace: d.trace,
            metrics: d.metrics,
        }
    }
}

/// The simulator's [`Runtime`]: maps the runtime-agnostic capabilities
/// onto the event queue, the seeded delay model and the run's collectors.
///
/// Private to the runner — users see only [`Simulation::run`]'s report.
/// The effect-application order (inherited from
/// [`Runtime::apply_effects`]) and the RNG draw order (callback draws,
/// then one delivery-time draw per dispatched copy, in staging order) are
/// what keep sweep reports byte-identical across refactors.
struct SimDriver<M: Payload, D> {
    n: usize,
    now: VirtualTime,
    rng: Xoshiro256PlusPlus,
    network: Network,
    queue: EventQueue<Arc<M>>,
    trace: Trace,
    metrics: Metrics,
    decisions: Vec<Option<D>>,
    crashed: Vec<bool>,
    halted: Vec<bool>,
    contradictions: Vec<ProcessId>,
    max_rounds: Option<u64>,
    round_cap_hit: bool,
    all_stopped: bool,
}

impl<M, D> Runtime<M, D> for SimDriver<M, D>
where
    M: Payload,
    D: Clone + PartialEq + fmt::Debug,
{
    fn now(&self) -> VirtualTime {
        self.now
    }

    fn process_count(&self) -> usize {
        self.n
    }

    fn rng_draw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn dispatch(&mut self, from: ProcessId, send: StagedSend<M>) {
        // A broadcast is expanded here, sharing one `Arc` across all `n`
        // pending deliveries.
        let (targets, msg) = match send {
            StagedSend::To(to, msg) => (vec![to], Arc::new(msg)),
            StagedSend::ToAll(msg) => ((0..self.n as u32).map(ProcessId).collect(), Arc::new(msg)),
        };
        for to in targets {
            self.metrics.on_send(from, msg.layer_split());
            self.trace.record(
                self.now,
                TraceEvent::Send {
                    src: from,
                    dst: to,
                    bytes: msg.size_bytes(),
                    label: msg.label(),
                },
            );
            let at = self
                .network
                .delivery_time(&mut self.rng, from, to, self.now);
            self.queue.push(
                at,
                to,
                EventKind::Deliver {
                    from,
                    msg: Arc::clone(&msg),
                },
            );
        }
    }

    fn schedule(&mut self, at: ProcessId, delay: Duration, tag: TimerTag) {
        self.queue
            .push(self.now + delay, at, EventKind::Timer { tag });
    }

    fn emit_note(&mut self, at: ProcessId, text: String) {
        if let (Some(cap), Some(round)) = (self.max_rounds, note_round(&text)) {
            self.round_cap_hit |= round > cap;
        }
        self.trace
            .record(self.now, TraceEvent::Note { process: at, text });
    }

    fn record_decision(&mut self, at: ProcessId, value: D) {
        let idx = at.index();
        match &self.decisions[idx] {
            None => {
                self.trace.record(
                    self.now,
                    TraceEvent::Decide {
                        process: at,
                        value: format!("{value:?}"),
                    },
                );
                self.decisions[idx] = Some(value);
            }
            Some(prev) if *prev != value => self.contradictions.push(at),
            Some(_) => {}
        }
    }

    fn record_halt(&mut self, at: ProcessId) {
        self.halted[at.index()] = true;
        self.trace
            .record(self.now, TraceEvent::Halt { process: at });
        if self.crashed.iter().zip(&self.halted).all(|(c, h)| *c || *h) {
            self.all_stopped = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Context;
    use crate::time::Duration;

    /// Sends its id to everyone; decides on the sum of received ids.
    struct Summer {
        sum: u64,
        got: usize,
    }

    impl Actor for Summer {
        type Msg = u64;
        type Decision = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
            ctx.broadcast(ctx.me().0 as u64);
        }

        fn on_message(&mut self, _from: ProcessId, msg: &u64, ctx: &mut Context<'_, u64, u64>) {
            self.sum += *msg;
            self.got += 1;
            if self.got == ctx.process_count() {
                ctx.decide(self.sum);
                ctx.halt();
            }
        }
    }

    fn summer(_: ProcessId) -> Summer {
        Summer { sum: 0, got: 0 }
    }

    #[test]
    fn all_processes_decide_the_sum() {
        let report = Simulation::build(SimConfig::new(5).seed(3), summer).run();
        assert!(report.all_decided());
        assert_eq!(report.unanimous(), Some(1 + 2 + 3 + 4));
        assert_eq!(report.stop, StopReason::AllStopped);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let r1 = Simulation::build(SimConfig::new(4).seed(9), summer).run();
        let r2 = Simulation::build(SimConfig::new(4).seed(9), summer).run();
        assert_eq!(r1.end_time, r2.end_time);
        assert_eq!(r1.metrics, r2.metrics);
        assert_eq!(r1.trace.entries(), r2.trace.entries());
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = Simulation::build(SimConfig::new(4).seed(1), summer).run();
        let r2 = Simulation::build(SimConfig::new(4).seed(2), summer).run();
        // Same decisions, (almost surely) different schedules.
        assert_eq!(r1.unanimous(), r2.unanimous());
        assert_ne!(r1.trace.entries(), r2.trace.entries());
    }

    #[test]
    fn crashed_process_goes_silent() {
        let cfg = SimConfig::new(3).seed(5).crash(0, VirtualTime::ZERO);
        let report = Simulation::build(cfg, summer).run();
        // p0 crashed before sending anything: nobody can collect 3 messages.
        assert!(!report.all_decided());
        assert!(report.crashed[0]);
        assert_eq!(report.decisions, vec![None, None, None]);
        assert_eq!(report.stop, StopReason::Quiescent);
    }

    #[test]
    fn run_ends_before_a_late_crash_fires() {
        let cfg = SimConfig::new(3)
            .seed(5)
            .crash(2, VirtualTime::at(1_000_000));
        let report = Simulation::build(cfg, summer).run();
        assert!(report.all_decided());
        // Everyone halted long before the scheduled crash, so the run ends
        // with the crash never having happened.
        assert!(!report.crashed[2]);
        assert_eq!(report.stop, StopReason::AllStopped);
    }

    #[test]
    fn metrics_count_broadcasts() {
        let report = Simulation::build(SimConfig::new(4).seed(0), summer).run();
        assert_eq!(report.metrics.messages_sent, 16); // 4 processes × 4 targets
        assert_eq!(report.metrics.bytes_sent, 16 * 8);
        assert_eq!(report.metrics.messages_delivered, 16);
    }

    struct TimerLoop {
        fired: u64,
    }

    impl Actor for TimerLoop {
        type Msg = u64;
        type Decision = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
            ctx.set_timer(Duration::of(10), 1);
        }

        fn on_message(&mut self, _: ProcessId, _: &u64, _: &mut Context<'_, u64, u64>) {}

        fn on_timer(&mut self, tag: u64, ctx: &mut Context<'_, u64, u64>) {
            assert_eq!(tag, 1);
            self.fired += 1;
            if self.fired == 3 {
                ctx.decide(self.fired);
                ctx.halt();
            } else {
                ctx.set_timer(Duration::of(10), 1);
            }
        }
    }

    #[test]
    fn timers_rearm_and_fire_in_order() {
        let report = Simulation::build(SimConfig::new(2).seed(0), |_| TimerLoop { fired: 0 }).run();
        assert_eq!(report.unanimous(), Some(3));
        assert_eq!(report.end_time, VirtualTime::at(30));
        assert_eq!(report.metrics.timers_fired, 6);
    }

    struct Chatter;

    impl Actor for Chatter {
        type Msg = u64;
        type Decision = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
            ctx.send(ctx.me(), 0);
        }

        fn on_message(&mut self, _: ProcessId, msg: &u64, ctx: &mut Context<'_, u64, u64>) {
            ctx.send(ctx.me(), msg + 1); // ping-pong with self forever
        }
    }

    #[test]
    fn event_budget_stops_runaway_protocols() {
        let cfg = SimConfig::new(1).seed(0).max_events(100);
        let report = Simulation::build(cfg, |_| Chatter).run();
        assert_eq!(report.stop, StopReason::EventLimit);
        assert!(report.metrics.events_processed <= 100);
    }

    #[test]
    fn time_limit_stops_slow_protocols() {
        let cfg = SimConfig::new(1).seed(0).max_time(VirtualTime::at(50));
        let report = Simulation::build(cfg, |_| TimerLoop { fired: 0 }).run();
        // TimerLoop on one process decides at t=30 < 50, so it finishes;
        // use Chatter instead for the limit.
        assert_eq!(report.stop, StopReason::AllStopped);
        let cfg = SimConfig::new(1).seed(0).max_time(VirtualTime::at(50));
        let report = Simulation::build(cfg, |_| Chatter).run();
        assert_eq!(report.stop, StopReason::TimeLimit);
    }

    /// Notes entry into round `r + 1` on every timer tick, forever.
    struct RoundChurner {
        r: u64,
    }

    impl Actor for RoundChurner {
        type Msg = u64;
        type Decision = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
            ctx.set_timer(Duration::of(10), 1);
        }

        fn on_message(&mut self, _: ProcessId, _: &u64, _: &mut Context<'_, u64, u64>) {}

        fn on_timer(&mut self, _: u64, ctx: &mut Context<'_, u64, u64>) {
            self.r += 1;
            ctx.note(format!("round={}", self.r));
            ctx.set_timer(Duration::of(10), 1);
        }
    }

    #[test]
    fn round_cap_stops_churning_protocols() {
        let cfg = SimConfig::new(1).seed(0).max_rounds(3);
        let report = Simulation::build(cfg, |_| RoundChurner { r: 0 }).run();
        assert_eq!(report.stop, StopReason::RoundLimit);
        // The run ended right when round 4 was announced: t = 4 ticks of 10.
        assert_eq!(report.end_time, VirtualTime::at(40));
        // Slot-prefixed round notes (the log workload) hit the cap too.
        assert_eq!(super::note_round("s2:round=7"), Some(7));
        assert_eq!(super::note_round("round=7"), Some(7));
        assert_eq!(super::note_round("suspect=p1 r=7"), None);
        // Without the cap the same protocol runs to the time limit.
        let cfg = SimConfig::new(1).seed(0).max_time(VirtualTime::at(500));
        let report = Simulation::build(cfg, |_| RoundChurner { r: 0 }).run();
        assert_eq!(report.stop, StopReason::TimeLimit);
    }

    #[test]
    fn notes_reach_the_trace() {
        struct Noter;
        impl Actor for Noter {
            type Msg = u64;
            type Decision = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
                ctx.note("round=1");
                ctx.halt();
            }
            fn on_message(&mut self, _: ProcessId, _: &u64, _: &mut Context<'_, u64, u64>) {}
        }
        let report = Simulation::build(SimConfig::new(1).seed(0), |_| Noter).run();
        assert_eq!(report.trace.notes_of(ProcessId(0)), vec!["round=1"]);
    }

    #[test]
    fn contradiction_is_flagged() {
        struct Flipper;
        impl Actor for Flipper {
            type Msg = u64;
            type Decision = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
                ctx.send(ctx.me(), 0);
                ctx.decide(1);
            }
            fn on_message(&mut self, _: ProcessId, _: &u64, ctx: &mut Context<'_, u64, u64>) {
                ctx.decide(2); // contradicts the earlier decision
                ctx.halt();
            }
        }
        let report = Simulation::build(SimConfig::new(1).seed(0), |_| Flipper).run();
        assert_eq!(report.contradictions, vec![ProcessId(0)]);
    }
}
