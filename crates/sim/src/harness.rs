//! Deterministic parallel scenario-sweep harness.
//!
//! Validating the crash→arbitrary transformation means running the same
//! protocol stack across large matrices of fault scenarios. This module is
//! the fan-out machinery: it takes a list of scenarios, derives one
//! independent PRNG seed per scenario from a single base seed, and runs the
//! scenarios across worker threads pulling from a shared queue.
//!
//! # Determinism contract
//!
//! The output is a **pure function of `(scenarios, base_seed)`** — worker
//! count and thread interleaving are unobservable:
//!
//! * every scenario run is single-threaded internally and seeded by
//!   [`derive_seed`]`(base_seed, index)`, never by wall-clock or thread id;
//! * results are written into a slot addressed by scenario index, so the
//!   collected vector has matrix order no matter which worker ran what;
//! * reports carry only virtual-time and count data — no wall-clock fields.
//!
//! `sweep(.., threads: 1, ..)` and `sweep(.., threads: 8, ..)` therefore
//! produce byte-identical JSON, which the `harness_determinism` integration
//! test enforces.
//!
//! # Example
//!
//! ```
//! use ftm_sim::harness::{sweep, RunRecord, SweepReport};
//!
//! let scenarios = vec![2usize, 3, 4];
//! let records = sweep(&scenarios, 7, 4, |index, &n, seed| {
//!     let mut rec = RunRecord::new(format!("n={n}"), index, seed);
//!     rec.set("processes", n as u64);
//!     rec
//! });
//! let report = SweepReport::new(7, records);
//! assert!(report.to_json().render().contains("\"n=2\""));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::prng::derive_seed;
use crate::report::Json;

/// Structured metrics emitted by one scenario run.
///
/// A record is a flat `counter name → u64` map plus identity fields, so
/// heterogeneous scenarios (crash model, muteness, Byzantine attacks)
/// aggregate uniformly: cells are grouped by `cell`, and each counter is
/// summarized as p50/p95/max across the cell's runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Scenario-cell key, e.g. `"n=4 f=1 fault=vector-corruptor"`. Runs
    /// sharing a cell are aggregated together.
    pub cell: String,
    /// Position in the scenario matrix (also the seed-derivation index).
    pub index: usize,
    /// The derived per-run seed (replay handle: rerun this one scenario
    /// with this seed to reproduce the trace bit-for-bit).
    pub seed: u64,
    /// Whether the run satisfied its scenario's expectations.
    pub ok: bool,
    /// Named counters (rounds, per-layer bytes, suspicions, …).
    pub counters: BTreeMap<String, u64>,
}

impl RunRecord {
    /// Creates an empty passing record for one scenario run.
    pub fn new(cell: impl Into<String>, index: usize, seed: u64) -> Self {
        RunRecord {
            cell: cell.into(),
            index,
            seed,
            ok: true,
            counters: BTreeMap::new(),
        }
    }

    /// Sets counter `name` to `value` (overwrites).
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Reads counter `name` (zero when unset).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("cell".into(), Json::Str(self.cell.clone())),
            ("index".into(), Json::U64(self.index as u64)),
            ("seed".into(), Json::U64(self.seed)),
            ("ok".into(), Json::Bool(self.ok)),
            ("counters".into(), Json::from_map(&self.counters)),
        ])
    }
}

/// Nearest-rank percentile summary of one counter across a cell's runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Median (50th percentile, nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    pub fn of(values: &[u64]) -> Summary {
        assert!(!values.is_empty(), "summary of empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |p: u64| {
            // Nearest-rank: smallest index i with (i+1)/m ≥ p/100.
            let m = sorted.len() as u64;
            let idx = (p * m).div_ceil(100).max(1) - 1;
            sorted[idx as usize]
        };
        Summary {
            p50: rank(50),
            p95: rank(95),
            max: *sorted.last().unwrap(),
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("p50".into(), Json::U64(self.p50)),
            ("p95".into(), Json::U64(self.p95)),
            ("max".into(), Json::U64(self.max)),
        ])
    }
}

/// Aggregated view of one scenario cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellStats {
    /// Number of runs aggregated into this cell.
    pub runs: u64,
    /// Number of those runs with `ok == true`.
    pub ok_runs: u64,
    /// Per-counter p50/p95/max. A counter missing from some of the cell's
    /// runs is treated as zero there, so summaries always cover all runs.
    pub stats: BTreeMap<String, Summary>,
}

/// The result of one sweep: every run record plus per-cell aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Base seed the per-run seeds were derived from.
    pub base_seed: u64,
    /// All run records, in matrix order.
    pub records: Vec<RunRecord>,
}

impl SweepReport {
    /// Wraps sweep output for aggregation and serialization.
    pub fn new(base_seed: u64, records: Vec<RunRecord>) -> Self {
        SweepReport { base_seed, records }
    }

    /// `true` when every run satisfied its scenario's expectations.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.ok)
    }

    /// Groups records by cell and summarizes every counter (sorted by cell
    /// key, so iteration — and the JSON rendering — is deterministic).
    pub fn cells(&self) -> BTreeMap<String, CellStats> {
        let mut grouped: BTreeMap<&str, Vec<&RunRecord>> = BTreeMap::new();
        for rec in &self.records {
            grouped.entry(&rec.cell).or_default().push(rec);
        }
        grouped
            .into_iter()
            .map(|(cell, recs)| {
                let mut names: Vec<&str> = recs
                    .iter()
                    .flat_map(|r| r.counters.keys().map(String::as_str))
                    .collect();
                names.sort_unstable();
                names.dedup();
                let stats = names
                    .into_iter()
                    .map(|name| {
                        let values: Vec<u64> = recs.iter().map(|r| r.get(name)).collect();
                        (name.to_string(), Summary::of(&values))
                    })
                    .collect();
                let stats = CellStats {
                    runs: recs.len() as u64,
                    ok_runs: recs.iter().filter(|r| r.ok).count() as u64,
                    stats,
                };
                (cell.to_string(), stats)
            })
            .collect()
    }

    /// Serializes the full report (aggregates first, then raw records) as a
    /// byte-stable JSON document.
    pub fn to_json(&self) -> Json {
        let cells = Json::Obj(
            self.cells()
                .into_iter()
                .map(|(cell, stats)| {
                    let body = Json::Obj(vec![
                        ("runs".into(), Json::U64(stats.runs)),
                        ("ok_runs".into(), Json::U64(stats.ok_runs)),
                        (
                            "metrics".into(),
                            Json::Obj(
                                stats
                                    .stats
                                    .into_iter()
                                    .map(|(name, s)| (name, s.to_json()))
                                    .collect(),
                            ),
                        ),
                    ]);
                    (cell, body)
                })
                .collect(),
        );
        Json::Obj(vec![
            ("base_seed".into(), Json::U64(self.base_seed)),
            ("runs".into(), Json::U64(self.records.len() as u64)),
            ("cells".into(), cells),
            (
                "records".into(),
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }
}

/// Fans `scenarios` out across `threads` workers and collects one
/// [`RunRecord`] per scenario, in matrix order.
///
/// Workers pull the next scenario index from a shared atomic counter (work
/// stealing: a worker stuck on a slow run never blocks the others). The
/// callback receives `(index, scenario, seed)` where `seed` is
/// [`derive_seed`]`(base_seed, index)` — runs must draw **all** randomness
/// from that seed for the determinism contract to hold.
///
/// # Panics
///
/// Panics if any worker panics (the panic is propagated).
pub fn sweep<S, F>(scenarios: &[S], base_seed: u64, threads: usize, run: F) -> Vec<RunRecord>
where
    S: Sync,
    F: Fn(usize, &S, u64) -> RunRecord + Sync,
{
    parallel_map(scenarios, threads, |index, scenario| {
        run(index, scenario, derive_seed(base_seed, index as u64))
    })
}

/// Order-preserving work-stealing map: applies `f` to every item of
/// `items` across `threads` workers and returns the results in input
/// order.
///
/// This is the harness's fan-out primitive — [`sweep`] is built on it, and
/// batch jobs whose units are not scenario runs (e.g. per-round signature
/// verification of a message batch) reuse the same worker discipline.
/// Workers pull the next index from a shared atomic counter, so a slow
/// item never blocks the rest of the batch. `f` must be a pure function of
/// `(index, item)` for the output to be independent of thread count.
///
/// # Panics
///
/// Panics if any worker panics (the panic is propagated).
pub fn parallel_map<S, T, F>(items: &[S], threads: usize, f: F) -> Vec<T>
where
    S: Sync,
    T: Send,
    F: Fn(usize, &S) -> T + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                let result = f(index, item);
                *slots[index].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item slot is filled before the scope ends")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_run(index: usize, scenario: &u64, seed: u64) -> RunRecord {
        let mut rec = RunRecord::new(format!("s={scenario}"), index, seed);
        rec.set("value", scenario * 10);
        rec.add("seed_low", seed & 0xFF);
        rec
    }

    #[test]
    fn sweep_preserves_matrix_order() {
        let scenarios = vec![5u64, 1, 9, 3];
        let records = sweep(&scenarios, 42, 3, toy_run);
        let cells: Vec<&str> = records.iter().map(|r| r.cell.as_str()).collect();
        assert_eq!(cells, vec!["s=5", "s=1", "s=9", "s=3"]);
        assert_eq!(
            records.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn sweep_output_is_independent_of_thread_count() {
        let scenarios: Vec<u64> = (0..40).collect();
        let one = sweep(&scenarios, 7, 1, toy_run);
        let eight = sweep(&scenarios, 7, 8, toy_run);
        assert_eq!(one, eight);
        let a = SweepReport::new(7, one).to_json().render();
        let b = SweepReport::new(7, eight).to_json().render();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..50).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8] {
            let got = parallel_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn distinct_base_seeds_derive_distinct_run_seeds() {
        let scenarios = vec![1u64, 2];
        let a = sweep(&scenarios, 1, 1, toy_run);
        let b = sweep(&scenarios, 2, 1, toy_run);
        assert_ne!(a[0].seed, b[0].seed);
        assert_ne!(a[0].seed, a[1].seed);
    }

    #[test]
    fn sweep_handles_empty_matrix_and_more_threads_than_work() {
        let records = sweep(&Vec::<u64>::new(), 0, 8, toy_run);
        assert!(records.is_empty());
        let records = sweep(&[4u64], 0, 8, toy_run);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn summary_nearest_rank_matches_hand_computation() {
        let s = Summary::of(&[10, 20, 30, 40, 50]);
        assert_eq!(s.p50, 30);
        assert_eq!(s.p95, 50);
        assert_eq!(s.max, 50);
        let single = Summary::of(&[7]);
        assert_eq!((single.p50, single.p95, single.max), (7, 7, 7));
        let pair = Summary::of(&[1, 100]);
        assert_eq!(pair.p50, 1);
        assert_eq!(pair.p95, 100);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_rejects_empty_samples() {
        Summary::of(&[]);
    }

    #[test]
    fn cells_aggregate_by_key_and_fill_missing_counters_with_zero() {
        let mut a = RunRecord::new("cell", 0, 1);
        a.set("x", 10);
        let mut b = RunRecord::new("cell", 1, 2);
        b.set("x", 30);
        b.set("y", 5);
        b.ok = false;
        let report = SweepReport::new(0, vec![a, b]);
        let cells = report.cells();
        let stats = &cells["cell"];
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.ok_runs, 1);
        assert_eq!(stats.stats["x"].max, 30);
        // `y` is missing from run 0 → treated as zero there.
        assert_eq!(stats.stats["y"].p50, 0);
        assert_eq!(stats.stats["y"].max, 5);
        assert!(!report.all_ok());
    }

    #[test]
    fn report_json_contains_aggregates_and_records() {
        let scenarios = vec![1u64, 1, 2];
        let report = SweepReport::new(3, sweep(&scenarios, 3, 2, toy_run));
        let json = report.to_json().render();
        assert!(json.contains("\"base_seed\": 3"));
        assert!(json.contains("\"s=1\""));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"records\""));
        assert!(report.all_ok());
    }
}
