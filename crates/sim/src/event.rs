//! The simulator's internal event queue.
//!
//! A binary heap keyed by `(time, sequence)`: the sequence number is a
//! monotonically increasing tie-breaker, so runs are deterministic even when
//! many events share an instant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::process::{ProcessId, TimerTag};
use crate::time::VirtualTime;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Deliver `msg` from `from` to the event's target process.
    Deliver {
        /// Sender of the message.
        from: ProcessId,
        /// The message payload.
        msg: M,
    },
    /// Fire the timer `tag` at the target process.
    Timer {
        /// The process-chosen timer identity being fired.
        tag: TimerTag,
    },
    /// Crash the target process (scheduled from [`crate::SimConfig`]).
    Crash,
    /// Invoke `on_start` at the target process.
    Start,
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// When the event fires.
    pub at: VirtualTime,
    /// Which process it targets.
    pub target: ProcessId,
    /// What it does.
    pub kind: EventKind<M>,
    seq: u64,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at `at` for `target`. Events at equal times fire in
    /// scheduling order.
    pub fn push(&mut self, at: VirtualTime, target: ProcessId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            target,
            kind,
            seq,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.push(VirtualTime::at(5), ProcessId(0), EventKind::Start);
        q.push(VirtualTime::at(1), ProcessId(1), EventKind::Start);
        q.push(VirtualTime::at(3), ProcessId(2), EventKind::Start);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.ticks())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_fire_in_schedule_order() {
        let mut q: EventQueue<u64> = EventQueue::new();
        for p in 0..10u32 {
            q.push(VirtualTime::at(7), ProcessId(p), EventKind::Start);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q: EventQueue<u64> = EventQueue::new();
        assert!(q.is_empty());
        q.push(VirtualTime::ZERO, ProcessId(0), EventKind::Crash);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
