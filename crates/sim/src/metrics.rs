//! Per-run cost accounting: message counts, bytes, callback counts.
//!
//! Experiment E6 ("the price of arbitrary-fault tolerance") compares these
//! numbers between the crash-model protocol and its transformed version,
//! and the sweep harness reports the per-module-layer byte breakdown
//! (signature / certification / protocol) for every scenario cell.

use crate::process::{LayerSplit, ProcessId};

/// Aggregated counters for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Total payload bytes handed to the network.
    pub bytes_sent: u64,
    /// Of [`bytes_sent`](Metrics::bytes_sent): bytes added by the signature
    /// layer.
    pub signature_bytes: u64,
    /// Of [`bytes_sent`](Metrics::bytes_sent): bytes added by the
    /// certification layer (carried certificates).
    pub certificate_bytes: u64,
    /// Of [`bytes_sent`](Metrics::bytes_sent): protocol-core bytes.
    pub protocol_bytes: u64,
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Events processed by the runner (all kinds).
    pub events_processed: u64,
    /// Per-process sent-message counts (index = process).
    pub sent_per_process: Vec<u64>,
    /// Per-process sent-byte counts (index = process).
    pub bytes_per_process: Vec<u64>,
}

impl Metrics {
    /// Creates zeroed counters for `n` processes.
    pub fn new(n: usize) -> Self {
        Metrics {
            sent_per_process: vec![0; n],
            bytes_per_process: vec![0; n],
            ..Metrics::default()
        }
    }

    /// Records one send by `src`, attributing its bytes per layer.
    pub fn on_send(&mut self, src: ProcessId, split: LayerSplit) {
        let bytes = split.total();
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        self.signature_bytes += split.signature_bytes as u64;
        self.certificate_bytes += split.certificate_bytes as u64;
        self.protocol_bytes += split.protocol_bytes as u64;
        if let Some(c) = self.sent_per_process.get_mut(src.index()) {
            *c += 1;
        }
        if let Some(b) = self.bytes_per_process.get_mut(src.index()) {
            *b += bytes as u64;
        }
    }

    /// Records one delivery.
    pub fn on_deliver(&mut self) {
        self.messages_delivered += 1;
    }

    /// Records one timer firing.
    pub fn on_timer(&mut self) {
        self.timers_fired += 1;
    }

    /// Mean payload size per sent message, in tenths of a byte (zero
    /// when none sent). Integer arithmetic: metrics feed byte-stable
    /// reports, so the no-float policy applies here too.
    pub fn mean_message_bytes_tenths(&self) -> u64 {
        (self.bytes_sent * 10)
            .checked_div(self.messages_sent)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(2);
        m.on_send(ProcessId(0), LayerSplit::protocol_only(10));
        m.on_send(ProcessId(1), LayerSplit::protocol_only(30));
        m.on_deliver();
        m.on_timer();
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.bytes_sent, 40);
        assert_eq!(m.messages_delivered, 1);
        assert_eq!(m.timers_fired, 1);
        assert_eq!(m.sent_per_process, vec![1, 1]);
        assert_eq!(m.bytes_per_process, vec![10, 30]);
        assert_eq!(m.mean_message_bytes_tenths(), 200);
    }

    #[test]
    fn layered_sends_split_bytes_by_module() {
        let mut m = Metrics::new(1);
        m.on_send(
            ProcessId(0),
            LayerSplit {
                signature_bytes: 32,
                certificate_bytes: 100,
                protocol_bytes: 24,
            },
        );
        m.on_send(ProcessId(0), LayerSplit::protocol_only(8));
        assert_eq!(m.bytes_sent, 164);
        assert_eq!(m.signature_bytes, 32);
        assert_eq!(m.certificate_bytes, 100);
        assert_eq!(m.protocol_bytes, 32);
        assert_eq!(
            m.signature_bytes + m.certificate_bytes + m.protocol_bytes,
            m.bytes_sent
        );
    }

    #[test]
    fn mean_of_zero_messages_is_zero() {
        assert_eq!(Metrics::new(1).mean_message_bytes_tenths(), 0);
    }

    #[test]
    fn out_of_range_sender_is_ignored_gracefully() {
        let mut m = Metrics::new(1);
        m.on_send(ProcessId(9), LayerSplit::protocol_only(5));
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.sent_per_process, vec![0]);
    }
}
