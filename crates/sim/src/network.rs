//! The honest network: reliable FIFO channels with random finite delays.
//!
//! The paper's model: every pair of processes is connected by a reliable
//! FIFO channel; there is no bound on message transfer delays. This module
//! computes per-message delivery times that honor both properties:
//!
//! * **Reliability** — every send is delivered (the simulator never drops).
//! * **FIFO** — per ordered pair `(src, dst)`, delivery times are strictly
//!   increasing in send order, regardless of the random delays drawn.
//! * **Partial synchrony (optional)** — after the configured GST, delays are
//!   capped, which is what makes timeout-based failure detectors eventually
//!   accurate.

use std::sync::Arc;

use crate::config::{DelayScript, SimConfig};
use crate::prng::Rng64;
use crate::process::ProcessId;
use crate::time::{Duration, VirtualTime};

/// Computes delivery times for the honest network.
pub struct Network {
    n: usize,
    min_delay: Duration,
    max_delay: Duration,
    gst: Option<VirtualTime>,
    post_gst_max_delay: Duration,
    script: Option<Arc<DelayScript>>,
    /// Last delivery time per ordered pair, indexed `src * n + dst`.
    last_delivery: Vec<VirtualTime>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("n", &self.n)
            .field("scripted", &self.script.is_some())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds the network from a run configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Network {
            n: cfg.n,
            min_delay: cfg.min_delay,
            max_delay: cfg.max_delay,
            gst: cfg.gst,
            post_gst_max_delay: cfg.post_gst_max_delay,
            script: cfg.delay_script.clone(),
            last_delivery: vec![VirtualTime::ZERO; cfg.n * cfg.n],
        }
    }

    /// Draws the delivery time for a message sent `src → dst` at `now`.
    ///
    /// The result is strictly later than both `now` and any previous
    /// delivery on the same channel (FIFO).
    pub fn delivery_time<R: Rng64 + ?Sized>(
        &mut self,
        rng: &mut R,
        src: ProcessId,
        dst: ProcessId,
        now: VirtualTime,
    ) -> VirtualTime {
        let delay = if let Some(script) = &self.script {
            Duration::of(script(src, dst, now).max(1))
        } else {
            let max = match self.gst {
                Some(gst) if now >= gst => self.post_gst_max_delay.max(self.min_delay),
                _ => self.max_delay,
            };
            let lo = self.min_delay.ticks().max(1);
            let hi = max.ticks().max(lo);
            Duration::of(rng.gen_range_u64(lo, hi))
        };
        let slot = src.index() * self.n + dst.index();
        let fifo_floor = self.last_delivery[slot] + Duration::of(1);
        let at = (now + delay).max(fifo_floor);
        self.last_delivery[slot] = at;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;

    fn net(cfg: &SimConfig) -> (Network, Xoshiro256PlusPlus) {
        (Network::new(cfg), Xoshiro256PlusPlus::from_seed(1))
    }

    #[test]
    fn delivery_is_after_send() {
        let cfg = SimConfig::new(3);
        let (mut n, mut rng) = net(&cfg);
        let t = n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::at(100));
        assert!(t > VirtualTime::at(100));
        assert!(t <= VirtualTime::at(110));
    }

    #[test]
    fn fifo_per_ordered_pair() {
        let cfg = SimConfig::new(3).delay_range(Duration::of(1), Duration::of(50));
        let (mut n, mut rng) = net(&cfg);
        let mut last = VirtualTime::ZERO;
        // All sent at the same instant: delays could invert without FIFO.
        for _ in 0..100 {
            let t = n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::at(10));
            assert!(t > last, "FIFO violated: {t:?} after {last:?}");
            last = t;
        }
    }

    #[test]
    fn distinct_channels_are_independent() {
        let cfg = SimConfig::new(3).delay_range(Duration::of(1), Duration::of(1));
        let (mut n, mut rng) = net(&cfg);
        // Saturate 0→1 far into the future…
        for _ in 0..50 {
            n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::at(1));
        }
        // …the reverse channel 1→0 is unaffected.
        let t = n.delivery_time(&mut rng, ProcessId(1), ProcessId(0), VirtualTime::at(1));
        assert_eq!(t, VirtualTime::at(2));
    }

    #[test]
    fn post_gst_delays_are_capped() {
        let cfg = SimConfig::new(2)
            .delay_range(Duration::of(1), Duration::of(1_000))
            .gst(VirtualTime::at(100), Duration::of(5));
        let (mut n, mut rng) = net(&cfg);
        for _ in 0..50 {
            let sent = VirtualTime::at(200);
            let t = n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), sent);
            // Cap holds modulo the FIFO floor, which stays below the cap here.
            assert!(t.since(sent) <= Duration::of(5 * 51));
        }
        // Fresh channel, strictly post-GST: the cap itself holds.
        let t = n.delivery_time(&mut rng, ProcessId(1), ProcessId(0), VirtualTime::at(500));
        assert!(t.since(VirtualTime::at(500)) <= Duration::of(5));
    }

    #[test]
    fn scripted_delays_override_random_draws() {
        let cfg = SimConfig::new(2).delay_script(|src, _dst, _now| if src.0 == 0 { 7 } else { 3 });
        let (mut n, mut rng) = net(&cfg);
        let a = n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::at(10));
        let b = n.delivery_time(&mut rng, ProcessId(1), ProcessId(0), VirtualTime::at(10));
        assert_eq!(a, VirtualTime::at(17));
        assert_eq!(b, VirtualTime::at(13));
    }

    #[test]
    fn scripted_delays_still_respect_fifo() {
        // A script that would invert order is corrected by the FIFO floor.
        let cfg = SimConfig::new(2).delay_script(|_, _, now| if now.ticks() == 0 { 50 } else { 1 });
        let (mut n, mut rng) = net(&cfg);
        let first = n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::ZERO);
        let second = n.delivery_time(&mut rng, ProcessId(0), ProcessId(1), VirtualTime::at(5));
        assert_eq!(first, VirtualTime::at(50));
        assert!(second > first);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = SimConfig::new(2);
        let (mut n1, mut r1) = net(&cfg);
        let (mut n2, mut r2) = net(&cfg);
        for i in 0..20 {
            let a = n1.delivery_time(&mut r1, ProcessId(0), ProcessId(1), VirtualTime::at(i));
            let b = n2.delivery_time(&mut r2, ProcessId(0), ProcessId(1), VirtualTime::at(i));
            assert_eq!(a, b);
        }
    }
}
