//! Deterministic pseudo-random number generation for simulation runs.
//!
//! The generators themselves live in [`ftm_crypto::prng`] (the workspace's
//! dependency-free base crate); this module re-exports them so simulator
//! users write `ftm_sim::prng::...` without caring about the layering. Every
//! run draws all of its randomness — network delays, actor `random_u64`
//! calls — from one [`Xoshiro256PlusPlus`] stream seeded by
//! [`crate::SimConfig::seed`], and the sweep harness derives per-scenario
//! seeds with [`derive_seed`] so parallel runs stay independent of thread
//! interleaving.

pub use ftm_crypto::prng::{derive_seed, splitmix64, Rng64, SplitMix64, Xoshiro256PlusPlus};
