//! Deterministic discrete-event simulator for asynchronous message-passing
//! distributed systems.
//!
//! This is the network/runtime substrate the paper assumes: `n` processes,
//! every pair connected by a **reliable FIFO channel**, no bound on relative
//! process speeds or message transfer delays. The simulator makes that model
//! executable and — crucially for a reproduction — *deterministic*: a run is
//! a pure function of its [`SimConfig`] (including the RNG seed), so every
//! counterexample a sweep finds is replayable bit-for-bit.
//!
//! # Architecture
//!
//! * Protocol code implements [`Actor`]: callbacks for start, message
//!   delivery and timer expiry, issuing effects through a [`Context`].
//! * The [`Simulation`] runner owns the event queue (a priority queue ordered
//!   by virtual time with a deterministic tie-break), the [`network`] delay
//!   model (random per-message latency, FIFO enforced per ordered pair,
//!   optional Global Stabilization Time after which delays are bounded), and
//!   per-run [`metrics`] and [`trace`] collection.
//! * Crash faults (the *benign* kind) are first-class: the runner silences a
//!   process at its scheduled crash time. Arbitrary faults are implemented
//!   as actor wrappers in the `ftm-faults` crate — the network stays honest,
//!   matching the paper's reliable-channel assumption.
//!
//! # Example
//!
//! ```
//! use ftm_sim::prelude::*;
//!
//! /// Every process sends "ping" to everyone once; counts receipts.
//! struct Ping { seen: usize }
//! impl Actor for Ping {
//!     type Msg = &'static str;
//!     type Decision = usize;
//!     fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Decision>) {
//!         ctx.broadcast("ping");
//!     }
//!     fn on_message(&mut self, _from: ProcessId, _msg: &Self::Msg,
//!                   ctx: &mut Context<'_, Self::Msg, Self::Decision>) {
//!         self.seen += 1;
//!         if self.seen == ctx.process_count() {
//!             ctx.decide(self.seen);
//!         }
//!     }
//! }
//!
//! let report = Simulation::build(SimConfig::new(4).seed(7), |_| Ping { seen: 0 }).run();
//! assert!(report.all_decided());
//! ```

pub mod config;
pub mod event;
pub mod harness;
pub mod metrics;
pub mod network;
pub mod prng;
pub mod report;
pub mod runner;
pub mod trace;

// The actor surface (`Actor`, `Context`, `Payload`, staging) and virtual
// time now live in the runtime-agnostic `ftm-runtime` crate, shared with
// the real transport (`ftm-net`). Re-exported here module-for-module so
// every pre-existing `ftm_sim::process::...` / `ftm_sim::time::...` path
// keeps compiling unchanged.
pub use ftm_runtime::process;
pub use ftm_runtime::time;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::config::{NetworkProfile, SimConfig};
    pub use crate::harness::{sweep, RunRecord, SweepReport};
    pub use crate::runner::{RunReport, Simulation};
    pub use ftm_runtime::process::{
        Actor, Context, LayerSplit, Payload, ProcessId, StagedSend, TimerTag,
    };
    pub use ftm_runtime::time::{Duration, VirtualTime};
}

pub use config::{NetworkProfile, SimConfig};
pub use ftm_runtime::process::{
    Actor, Context, LayerSplit, Payload, ProcessId, StagedSend, TimerTag,
};
pub use ftm_runtime::time::{Duration, VirtualTime};
pub use harness::{sweep, RunRecord, SweepReport};
pub use report::Json;
pub use runner::{RunReport, Simulation};
