//! A minimal, byte-stable JSON document model for sweep reports.
//!
//! The harness promises that the same `(base seed, scenario matrix)` pair
//! produces *byte-identical* reports regardless of worker-thread count or
//! host platform. That rules out floating-point serialization quirks and
//! hash-map iteration order, so this module keeps the value model tiny:
//! integers only, objects as ordered key/value vectors, deterministic
//! string escaping. No external serializer, no reflection — a report is
//! built explicitly and rendered with [`Json::render`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value restricted to what deterministic reports need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (all sweep counters are `u64`).
    U64(u64),
    /// String.
    Str(String),
    /// Array, in insertion order.
    Arr(Vec<Json>),
    /// Object, in insertion order (build from a `BTreeMap` for sorted keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from sorted map entries (stable key order).
    pub fn from_map(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::U64(*v)))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n`
    /// separators), byte-stable across platforms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_plainly() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::U64(42).render(), "42\n");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"\n");
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structures_render_with_stable_layout() {
        let doc = Json::Obj(vec![
            ("empty".into(), Json::Arr(vec![])),
            ("xs".into(), Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            doc.render(),
            "{\n  \"empty\": [],\n  \"xs\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn from_map_sorts_keys() {
        let mut m = BTreeMap::new();
        m.insert("zz".to_string(), 1);
        m.insert("aa".to_string(), 2);
        let doc = Json::from_map(&m);
        let rendered = doc.render();
        assert!(rendered.find("aa").unwrap() < rendered.find("zz").unwrap());
    }
}
