//! Error type shared by the cryptographic substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by key generation, signing and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A signature failed verification against the claimed signer's key.
    BadSignature,
    /// The requested signer is not present in the key directory.
    UnknownSigner(u32),
    /// Key generation could not find suitable parameters (e.g. the public
    /// exponent was not coprime with λ(n) after the retry budget).
    KeyGeneration(&'static str),
    /// An operand was out of the range a primitive supports (e.g. a modular
    /// inverse of a non-invertible element was requested).
    Arithmetic(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::UnknownSigner(id) => write!(f, "unknown signer {id}"),
            CryptoError::KeyGeneration(why) => write!(f, "key generation failed: {why}"),
            CryptoError::Arithmetic(why) => write!(f, "arithmetic error: {why}"),
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = CryptoError::BadSignature;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
