//! RSA signatures over SHA-256 digests, from scratch.
//!
//! The paper's signature module assumes each process holds a private key for
//! signing and every process knows every public key (it cites
//! Rivest–Shamir–Adleman). This module provides textbook RSA with the
//! digest embedded via a deterministic full-domain-style pad, which is
//! unforgeable against the simulation's protocol-level adversary.
//!
//! Key widths default to 256 bits (see the crate-level security
//! disclaimer); the `rsa` bench measures sign/verify cost per
//! width so the transformation-overhead experiment (E6) can report it.

use crate::prng::Rng64;

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::prime::random_prime;
use crate::sha256::{Digest, Sha256};

/// The fixed public exponent (2¹⁶ + 1).
pub const PUBLIC_EXPONENT: u64 = 65537;

/// An RSA public (verification) key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA signature: the padded digest raised to the private exponent.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Signature(BigUint);

impl Signature {
    /// Size of the signature in bytes (for the byte-accounting metrics).
    pub fn size_bytes(&self) -> usize {
        self.0.to_bytes_be().len()
    }

    /// Serializes the signature to big-endian bytes (for canonical
    /// encoding of signed messages inside certificates).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Reconstructs a signature from bytes produced by
    /// [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Signature {
        Signature(BigUint::from_bytes_be(bytes))
    }

    /// A structurally valid but cryptographically garbage signature.
    ///
    /// Used by fault injectors that model a process signing with a broken
    /// key: it verifies against nothing (except with negligible probability).
    pub fn forged(filler: u64) -> Signature {
        Signature(BigUint::from(filler).add(&BigUint::from(2u64)))
    }
}

impl PublicKey {
    /// The modulus bit width.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }

    /// Verifies `sig` against `digest`.
    ///
    /// Returns `true` iff `sig^e mod n` equals the canonical padding of
    /// `digest` for this modulus.
    pub fn verify_digest(&self, digest: &Digest, sig: &Signature) -> bool {
        if sig.0 >= self.n {
            return false;
        }
        let recovered = sig.0.modpow(&self.e, &self.n);
        recovered == pad_digest(digest, &self.n)
    }

    /// Verifies `sig` over raw message bytes (hashes first).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        self.verify_digest(&Sha256::digest(message), sig)
    }
}

/// An RSA key pair owned by one simulated process.
///
/// # Example
///
/// ```
/// use ftm_crypto::rsa::KeyPair;
/// let mut rng = ftm_crypto::rng_from_seed(11);
/// let kp = KeyPair::generate(&mut rng, 256);
/// let sig = kp.sign(b"NEXT r=2");
/// assert!(kp.public().verify(b"NEXT r=2", &sig));
/// assert!(!kp.public().verify(b"NEXT r=3", &sig));
/// ```
#[derive(Clone, Debug)]
pub struct KeyPair {
    public: PublicKey,
    d: BigUint,
}

impl KeyPair {
    /// Generates a fresh key pair with a modulus of `modulus_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `modulus_bits < 32` (the padding needs room for the hash
    /// prefix) or if no valid exponent pair is found within the retry
    /// budget (astronomically unlikely).
    pub fn generate<R: Rng64 + ?Sized>(rng: &mut R, modulus_bits: usize) -> KeyPair {
        Self::try_generate(rng, modulus_bits).expect("rsa key generation exhausted retry budget")
    }

    /// Fallible variant of [`KeyPair::generate`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyGeneration`] if no suitable prime pair is
    /// found within the retry budget.
    pub fn try_generate<R: Rng64 + ?Sized>(
        rng: &mut R,
        modulus_bits: usize,
    ) -> Result<KeyPair, CryptoError> {
        assert!(modulus_bits >= 32, "modulus too small for digest padding");
        let e = BigUint::from(PUBLIC_EXPONENT);
        let half = modulus_bits / 2;
        for _ in 0..64 {
            let p = random_prime(rng, modulus_bits - half);
            let q = random_prime(rng, half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != modulus_bits {
                continue;
            }
            let lambda = p.sub(&BigUint::one()).lcm(&q.sub(&BigUint::one()));
            let Some(d) = e.modinv(&lambda) else {
                continue; // gcd(e, λ) ≠ 1; redraw primes
            };
            return Ok(KeyPair {
                public: PublicKey { n, e },
                d,
            });
        }
        Err(CryptoError::KeyGeneration(
            "no suitable prime pair within retry budget",
        ))
    }

    /// Returns the verification half of the pair.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Signs a precomputed digest.
    pub fn sign_digest(&self, digest: &Digest) -> Signature {
        let m = pad_digest(digest, &self.public.n);
        Signature(m.modpow(&self.d, &self.public.n))
    }

    /// Hashes `message` with SHA-256 and signs the digest.
    pub fn sign(&self, message: &[u8]) -> Signature {
        self.sign_digest(&Sha256::digest(message))
    }
}

/// Deterministically expands a digest to a value in `[0, n)`.
///
/// A fixed-point-free variant of full-domain hashing: the digest is fed
/// through SHA-256 with a counter until enough bytes cover the modulus
/// width, then reduced mod `n`. Both signer and verifier recompute it, so
/// any mismatch in the signed bytes changes the padded value.
fn pad_digest(digest: &Digest, n: &BigUint) -> BigUint {
    let needed = n.bits() / 8 + 16;
    let mut stream = Vec::with_capacity(needed + 32);
    let mut counter: u32 = 0;
    while stream.len() < needed {
        let mut h = Sha256::new();
        h.update(b"ftm-fdh");
        h.update(&counter.to_be_bytes());
        h.update(digest.as_bytes());
        stream.extend_from_slice(h.finalize().as_bytes());
        counter += 1;
    }
    BigUint::from_bytes_be(&stream).rem(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(seed: u64) -> KeyPair {
        let mut rng = crate::rng_from_seed(seed);
        KeyPair::generate(&mut rng, 256)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keys(1);
        let sig = kp.sign(b"hello");
        assert!(kp.public().verify(b"hello", &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let kp = keys(2);
        let sig = kp.sign(b"hello");
        assert!(!kp.public().verify(b"hellp", &sig));
        assert!(!kp.public().verify(b"", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let (a, b) = (keys(3), keys(4));
        let sig = a.sign(b"msg");
        assert!(!b.public().verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_forged_signature() {
        let kp = keys(5);
        for filler in 0..32u64 {
            assert!(!kp.public().verify(b"msg", &Signature::forged(filler)));
        }
    }

    #[test]
    fn verify_rejects_signature_outside_modulus() {
        let kp = keys(6);
        let oversized = Signature(BigUint::one().shl(300));
        assert!(!kp.public().verify_digest(&Sha256::digest(b"x"), &oversized));
    }

    #[test]
    fn signatures_are_deterministic() {
        let kp = keys(7);
        assert_eq!(kp.sign(b"same"), kp.sign(b"same"));
    }

    #[test]
    fn modulus_has_requested_width() {
        for bits in [64usize, 128, 256] {
            let mut rng = crate::rng_from_seed(100 + bits as u64);
            let kp = KeyPair::generate(&mut rng, bits);
            assert_eq!(kp.public().modulus_bits(), bits);
            let sig = kp.sign(b"width");
            assert!(kp.public().verify(b"width", &sig));
        }
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(keys(8).public(), keys(9).public());
    }

    #[test]
    fn signature_size_is_bounded_by_modulus() {
        let kp = keys(10);
        let sig = kp.sign(b"size");
        assert!(sig.size_bytes() <= 256 / 8);
    }
}
