//! From-scratch cryptographic substrate for the ft-modular reproduction.
//!
//! The paper (Baldoni–Hélary–Raynal, DSN 2000) assumes every process owns a
//! private/public key pair and signs outgoing messages in an unforgeable way
//! (it cites RSA). This crate provides everything that assumption needs,
//! built from first principles so the repository has no external
//! cryptographic dependency:
//!
//! * [`sha256`] — the SHA-256 compression function and streaming hasher;
//! * [`bigint`] — arbitrary-precision unsigned integers (the minimal set of
//!   operations RSA needs: add/sub/mul/divrem/modpow/modinv);
//! * [`prime`] — Miller–Rabin probabilistic primality testing and random
//!   prime generation;
//! * [`prng`] — in-tree deterministic generators (SplitMix64,
//!   xoshiro256++) and per-scenario seed derivation;
//! * [`rsa`] — RSA key generation, signing and verification over SHA-256
//!   digests;
//! * [`keydir`] — a public-key directory mapping signer identities to
//!   verification keys (the "trusted directory" every process is assumed to
//!   hold);
//! * [`wire`] — a canonical, deterministic encoding trait: signatures are
//!   computed over canonical bytes, so two structurally equal messages always
//!   hash identically.
//!
//! # Security disclaimer
//!
//! Key sizes default to 256-bit moduli so that simulations involving tens of
//! thousands of signatures stay fast. That is **not** cryptographically
//! strong against a real attacker; it is unforgeable *within the simulation*,
//! where the adversary is a protocol-level Byzantine process that does not
//! factor integers. Do not reuse this crate outside the simulator.
//!
//! # Example
//!
//! ```
//! use ftm_crypto::rsa::KeyPair;
//! use ftm_crypto::sha256::Sha256;
//!
//! # fn main() {
//! let mut rng = ftm_crypto::rng_from_seed(42);
//! let keys = KeyPair::generate(&mut rng, 256);
//! let digest = Sha256::digest(b"vote CURRENT r=3");
//! let sig = keys.sign_digest(&digest);
//! assert!(keys.public().verify_digest(&digest, &sig));
//! # }
//! ```

pub mod bigint;
pub mod error;
pub mod keydir;
pub mod prime;
pub mod prng;
pub mod rsa;
pub mod sha256;
pub mod wire;

pub use error::CryptoError;
pub use prng::{derive_seed, Rng64, SplitMix64, Xoshiro256PlusPlus};

/// Creates a deterministic random number generator from a 64-bit seed.
///
/// All randomness in the workspace (key generation, simulated network
/// delays, workloads) flows from explicitly seeded in-tree generators
/// (see [`prng`]) so that every run — including every counterexample found
/// by a sweep — is replayable with zero external dependencies.
///
/// # Example
///
/// ```
/// use ftm_crypto::prng::Rng64;
/// let mut a = ftm_crypto::rng_from_seed(7);
/// let mut b = ftm_crypto::rng_from_seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn rng_from_seed(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::from_seed(seed)
}
