//! Arbitrary-precision unsigned integers.
//!
//! Exactly the operations RSA needs — comparison, addition, subtraction,
//! schoolbook multiplication, Knuth Algorithm D division, modular
//! exponentiation and modular inverse — implemented over little-endian
//! `u64` limbs with `u128` intermediates. Values are kept *normalized*
//! (no trailing zero limbs; zero is the empty limb vector), which makes
//! structural equality coincide with numeric equality.

use std::cmp::Ordering;
use std::fmt;

use crate::prng::Rng64;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use ftm_crypto::bigint::BigUint;
/// let a = BigUint::from(10u64);
/// let b = BigUint::from(4u64);
/// let (q, r) = a.divrem(&b);
/// assert_eq!(q, BigUint::from(2u64));
/// assert_eq!(r, BigUint::from(2u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint { limbs: Vec::new() }
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            let ord = a.cmp(b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint::default()
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint::from(1u64)
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` when the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Returns `true` when the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the width.
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        self.limbs
            .get(limb)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// Builds a value from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to minimal big-endian bytes (zero encodes as empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out
            .iter()
            .position(|&b| b != 0)
            .expect("normalized value has a nonzero byte");
        out.drain(..first_nonzero);
        out
    }

    fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (unsigned underflow is a logic error here).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(
            self >= other,
            "BigUint::sub underflow: {self:?} - {other:?}"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: u64 = 0;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Returns `self * other` (schoolbook multiplication).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Returns `self << bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Returns `self >> bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&n| n << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder: returns `(self / divisor, self % divisor)`.
    ///
    /// Implements Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem: u128 = 0;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            let mut qn = BigUint { limbs: q };
            qn.normalize();
            return (qn, BigUint::from(rem as u64));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m + n + 1 limbs with an extra high limb
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = top / vn[n - 1] as u128;
            let mut rhat = top % vn[n - 1] as u128;
            while qhat >> 64 != 0
                || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - borrow - (p as u64) as i128;
                un[j + i] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - borrow - carry as i128;
            un[j + n] = t as u64;

            if t < 0 {
                // q̂ was one too large: add back.
                qhat -= 1;
                let mut carry: u128 = 0;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// Returns `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }

    /// Modular exponentiation: `self^exp mod m` via square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m == &BigUint::one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.mul(&base).rem(m);
            }
            base = base.mul(&base).rem(m);
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid via divrem).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple. Returns zero if either operand is zero.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        self.divrem(&g).0.mul(other)
    }

    /// Modular inverse: the `x` with `self * x ≡ 1 (mod m)`, if it exists.
    ///
    /// Returns `None` when `gcd(self, m) != 1`. Uses the extended Euclidean
    /// algorithm with sign-tracked Bézout coefficients.
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() {
            return None;
        }
        // Invariants: old_r = old_s·self (mod m), r = s·self (mod m),
        // with s coefficients carried as (magnitude, negative?).
        let mut old_r = self.rem(m);
        let mut r = m.clone();
        let mut old_s = (BigUint::one(), false);
        let mut s = (BigUint::zero(), false);

        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s  (signed arithmetic)
            let qs = (q.mul(&s.0), s.1);
            let new_s = signed_sub(&old_s, &qs);
            old_s = std::mem::replace(&mut s, new_s);
        }

        if old_r != BigUint::one() {
            return None;
        }
        let (mag, neg) = old_s;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniformly random value with exactly `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn random_bits<R: Rng64 + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
        assert!(bits > 0, "cannot draw a 0-bit number");
        let limbs_needed = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.next_u64()).collect();
        let top_bits = bits - (limbs_needed - 1) * 64;
        let top = &mut limbs[limbs_needed - 1];
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng64 + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bits();
        loop {
            let limbs_needed = bits.div_ceil(64);
            let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.next_u64()).collect();
            let top_bits = bits - (limbs_needed - 1) * 64;
            if top_bits < 64 {
                limbs[limbs_needed - 1] &= (1u64 << top_bits) - 1;
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

type Signed = (BigUint, bool);

/// Signed subtraction on (magnitude, negative?) pairs.
fn signed_sub(a: &Signed, b: &Signed) -> Signed {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // (-a) - (-b) = b - a.
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
        // a - (-b) = a + b.
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b).
        (true, false) => (a.0.add(&b.0), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_is_normalized_and_empty() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::from(0u64), BigUint::zero());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        assert_eq!(a.add(&b), big(1u128 << 64));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = big(1u128 << 64);
        assert_eq!(a.sub(&BigUint::one()), BigUint::from(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&big(2));
    }

    #[test]
    fn mul_u128_cross_check() {
        let a = big(0xdeadbeef_12345678);
        let b = big(0xcafebabe_87654321);
        let expected = 0xdeadbeef_12345678u128 * 0xcafebabe_87654321u128;
        assert_eq!(a.mul(&b), BigUint::from(expected));
    }

    #[test]
    fn divrem_simple() {
        let (q, r) = big(1000).divrem(&big(7));
        assert_eq!(q, big(142));
        assert_eq!(r, big(6));
    }

    #[test]
    fn divrem_multi_limb() {
        // (2^192 + 12345) / (2^64 + 3)
        let a = BigUint::one().shl(192).add(&big(12345));
        let d = BigUint::one().shl(64).add(&big(3));
        let (q, r) = a.divrem(&d);
        assert_eq!(q.mul(&d).add(&r), a);
        assert!(r < d);
    }

    #[test]
    fn divrem_knuth_addback_case() {
        // Crafted to exercise the rare "add back" branch: divisor with
        // second limb small, dividend forcing qhat overestimation.
        let u = BigUint {
            limbs: vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff],
        };
        let v = BigUint {
            limbs: vec![1, 0, 0x8000_0000_0000_0000],
        };
        let (q, r) = u.divrem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn shl_shr_roundtrip() {
        let a = big(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210);
        for s in [0usize, 1, 63, 64, 65, 127, 130] {
            assert_eq!(a.shl(s).shr(s), a, "shift {s}");
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let a = big(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 5]), big(5));
    }

    #[test]
    fn modpow_small_cases() {
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        assert_eq!(big(2).modpow(&big(10), &big(1000)), big(24));
        assert_eq!(big(7).modpow(&BigUint::zero(), &big(13)), BigUint::one());
        assert_eq!(big(7).modpow(&big(5), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modpow_fermat() {
        // a^(p-1) ≡ 1 mod p for prime p not dividing a.
        let p = big(1_000_000_007);
        for a in [2u128, 3, 999_999_999] {
            assert_eq!(big(a).modpow(&p.sub(&BigUint::one()), &p), BigUint::one());
        }
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(big(48).gcd(&big(18)), big(6));
        assert_eq!(big(48).lcm(&big(18)), big(144));
        assert_eq!(big(17).gcd(&BigUint::zero()), big(17));
        assert_eq!(BigUint::zero().lcm(&big(5)), BigUint::zero());
    }

    #[test]
    fn modinv_known() {
        assert_eq!(big(3).modinv(&big(11)), Some(big(4)));
        assert_eq!(big(10).modinv(&big(17)), Some(big(12)));
        assert_eq!(big(6).modinv(&big(9)), None); // gcd = 3
        assert_eq!(
            big(65537)
                .modinv(&big(1_000_000_007))
                .map(|x| { x.mul(&big(65537)).rem(&big(1_000_000_007)) }),
            Some(BigUint::one())
        );
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut rng = crate::rng_from_seed(1);
        for bits in [1usize, 7, 63, 64, 65, 128, 257] {
            let n = BigUint::random_bits(&mut rng, bits);
            assert_eq!(n.bits(), bits);
        }
    }

    #[test]
    fn random_below_is_in_range() {
        let mut rng = crate::rng_from_seed(2);
        let bound = big(1000);
        for _ in 0..200 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    /// Deterministic seeded fuzzing replacing the former proptest suite:
    /// the in-tree PRNG generates the cases, so every failure is
    /// replayable from the printed iteration number alone.
    mod fuzz {
        use super::*;
        use crate::prng::{Rng64, SplitMix64};

        fn u128_of(rng: &mut SplitMix64) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }

        #[test]
        fn add_sub_roundtrip() {
            let mut rng = SplitMix64::from_seed(0xB161);
            for i in 0..500 {
                let (a, b) = (u128_of(&mut rng), u128_of(&mut rng));
                let (x, y) = (BigUint::from(a), BigUint::from(b));
                assert_eq!(x.add(&y).sub(&y), x, "case {i}: a={a} b={b}");
            }
        }

        #[test]
        fn mul_matches_u128() {
            let mut rng = SplitMix64::from_seed(0xB162);
            for i in 0..500 {
                let (a, b) = (rng.next_u64(), rng.next_u64());
                let expected = a as u128 * b as u128;
                assert_eq!(
                    BigUint::from(a).mul(&BigUint::from(b)),
                    BigUint::from(expected),
                    "case {i}: a={a} b={b}"
                );
            }
        }

        #[test]
        fn divrem_invariant() {
            let mut rng = SplitMix64::from_seed(0xB163);
            for i in 0..500 {
                let a = u128_of(&mut rng);
                let b = u128_of(&mut rng).max(1);
                let (x, y) = (BigUint::from(a), BigUint::from(b));
                let (q, r) = x.divrem(&y);
                assert_eq!(q.mul(&y).add(&r), x, "case {i}: a={a} b={b}");
                assert!(r < y, "case {i}: a={a} b={b}");
            }
        }

        #[test]
        fn divrem_multi_limb_invariant() {
            let mut rng = SplitMix64::from_seed(0xB164);
            for i in 0..300 {
                let na = 1 + (rng.next_u64() % 5) as usize;
                let nb = 1 + (rng.next_u64() % 3) as usize;
                let mut x = BigUint {
                    limbs: (0..na).map(|_| rng.next_u64()).collect(),
                };
                x.normalize();
                let mut y = BigUint {
                    limbs: (0..nb).map(|_| rng.next_u64()).collect(),
                };
                y.normalize();
                if y.is_zero() {
                    continue;
                }
                let (q, r) = x.divrem(&y);
                assert_eq!(q.mul(&y).add(&r), x, "case {i}");
                assert!(r < y, "case {i}");
            }
        }

        #[test]
        fn bytes_roundtrip() {
            let mut rng = SplitMix64::from_seed(0xB165);
            for i in 0..300 {
                let len = (rng.next_u64() % 40) as usize;
                let mut bytes = vec![0u8; len];
                rng.fill_bytes(&mut bytes);
                let n = BigUint::from_bytes_be(&bytes);
                assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n, "case {i}");
            }
        }

        #[test]
        fn modinv_is_inverse() {
            let mut rng = SplitMix64::from_seed(0xB166);
            for i in 0..300 {
                let a = u128_of(&mut rng).max(1);
                let m = u128_of(&mut rng).max(2);
                let (x, modulus) = (BigUint::from(a), BigUint::from(m));
                if let Some(inv) = x.modinv(&modulus) {
                    assert_eq!(
                        x.mul(&inv).rem(&modulus),
                        BigUint::one().rem(&modulus),
                        "case {i}: a={a} m={m}"
                    );
                    assert!(inv < modulus, "case {i}");
                } else {
                    assert_ne!(x.gcd(&modulus), BigUint::one(), "case {i}: a={a} m={m}");
                }
            }
        }

        #[test]
        fn modpow_matches_naive() {
            let mut rng = SplitMix64::from_seed(0xB167);
            for i in 0..300 {
                let a = (rng.next_u64() % 1000) as u128;
                let e = (rng.next_u64() % 24) as u32;
                let m = (1 + rng.next_u64() % 9999) as u128;
                let expected = {
                    let mut acc: u128 = 1 % m;
                    for _ in 0..e {
                        acc = acc * (a % m) % m;
                    }
                    acc
                };
                let got = BigUint::from(a).modpow(&BigUint::from(e as u64), &BigUint::from(m));
                assert_eq!(got, BigUint::from(expected), "case {i}: a={a} e={e} m={m}");
            }
        }
    }
}
