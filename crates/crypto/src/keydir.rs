//! Public-key directory: the trusted mapping from signer identity to
//! verification key that every process is assumed to hold.
//!
//! The paper's model gives each process a private key and assumes public
//! keys are known to everyone (the classical PKI assumption). In the
//! simulation, one [`KeyDirectory`] is built at setup time and shared
//! (immutably) by all processes, faulty ones included — a faulty process can
//! *misuse* its own key but cannot alter the directory.

use std::sync::Arc;

use crate::prng::Rng64;

use crate::error::CryptoError;
use crate::rsa::{KeyPair, PublicKey, Signature};
use crate::sha256::Digest;

/// Identifier of a signer (the process index in the simulation).
pub type SignerId = u32;

/// An immutable directory of verification keys, indexed by [`SignerId`].
///
/// # Example
///
/// ```
/// use ftm_crypto::keydir::KeyDirectory;
/// let mut rng = ftm_crypto::rng_from_seed(1);
/// let (dir, keys) = KeyDirectory::generate(&mut rng, 4, 128);
/// let sig = keys[2].sign(b"vote");
/// assert!(dir.verify(2, b"vote", &sig).is_ok());
/// assert!(dir.verify(1, b"vote", &sig).is_err()); // wrong claimed signer
/// ```
#[derive(Clone, Debug)]
pub struct KeyDirectory {
    keys: Arc<Vec<PublicKey>>,
}

impl KeyDirectory {
    /// Builds a directory from an explicit list of public keys; the key at
    /// index `i` belongs to signer `i`.
    pub fn new(keys: Vec<PublicKey>) -> Self {
        KeyDirectory {
            keys: Arc::new(keys),
        }
    }

    /// Generates `n` key pairs of `modulus_bits` bits and the matching
    /// directory. Returns `(directory, private_key_pairs)`.
    pub fn generate<R: Rng64 + ?Sized>(
        rng: &mut R,
        n: usize,
        modulus_bits: usize,
    ) -> (KeyDirectory, Vec<KeyPair>) {
        let pairs: Vec<KeyPair> = (0..n)
            .map(|_| KeyPair::generate(rng, modulus_bits))
            .collect();
        let dir = KeyDirectory::new(pairs.iter().map(|kp| kp.public().clone()).collect());
        (dir, pairs)
    }

    /// Number of registered signers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the directory holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Looks up the verification key of `signer`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownSigner`] for an unregistered id.
    pub fn key_of(&self, signer: SignerId) -> Result<&PublicKey, CryptoError> {
        self.keys
            .get(signer as usize)
            .ok_or(CryptoError::UnknownSigner(signer))
    }

    /// Verifies that `sig` is `signer`'s signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownSigner`] for an unregistered id and
    /// [`CryptoError::BadSignature`] when verification fails.
    pub fn verify(
        &self,
        signer: SignerId,
        message: &[u8],
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        if self.key_of(signer)?.verify(message, sig) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Verifies a signature over a precomputed digest.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KeyDirectory::verify`].
    pub fn verify_digest(
        &self,
        signer: SignerId,
        digest: &Digest,
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        if self.key_of(signer)?.verify_digest(digest, sig) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyDirectory, Vec<KeyPair>) {
        let mut rng = crate::rng_from_seed(77);
        KeyDirectory::generate(&mut rng, 3, 128)
    }

    #[test]
    fn verify_accepts_owner() {
        let (dir, keys) = setup();
        for (i, kp) in keys.iter().enumerate() {
            let sig = kp.sign(b"m");
            assert!(dir.verify(i as SignerId, b"m", &sig).is_ok());
        }
    }

    #[test]
    fn verify_rejects_impersonation() {
        let (dir, keys) = setup();
        // Process 0 signs but claims to be process 1.
        let sig = keys[0].sign(b"m");
        assert_eq!(dir.verify(1, b"m", &sig), Err(CryptoError::BadSignature));
    }

    #[test]
    fn unknown_signer_reported() {
        let (dir, keys) = setup();
        let sig = keys[0].sign(b"m");
        assert_eq!(
            dir.verify(9, b"m", &sig),
            Err(CryptoError::UnknownSigner(9))
        );
    }

    #[test]
    fn directory_is_cheap_to_clone() {
        let (dir, _) = setup();
        let clone = dir.clone();
        assert_eq!(clone.len(), dir.len());
        assert!(!dir.is_empty());
    }
}
