//! Public-key directory: the trusted mapping from signer identity to
//! verification key that every process is assumed to hold.
//!
//! The paper's model gives each process a private key and assumes public
//! keys are known to everyone (the classical PKI assumption). In the
//! simulation, one [`KeyDirectory`] is built at setup time and shared
//! (immutably) by all processes, faulty ones included — a faulty process can
//! *misuse* its own key but cannot alter the directory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::prng::Rng64;

use crate::error::CryptoError;
use crate::rsa::{KeyPair, PublicKey, Signature};
use crate::sha256::{Digest, Sha256};

/// Identifier of a signer (the process index in the simulation).
pub type SignerId = u32;

/// Upper bound on memoized verdicts; the map is dropped wholesale when it
/// fills (signature verdicts are cheap to recompute, so a rare full reset
/// beats per-entry eviction bookkeeping).
const VERIFY_CACHE_CAPACITY: usize = 1 << 16;

/// Shared memo of signature verdicts keyed by `(signer, digest, signature)`.
///
/// RSA verification dominates the transformed stack's hot path: the same
/// signed core is re-verified by the signature module, the certificate
/// analyzer, and again inside every certificate that carries it. The
/// verdict for a fixed key/digest/signature triple never changes, so it is
/// memoized — *both* outcomes, since Byzantine runs re-present the same
/// forgery many times too.
#[derive(Debug, Default)]
struct VerifyCache {
    verdicts: Mutex<HashMap<(SignerId, Digest, Signature), bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerifyCache {
    /// Returns the memoized verdict, or computes it via `compute` and
    /// records it.
    fn verdict(
        &self,
        signer: SignerId,
        digest: &Digest,
        sig: &Signature,
        compute: impl FnOnce() -> bool,
    ) -> bool {
        let key = (signer, *digest, sig.clone());
        {
            let verdicts = self.verdicts.lock().expect("verify cache poisoned");
            if let Some(&ok) = verdicts.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ok;
            }
        }
        // Compute outside the lock: modular exponentiation is the
        // expensive part, and concurrent sweep threads must not serialize
        // on it. A racing duplicate computes the same deterministic
        // verdict, so double-insertion is harmless.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ok = compute();
        let mut verdicts = self.verdicts.lock().expect("verify cache poisoned");
        if verdicts.len() >= VERIFY_CACHE_CAPACITY {
            verdicts.clear();
        }
        verdicts.insert(key, ok);
        ok
    }
}

/// An immutable directory of verification keys, indexed by [`SignerId`].
///
/// # Example
///
/// ```
/// use ftm_crypto::keydir::KeyDirectory;
/// let mut rng = ftm_crypto::rng_from_seed(1);
/// let (dir, keys) = KeyDirectory::generate(&mut rng, 4, 128);
/// let sig = keys[2].sign(b"vote");
/// assert!(dir.verify(2, b"vote", &sig).is_ok());
/// assert!(dir.verify(1, b"vote", &sig).is_err()); // wrong claimed signer
/// ```
#[derive(Clone, Debug)]
pub struct KeyDirectory {
    keys: Arc<Vec<PublicKey>>,
    /// Verdict memo, shared by every clone of the directory — all layers
    /// of a process stack (and all stacks of a simulation) hold clones of
    /// the one directory built at setup, so a `(signer, digest, sig)`
    /// triple is verified at most once across the whole run.
    cache: Arc<VerifyCache>,
}

impl KeyDirectory {
    /// Builds a directory from an explicit list of public keys; the key at
    /// index `i` belongs to signer `i`.
    pub fn new(keys: Vec<PublicKey>) -> Self {
        KeyDirectory {
            keys: Arc::new(keys),
            cache: Arc::new(VerifyCache::default()),
        }
    }

    /// Generates `n` key pairs of `modulus_bits` bits and the matching
    /// directory. Returns `(directory, private_key_pairs)`.
    pub fn generate<R: Rng64 + ?Sized>(
        rng: &mut R,
        n: usize,
        modulus_bits: usize,
    ) -> (KeyDirectory, Vec<KeyPair>) {
        let pairs: Vec<KeyPair> = (0..n)
            .map(|_| KeyPair::generate(rng, modulus_bits))
            .collect();
        let dir = KeyDirectory::new(pairs.iter().map(|kp| kp.public().clone()).collect());
        (dir, pairs)
    }

    /// Number of registered signers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when the directory holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Looks up the verification key of `signer`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownSigner`] for an unregistered id.
    pub fn key_of(&self, signer: SignerId) -> Result<&PublicKey, CryptoError> {
        self.keys
            .get(signer as usize)
            .ok_or(CryptoError::UnknownSigner(signer))
    }

    /// Verifies that `sig` is `signer`'s signature over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownSigner`] for an unregistered id and
    /// [`CryptoError::BadSignature`] when verification fails.
    pub fn verify(
        &self,
        signer: SignerId,
        message: &[u8],
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        // Route through the digest form so both entry points share one
        // memo (signing is hash-then-sign, so the verdicts coincide).
        self.verify_digest(signer, &Sha256::digest(message), sig)
    }

    /// Verifies a signature over a precomputed digest.
    ///
    /// Verdicts are memoized per `(signer, digest, signature)` triple, so
    /// re-verifying a signed statement already seen by any clone of this
    /// directory costs a map lookup instead of a modular exponentiation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KeyDirectory::verify`].
    pub fn verify_digest(
        &self,
        signer: SignerId,
        digest: &Digest,
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        let key = self.key_of(signer)?;
        if self
            .cache
            .verdict(signer, digest, sig, || key.verify_digest(digest, sig))
        {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }

    /// Number of verifications answered from the verdict memo.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits.load(Ordering::Relaxed)
    }

    /// Number of verifications that had to run the RSA computation.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyDirectory, Vec<KeyPair>) {
        let mut rng = crate::rng_from_seed(77);
        KeyDirectory::generate(&mut rng, 3, 128)
    }

    #[test]
    fn verify_accepts_owner() {
        let (dir, keys) = setup();
        for (i, kp) in keys.iter().enumerate() {
            let sig = kp.sign(b"m");
            assert!(dir.verify(i as SignerId, b"m", &sig).is_ok());
        }
    }

    #[test]
    fn verify_rejects_impersonation() {
        let (dir, keys) = setup();
        // Process 0 signs but claims to be process 1.
        let sig = keys[0].sign(b"m");
        assert_eq!(dir.verify(1, b"m", &sig), Err(CryptoError::BadSignature));
    }

    #[test]
    fn unknown_signer_reported() {
        let (dir, keys) = setup();
        let sig = keys[0].sign(b"m");
        assert_eq!(
            dir.verify(9, b"m", &sig),
            Err(CryptoError::UnknownSigner(9))
        );
    }

    #[test]
    fn directory_is_cheap_to_clone() {
        let (dir, _) = setup();
        let clone = dir.clone();
        assert_eq!(clone.len(), dir.len());
        assert!(!dir.is_empty());
    }

    #[test]
    fn repeat_verification_hits_the_cache() {
        let (dir, keys) = setup();
        let sig = keys[0].sign(b"vote");
        assert!(dir.verify(0, b"vote", &sig).is_ok());
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (0, 1));
        assert!(dir.verify(0, b"vote", &sig).is_ok());
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (1, 1));
    }

    #[test]
    fn negative_verdicts_are_cached_too() {
        let (dir, keys) = setup();
        // p0 signs but the statement claims p1: a forgery re-presented
        // many times must not cost an RSA computation each time.
        let sig = keys[0].sign(b"m");
        assert_eq!(dir.verify(1, b"m", &sig), Err(CryptoError::BadSignature));
        assert_eq!(dir.verify(1, b"m", &sig), Err(CryptoError::BadSignature));
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (1, 1));
        // The honest verdict for the same triple under the right signer is
        // a distinct cache entry, not a collision.
        assert!(dir.verify(0, b"m", &sig).is_ok());
        assert_eq!(dir.cache_misses(), 2);
    }

    #[test]
    fn clones_share_one_cache() {
        let (dir, keys) = setup();
        let clone = dir.clone();
        let sig = keys[2].sign(b"shared");
        assert!(dir.verify(2, b"shared", &sig).is_ok());
        assert!(clone.verify(2, b"shared", &sig).is_ok());
        // The clone's verification was answered by the original's memo.
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (1, 1));
        assert_eq!(clone.cache_hits(), 1);
    }

    #[test]
    fn unknown_signer_is_not_a_cache_event() {
        let (dir, keys) = setup();
        let sig = keys[0].sign(b"m");
        assert_eq!(
            dir.verify(9, b"m", &sig),
            Err(CryptoError::UnknownSigner(9))
        );
        assert_eq!((dir.cache_hits(), dir.cache_misses()), (0, 0));
    }
}
