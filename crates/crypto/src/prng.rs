//! In-tree deterministic pseudo-random number generation.
//!
//! The workspace is built hermetically (no external crates), so randomness
//! comes from two classic, tiny generators implemented here:
//!
//! * [`SplitMix64`] — Steele–Lea–Flood's 64-bit mixer. One multiplication
//!   chain per output; used for seed derivation and quick test streams.
//! * [`Xoshiro256PlusPlus`] — Blackman–Vigna's xoshiro256++, seeded through
//!   SplitMix64 as its authors recommend. This is the workhorse generator
//!   behind [`crate::rng_from_seed`] and every simulation run.
//!
//! Both are fully deterministic: a stream is a pure function of its 64-bit
//! seed, so every simulated schedule, generated key and fuzz case is
//! replayable bit-for-bit on any platform. [`derive_seed`] gives each
//! scenario of a sweep its own statistically independent stream from a
//! `(base seed, scenario index)` pair, which is what makes parallel sweeps
//! independent of thread interleaving.
//!
//! # Example
//!
//! ```
//! use ftm_crypto::prng::{derive_seed, Rng64, Xoshiro256PlusPlus};
//! let mut a = Xoshiro256PlusPlus::from_seed(7);
//! let mut b = Xoshiro256PlusPlus::from_seed(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
//! ```

/// A deterministic 64-bit random stream.
///
/// The single required method is [`next_u64`](Rng64::next_u64); everything
/// else is derived from it, so any implementor yields identical derived
/// draws for identical raw streams.
pub trait Rng64 {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits (the upper half of a 64-bit draw —
    /// the high bits are the best-mixed ones in both generators here).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from the inclusive range `[lo, hi]` via Lemire's
    /// widening-multiply map (one draw, no rejection loop, deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 2^64 range.
            return self.next_u64();
        }
        lo + (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }

    /// Fills `buf` with pseudo-random bytes (little-endian draw order).
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The SplitMix64 step function: mixes `state + γ` through two
/// xor-multiply rounds. Exposed so seed-derivation code can use a single
/// stateless step.
pub const fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Steele–Lea–Flood SplitMix64.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream seeded by `seed`.
    pub const fn from_seed(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Blackman–Vigna xoshiro256++ (the general-purpose variant).
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates the stream seeded by `seed`, expanding the 64-bit seed into
    /// the 256-bit state through SplitMix64 (the authors' recommendation;
    /// also guarantees a nonzero state).
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = SplitMix64::from_seed(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng64 for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives the seed of stream `index` from a base seed.
///
/// Two SplitMix64 steps over `base ⊕ mix(index)` decorrelate adjacent
/// indices completely — `derive_seed(s, i)` and `derive_seed(s, i + 1)`
/// share no low-dimensional structure, so every scenario of a sweep gets a
/// statistically independent generator while remaining a pure function of
/// `(base seed, index)`.
pub const fn derive_seed(base: u64, index: u64) -> u64 {
    splitmix64(splitmix64(base ^ splitmix64(index)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 0, cross-checked against the
        // published reference implementation.
        let mut rng = SplitMix64::from_seed(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_streams_are_reproducible_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::from_seed(42);
        let mut b = Xoshiro256PlusPlus::from_seed(42);
        let mut c = Xoshiro256PlusPlus::from_seed(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_is_inclusive_and_in_bounds() {
        let mut rng = Xoshiro256PlusPlus::from_seed(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range_u64(3, 10);
            assert!((3..=10).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 10;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never drawn");
        // Degenerate and full ranges.
        assert_eq!(rng.gen_range_u64(9, 9), 9);
        let _ = rng.gen_range_u64(0, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_inverted_bounds() {
        SplitMix64::from_seed(0).gen_range_u64(2, 1);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut a = SplitMix64::from_seed(5);
        let mut buf = [0u8; 11];
        a.fill_bytes(&mut buf);
        let mut b = SplitMix64::from_seed(5);
        let first = b.next_u64().to_le_bytes();
        assert_eq!(&buf[..8], &first);
        assert!(buf.iter().any(|&x| x != 0));
    }

    #[test]
    fn derived_seeds_decorrelate_indices() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "derived seed collision");
        // Different bases give different derivations for the same index.
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn trait_object_and_reference_forwarding_work() {
        let mut base = SplitMix64::from_seed(3);
        let expected = SplitMix64::from_seed(3).next_u64();
        let via_ref: &mut dyn Rng64 = &mut base;
        assert_eq!(via_ref.next_u64(), expected);
    }
}
