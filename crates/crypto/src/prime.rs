//! Miller–Rabin probabilistic primality testing and random prime generation.
//!
//! Used by [`crate::rsa`] to generate the two prime factors of each
//! process's modulus. Witness counts are chosen so the error probability is
//! negligible at simulation scale (`4^-rounds`).

use crate::prng::Rng64;

use crate::bigint::BigUint;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 25] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
];

/// Miller–Rabin rounds used by [`random_prime`]; error ≤ 4⁻²⁴.
pub const DEFAULT_MR_ROUNDS: u32 = 24;

/// Tests `n` for primality with `rounds` Miller–Rabin witnesses.
///
/// Deterministically correct for `n < 100` (via the trial-division table);
/// probabilistic beyond, with error probability at most `4^-rounds`.
///
/// # Example
///
/// ```
/// use ftm_crypto::bigint::BigUint;
/// use ftm_crypto::prime::is_probable_prime;
/// let mut rng = ftm_crypto::rng_from_seed(0);
/// assert!(is_probable_prime(&BigUint::from(1_000_000_007u64), 16, &mut rng));
/// assert!(!is_probable_prime(&BigUint::from(1_000_000_008u64), 16, &mut rng));
/// ```
pub fn is_probable_prime<R: Rng64 + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    if n < &BigUint::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from(p);
        if n == &p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }

    // Write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    let two = BigUint::from(2u64);
    let n_minus_2 = n.sub(&two);
    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2]
        let a = BigUint::random_below(rng, &n_minus_2.sub(&one)).add(&two);
        let mut x = a.modpow(&d, n);
        if x == one || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.mul(&x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The returned value is odd, has its top bit set, and passes
/// [`DEFAULT_MR_ROUNDS`] Miller–Rabin rounds.
///
/// # Panics
///
/// Panics if `bits < 3` (no room for an odd prime with the top bit set
/// other than degenerate cases the RSA layer cannot use).
pub fn random_prime<R: Rng64 + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 3, "prime width must be at least 3 bits");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bits() != bits {
                continue; // overflowed the width (all-ones candidate)
            }
        }
        if is_probable_prime(&candidate, DEFAULT_MR_ROUNDS, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn small_primes_recognized() {
        let mut rng = crate::rng_from_seed(3);
        for p in [2u64, 3, 5, 7, 11, 13, 97, 101, 7919] {
            assert!(is_probable_prime(&big(p), 16, &mut rng), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = crate::rng_from_seed(4);
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 91, 7917, 1_000_000_008] {
            assert!(!is_probable_prime(&big(c), 16, &mut rng), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes to many bases; Miller-Rabin must catch them.
        let mut rng = crate::rng_from_seed(5);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&big(c), 24, &mut rng), "{c}");
        }
    }

    #[test]
    fn known_large_prime() {
        let mut rng = crate::rng_from_seed(6);
        // 2^89 - 1 is a Mersenne prime.
        let p = BigUint::one().shl(89).sub(&BigUint::one());
        assert!(is_probable_prime(&p, 24, &mut rng));
        // 2^67 - 1 = 193707721 × 761838257287 is famously composite.
        let c = BigUint::one().shl(67).sub(&BigUint::one());
        assert!(!is_probable_prime(&c, 24, &mut rng));
    }

    #[test]
    fn random_prime_has_requested_width_and_is_odd() {
        let mut rng = crate::rng_from_seed(7);
        for bits in [16usize, 32, 64, 96, 128] {
            let p = random_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits);
            assert!(p.is_odd());
        }
    }

    #[test]
    fn random_primes_are_distinct() {
        let mut rng = crate::rng_from_seed(8);
        let a = random_prime(&mut rng, 64);
        let b = random_prime(&mut rng, 64);
        assert_ne!(a, b);
    }
}
