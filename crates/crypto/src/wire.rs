//! Canonical (deterministic) wire encoding.
//!
//! Signatures must be computed over *bytes*, and two structurally equal
//! messages must always produce identical bytes — otherwise a correct
//! receiver could reject a correct sender. This module defines the
//! [`CanonicalEncode`] trait and a length-prefixed, tagged writer that makes
//! encodings unambiguous (no concatenation collisions: every variable-length
//! field is preceded by its length, every enum by its tag).

use crate::sha256::{Digest, Sha256};

/// Types with a canonical byte encoding suitable for hashing and signing.
///
/// Implementations must be *injective up to semantic equality*: values that
/// compare equal encode identically, and distinct values encode distinctly.
/// The provided [`canonical_bytes`](CanonicalEncode::canonical_bytes) and
/// [`canonical_digest`](CanonicalEncode::canonical_digest) helpers derive
/// from [`encode`](CanonicalEncode::encode).
///
/// # Example
///
/// ```
/// use ftm_crypto::wire::{CanonicalEncode, Encoder};
///
/// struct Vote { round: u64, next: bool }
/// impl CanonicalEncode for Vote {
///     fn encode(&self, enc: &mut Encoder) {
///         enc.u64(self.round);
///         enc.bool(self.next);
///     }
/// }
/// let v = Vote { round: 3, next: true };
/// assert_eq!(v.canonical_bytes(), Vote { round: 3, next: true }.canonical_bytes());
/// ```
pub trait CanonicalEncode {
    /// Writes the canonical encoding of `self` into `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Returns the canonical encoding as a fresh byte vector.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Returns the SHA-256 digest of the canonical encoding.
    fn canonical_digest(&self) -> Digest {
        Sha256::digest(&self.canonical_bytes())
    }
}

/// An append-only canonical byte writer.
///
/// All multi-byte integers are big-endian; byte strings and sequences are
/// length-prefixed with a `u32`, so encodings never collide across field
/// boundaries.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Returns `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Writes a single byte tag (use for enum discriminants).
    pub fn tag(&mut self, t: u8) {
        self.out.push(t);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.out.push(v as u8);
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `u32::MAX` bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.u32(u32::try_from(bytes.len()).expect("field longer than u32::MAX"));
        self.out.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed sequence of encodable items.
    ///
    /// # Panics
    ///
    /// Panics if the sequence exceeds `u32::MAX` items.
    pub fn seq<T: CanonicalEncode>(&mut self, items: &[T]) {
        self.u32(u32::try_from(items.len()).expect("sequence longer than u32::MAX"));
        for item in items {
            item.encode(self);
        }
    }

    /// Writes an `Option` as a presence tag followed by the value.
    pub fn option<T: CanonicalEncode>(&mut self, value: &Option<T>) {
        match value {
            None => self.tag(0),
            Some(v) => {
                self.tag(1);
                v.encode(self);
            }
        }
    }

    /// Writes a nested encodable value (no framing; use when the field is
    /// fixed-position).
    pub fn nested<T: CanonicalEncode>(&mut self, value: &T) {
        value.encode(self);
    }
}

impl CanonicalEncode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
}

impl CanonicalEncode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(*self);
    }
}

impl CanonicalEncode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.bytes(self);
    }
}

impl<T: CanonicalEncode> CanonicalEncode for &T {
    fn encode(&self, enc: &mut Encoder) {
        (*self).encode(enc);
    }
}

impl CanonicalEncode for Digest {
    fn encode(&self, enc: &mut Encoder) {
        enc.bytes(self.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_big_endian() {
        let mut e = Encoder::new();
        e.u32(0x01020304);
        e.u64(0x05060708090a0b0c);
        assert_eq!(
            e.into_bytes(),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc]
        );
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut e = Encoder::new();
        e.bytes(b"ab");
        assert_eq!(e.into_bytes(), vec![0, 0, 0, 2, b'a', b'b']);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        // ("a", "bc") must encode differently from ("ab", "c").
        let mut e1 = Encoder::new();
        e1.bytes(b"a");
        e1.bytes(b"bc");
        let mut e2 = Encoder::new();
        e2.bytes(b"ab");
        e2.bytes(b"c");
        assert_ne!(e1.into_bytes(), e2.into_bytes());
    }

    #[test]
    fn option_encodes_presence() {
        let mut some = Encoder::new();
        some.option(&Some(7u64));
        let mut none = Encoder::new();
        none.option::<u64>(&None);
        assert_eq!(some.len(), 9);
        assert_eq!(none.into_bytes(), vec![0]);
    }

    #[test]
    fn seq_is_length_prefixed() {
        let mut e = Encoder::new();
        e.seq(&[1u64, 2]);
        let bytes = e.into_bytes();
        assert_eq!(&bytes[..4], &[0, 0, 0, 2]);
        assert_eq!(bytes.len(), 4 + 16);
    }

    #[test]
    fn digest_of_equal_values_is_equal() {
        assert_eq!(42u64.canonical_digest(), 42u64.canonical_digest());
        assert_ne!(42u64.canonical_digest(), 43u64.canonical_digest());
    }
}

/// Errors produced when decoding canonical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A length prefix exceeded the remaining buffer (or a sanity cap).
    BadLength(u32),
    /// Trailing bytes remained after a complete top-level value.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::BadLength(l) => write!(f, "length prefix {l} exceeds input"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Types that can be reconstructed from their canonical encoding.
///
/// The decode/encode pair must round-trip:
/// `T::decode(&mut Decoder::new(&t.canonical_bytes())) == Ok(t)`.
pub trait CanonicalDecode: Sized {
    /// Reads one value from the decoder.
    ///
    /// # Errors
    ///
    /// Any structural mismatch with the canonical format.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Decodes a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`CanonicalDecode::decode`], plus [`DecodeError::TrailingBytes`].
    fn from_canonical_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let value = Self::decode(&mut dec)?;
        if dec.remaining() != 0 {
            return Err(DecodeError::TrailingBytes(dec.remaining()));
        }
        Ok(value)
    }
}

/// A cursor over canonical bytes, mirroring [`Encoder`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one tag byte.
    pub fn tag(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.tag()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()?;
        if len as usize > self.remaining() {
            return Err(DecodeError::BadLength(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    /// Reads a length-prefixed sequence of decodable items.
    pub fn seq<T: CanonicalDecode>(&mut self) -> Result<Vec<T>, DecodeError> {
        let len = self.u32()?;
        // Each item occupies at least one byte; a longer claim is corrupt.
        if len as usize > self.remaining() {
            return Err(DecodeError::BadLength(len));
        }
        (0..len).map(|_| T::decode(self)).collect()
    }

    /// Reads an `Option` (presence tag then value).
    pub fn option<T: CanonicalDecode>(&mut self) -> Result<Option<T>, DecodeError> {
        if self.bool()? {
            Ok(Some(T::decode(self)?))
        } else {
            Ok(None)
        }
    }
}

impl CanonicalDecode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u64()
    }
}

impl CanonicalDecode for u32 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.u32()
    }
}

impl CanonicalDecode for Vec<u8> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.bytes()
    }
}

impl CanonicalDecode for Digest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let bytes = dec.bytes()?;
        let arr: [u8; 32] = bytes.try_into().map_err(|_| DecodeError::BadLength(32))?;
        Ok(Digest(arr))
    }
}

#[cfg(test)]
mod decode_tests {
    use super::*;

    #[test]
    fn integers_roundtrip() {
        let mut e = Encoder::new();
        e.u32(7);
        e.u64(9);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u32(), Ok(7));
        assert_eq!(d.u64(), Ok(9));
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn bytes_and_seq_roundtrip() {
        let mut e = Encoder::new();
        e.bytes(b"hi");
        e.seq(&[1u64, 2, 3]);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.bytes(), Ok(b"hi".to_vec()));
        assert_eq!(d.seq::<u64>(), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn option_roundtrip_and_bad_tag() {
        let mut e = Encoder::new();
        e.option(&Some(5u64));
        e.option::<u64>(&None);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.option::<u64>(), Ok(Some(5)));
        assert_eq!(d.option::<u64>(), Ok(None));
        let mut d = Decoder::new(&[7u8]);
        assert_eq!(d.bool(), Err(DecodeError::BadTag(7)));
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.bytes(b"hello");
        let mut buf = e.into_bytes();
        buf.truncate(6);
        let mut d = Decoder::new(&buf);
        assert!(matches!(d.bytes(), Err(DecodeError::BadLength(5))));
        assert!(matches!(
            Decoder::new(&[]).u64(),
            Err(DecodeError::UnexpectedEnd)
        ));
    }

    #[test]
    fn from_canonical_bytes_rejects_trailing() {
        let mut e = Encoder::new();
        e.u64(1);
        let mut buf = e.into_bytes();
        buf.push(0);
        assert_eq!(
            u64::from_canonical_bytes(&buf),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn digest_roundtrip() {
        let d = Sha256::digest(b"x");
        let bytes = d.canonical_bytes();
        assert_eq!(Digest::from_canonical_bytes(&bytes), Ok(d));
    }
}
