//! Quorum-threshold algebra: every cardinality bound of the
//! transformation in one audited, dependency-free module.
//!
//! The paper's resilience claim is `F ≤ min(⌊(n−1)/2⌋, C)` — agreement
//! survives up to `⌊(n−1)/2⌋` arbitrary failures *because* certification
//! removes equivocation, so two `n − F` quorums only need to intersect in
//! **one** process, not one *correct* process. Before this module existed
//! that arithmetic was hand-rolled in six crates (`rbcast`, `certify`,
//! `detect`, `faults`, `core`, `bench`); the `ftm-lint` D5 rule now rejects
//! ad-hoc `n - f` / `2*f + 1` expressions outside this file, and
//! `ftm-verify`'s `quorum` section re-proves the intersection algebra
//! exhaustively for every `(n, F)` up to `n = 64`.
//!
//! The canonical import path is `ftm_core::quorum`, which re-exports
//! this crate: the workspace layering puts `ftm-core` *above* `rbcast`
//! and `certify`, so the implementation lives here, below them all.
//!
//! # The algebra, in one place
//!
//! Two subsets of size `q` drawn from `n` processes overlap in at least
//! `2q − n` members (tight: take `{0..q}` and `{n−q..n}`). With
//! `q = quorum_size(n, F) = n − F` that floor is `n − 2F`, giving the two
//! regimes the reproduction sweeps across:
//!
//! ```
//! use ftm_quorum::*;
//! for n in 1usize..=64 {
//!     for f in 0..=max_faults(n) {
//!         let q = quorum_size(n, f);
//!         // Tight pairwise-overlap floor of two q-quorums.
//!         assert_eq!(intersection_margin(n, f), 2 * q - n);
//!         // Within the paper's bound two quorums always intersect…
//!         assert!(intersection_margin(n, f) >= 1);
//!         // …and they intersect in a *correct* process exactly in the
//!         // classic signature-free zone F ≤ ⌊(n−1)/3⌋.
//!         assert_eq!(
//!             intersection_margin(n, f) >= f + 1,
//!             f <= default_cert_capacity(n)
//!         );
//!     }
//!     // One past the bound, disjoint quorums exist: safety is forfeit.
//!     let f = max_faults(n) + 1;
//!     assert!(2 * quorum_size(n, f) <= n || n < 2);
//! }
//! ```

/// The round/certification quorum `n − F`: the number of distinct signed
/// votes (INIT, CURRENT/NEXT, ESTIMATE, ACK/NACK, decide votes behind a
/// CHECKPOINT) every cardinality test in the transformed protocol waits
/// for (paper Fig. 3 line 6 and §5).
///
/// ```
/// assert_eq!(ftm_quorum::quorum_size(7, 3), 4);
/// assert_eq!(ftm_quorum::quorum_size(4, 0), 4);
/// ```
#[must_use]
pub const fn quorum_size(n: usize, f: usize) -> usize {
    n - f
}

/// The certification quorum — the `n − F` signed decide-votes that back a
/// DECIDE or CHECKPOINT certificate (paper §5). Numerically identical to
/// [`quorum_size`]; named separately so call sites say which rule of the
/// paper they implement.
///
/// ```
/// assert_eq!(ftm_quorum::certification_quorum(31, 10), 21);
/// ```
#[must_use]
pub const fn certification_quorum(n: usize, f: usize) -> usize {
    quorum_size(n, f)
}

/// Tight lower bound on the overlap of any two [`quorum_size`] quorums:
/// `n − 2F`, saturating at zero once quorums can be disjoint.
///
/// This is also the paper's ψ before its floor of one — see
/// [`vector_validity_floor`].
///
/// ```
/// assert_eq!(ftm_quorum::intersection_margin(7, 3), 1);
/// assert_eq!(ftm_quorum::intersection_margin(7, 4), 0); // disjoint: unsafe
/// ```
#[must_use]
pub const fn intersection_margin(n: usize, f: usize) -> usize {
    n.saturating_sub(2 * f)
}

/// The Vector Validity floor `ψ = max(n − 2F, 1)`: how many entries of a
/// decided vector are guaranteed to carry initial values of *correct*
/// processes (paper §4).
///
/// ```
/// assert_eq!(ftm_quorum::vector_validity_floor(4, 1), 2);
/// assert_eq!(ftm_quorum::vector_validity_floor(3, 1), 1);
/// ```
#[must_use]
pub const fn vector_validity_floor(n: usize, f: usize) -> usize {
    let m = intersection_margin(n, f);
    if m == 0 {
        1
    } else {
        m
    }
}

/// The paper's structural resilience ceiling `⌊(n−1)/2⌋` (the other term
/// of `F ≤ min(⌊(n−1)/2⌋, C)` is the certification capacity, see
/// [`resilience_bound`]).
///
/// ```
/// assert_eq!(ftm_quorum::max_faults(7), 3);
/// assert_eq!(ftm_quorum::max_faults(8), 3);
/// ```
#[must_use]
pub const fn max_faults(n: usize) -> usize {
    n.saturating_sub(1) / 2
}

/// The capacity `C` of the usual certification mechanisms, `⌊(n−1)/3⌋`
/// (paper footnote 2) — also exactly the zone where two quorums intersect
/// in a correct process *without* certification (see the crate docs).
///
/// ```
/// assert_eq!(ftm_quorum::default_cert_capacity(10), 3);
/// ```
#[must_use]
pub const fn default_cert_capacity(n: usize) -> usize {
    n.saturating_sub(1) / 3
}

/// The full resilience bound `min(⌊(n−1)/2⌋, C)` for a certification
/// service of capacity `c`.
///
/// ```
/// // Capacity-limited below the structural ceiling:
/// assert_eq!(ftm_quorum::resilience_bound(31, 10), 10);
/// assert_eq!(ftm_quorum::resilience_bound(31, 40), 15);
/// ```
#[must_use]
pub const fn resilience_bound(n: usize, c: usize) -> usize {
    let s = max_faults(n);
    if c < s {
        c
    } else {
        s
    }
}

/// Bracha double-echo broadcast: the echo quorum `⌈(n+F+1)/2⌉` (a
/// majority of correct processes plus the Byzantine budget).
///
/// ```
/// assert_eq!(ftm_quorum::bracha_echo_quorum(4, 1), 3);
/// assert_eq!(ftm_quorum::bracha_echo_quorum(7, 2), 5);
/// ```
#[must_use]
pub const fn bracha_echo_quorum(n: usize, f: usize) -> usize {
    (n + f + 2) / 2
}

/// Bracha double-echo broadcast: the delivery (READY) quorum `2F + 1`.
///
/// ```
/// assert_eq!(ftm_quorum::bracha_ready_quorum(1), 3);
/// assert_eq!(ftm_quorum::bracha_ready_quorum(2), 5);
/// ```
#[must_use]
pub const fn bracha_ready_quorum(f: usize) -> usize {
    2 * f + 1
}

/// Minimum system size for signature-free Bracha broadcast, `3F + 1`:
/// below it two echo quorums of different values can be disjoint.
///
/// ```
/// assert_eq!(ftm_quorum::bracha_min_n(1), 4);
/// assert!(ftm_quorum::bracha_min_n(2) > 3 * 2);
/// ```
#[must_use]
pub const fn bracha_min_n(f: usize) -> usize {
    3 * f + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_and_certification_quorum_agree() {
        for n in 1..=64 {
            for f in 0..=max_faults(n) {
                assert_eq!(quorum_size(n, f), certification_quorum(n, f));
                assert!(quorum_size(n, f) >= 1);
            }
        }
    }

    #[test]
    fn margin_is_two_quorums_minus_n() {
        for n in 1..=64 {
            for f in 0..n {
                let q = quorum_size(n, f);
                let expect = (2 * q).saturating_sub(n);
                assert_eq!(intersection_margin(n, f), expect, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn paper_bound_is_exactly_nonempty_intersection() {
        for n in 2..=64 {
            for f in 0..n {
                assert_eq!(
                    intersection_margin(n, f) >= 1,
                    f <= max_faults(n),
                    "n={n} f={f}"
                );
            }
        }
    }

    #[test]
    fn one_third_bound_is_exactly_honest_intersection() {
        for n in 1..=64 {
            for f in 0..n {
                assert_eq!(
                    intersection_margin(n, f) > f,
                    f <= default_cert_capacity(n),
                    "n={n} f={f}"
                );
            }
        }
    }

    #[test]
    fn validity_floor_never_below_one() {
        for n in 1..=64 {
            for f in 0..n {
                assert!(vector_validity_floor(n, f) >= 1);
                if f <= max_faults(n) {
                    assert_eq!(vector_validity_floor(n, f), n - 2 * f);
                }
            }
        }
    }

    #[test]
    fn bracha_thresholds_match_the_classic_values() {
        assert_eq!(bracha_echo_quorum(4, 1), 3);
        assert_eq!(bracha_ready_quorum(1), 3);
        assert_eq!(bracha_echo_quorum(7, 2), 5);
        assert_eq!(bracha_ready_quorum(2), 5);
        for f in 0..20 {
            let n = bracha_min_n(f);
            // At the minimum size, echo quorums of two different values
            // must overlap in a correct process: 2·quorum − n > F.
            assert!(2 * bracha_echo_quorum(n, f) - n > f);
        }
    }

    #[test]
    fn resilience_bound_takes_the_minimum() {
        assert_eq!(resilience_bound(7, 1), 1);
        assert_eq!(resilience_bound(7, 99), 3);
        assert_eq!(resilience_bound(1, 0), 0);
    }
}
