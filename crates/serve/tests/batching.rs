//! Batching equivalence: the same workload against real `ftm-serve`
//! processes commits the same command multiset whether commands ride one
//! per slot (`--batch 1`) or packed (`--batch 16`), under both protocols.
//!
//! The observable is each replica's `committed_digest` from its `Status`
//! reply: SHA-256 over the sorted committed multiset, independent of
//! batch size and of which slots the commands rode in. The conservation
//! law `submitted == queued + inflight + committed` is asserted on every
//! poll along the way.

use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_net::ClientConn;
use ftm_serve::api::{Reply, Request, Status};

const N: usize = 4;
const SEED: u64 = 0xBA7C4;
const SLOTS: u64 = 48;
const COMMANDS_PER_REPLICA: u64 = 6;

/// Child processes plus their addresses; the `Drop` guard kills whatever
/// a failing test leaves behind.
struct Cluster {
    children: Vec<Child>,
    addrs: Vec<String>,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reserves `n` distinct loopback ports by binding ephemeral listeners,
/// then releases them for the child processes (the reuse window between
/// drop and the child's bind is tiny and acceptable for tests).
fn free_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect()
}

fn spawn_cluster(protocol: &str, batch: u64, cluster_id: u64) -> Cluster {
    let addrs = free_addrs(N);
    let peers = addrs.join(",");
    let children = (0..N)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_ftm-serve"))
                .args([
                    "--id",
                    &i.to_string(),
                    "--peers",
                    &peers,
                    "--protocol",
                    protocol,
                    "--f",
                    "1",
                    "--slots",
                    &SLOTS.to_string(),
                    "--seed",
                    &SEED.to_string(),
                    "--cluster",
                    &cluster_id.to_string(),
                    "--timeout-ms",
                    "120000",
                    "--batch",
                    &batch.to_string(),
                ])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn ftm-serve")
        })
        .collect();
    Cluster { children, addrs }
}

fn connect_with_retry(addr: &str, cluster: u64) -> ClientConn {
    for _ in 0..3000 {
        if let Ok(conn) = ClientConn::connect(addr, cluster) {
            return conn;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("could not connect to {addr}");
}

fn status(conn: &mut ClientConn) -> Status {
    let frame = conn
        .request(&Request::Status.canonical_bytes())
        .expect("status request");
    match Reply::from_canonical_bytes(&frame) {
        Ok(Reply::Status(s)) => s,
        other => panic!("unexpected status reply: {other:?}"),
    }
}

/// Runs one 4-replica cluster, submits the fixed workload, waits until
/// every replica committed all of its commands and returns the
/// per-replica committed digests.
fn committed_digests(protocol: &str, batch: u64, cluster_id: u64) -> Vec<Vec<u8>> {
    let cluster = spawn_cluster(protocol, batch, cluster_id);
    let mut conns: Vec<ClientConn> = cluster
        .addrs
        .iter()
        .map(|a| connect_with_retry(a, cluster_id))
        .collect();

    // The workload is identical across batch settings: replica `i`
    // receives commands 0xB000 + i*100 + k, in submission order.
    for (i, conn) in conns.iter_mut().enumerate() {
        for k in 0..COMMANDS_PER_REPLICA {
            let value = 0xB000 + (i as u64) * 100 + k;
            let frame = conn
                .request(&Request::Submit { value }.canonical_bytes())
                .expect("submit");
            assert!(
                matches!(
                    Reply::from_canonical_bytes(&frame),
                    Ok(Reply::Submitted { .. })
                ),
                "replica {i} rejected a submit"
            );
        }
    }

    // Wait for every replica to drain: everything submitted committed,
    // nothing queued or in flight, conservation intact on every poll.
    let mut digests = vec![Vec::new(); N];
    for (i, conn) in conns.iter_mut().enumerate() {
        let mut done = false;
        for _ in 0..6000 {
            let s = status(conn);
            assert_eq!(
                s.submitted,
                s.queued + s.inflight + s.committed,
                "conservation violated on replica {i}"
            );
            assert!(!s.contradicted, "replica {i} contradicted itself");
            if s.submitted == COMMANDS_PER_REPLICA && s.committed == COMMANDS_PER_REPLICA {
                digests[i] = s.committed_digest.clone();
                done = true;
                break;
            }
            thread::sleep(Duration::from_millis(20));
        }
        assert!(
            done,
            "replica {i} never committed its {COMMANDS_PER_REPLICA} commands"
        );
    }

    // Polite teardown; the Drop guard reaps whatever survives.
    for conn in &mut conns {
        let _ = conn.request(&Request::Shutdown.canonical_bytes());
    }
    digests
}

#[test]
fn batch_1_and_batch_16_commit_the_same_multiset_under_hr() {
    let small = committed_digests("hr", 1, 0xB1);
    let large = committed_digests("hr", 16, 0xB2);
    assert!(small.iter().all(|d| !d.is_empty()), "empty digest");
    assert_eq!(small, large, "HR: --batch 1 and --batch 16 diverged");
}

#[test]
fn batch_1_and_batch_16_commit_the_same_multiset_under_ct() {
    let small = committed_digests("ct", 1, 0xC1);
    let large = committed_digests("ct", 16, 0xC2);
    assert!(small.iter().all(|d| !d.is_empty()), "empty digest");
    assert_eq!(small, large, "CT: --batch 1 and --batch 16 diverged");
}
