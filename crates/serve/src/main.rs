//! `ftm-serve`: one replica of the transformed Byzantine replicated log
//! on real TCP.
//!
//! ```text
//! ftm-serve --id 0 --peers 127.0.0.1:7100,127.0.0.1:7101,... \
//!           [--protocol hr|ct] [--f 1] [--slots 1000] [--seed 0xD00D] \
//!           [--cluster 0] [--timeout-ms 120000] [--batch 1] \
//!           [--barrier 1] [--delay-ms 0]
//! ```
//!
//! The replica is the *same actor* the simulator sweeps: a
//! [`ReplicatedLog`] over the Hurfin–Raynal (`hr`) or Chandra–Toueg
//! (`ct`) transformed consensus, full certify/detect stack included. Key
//! material is derived deterministically from `--seed`, so all replicas
//! started with the same seed share a key directory without any exchange.
//!
//! Commands come from client `Submit` requests (see `ftm-load`); an
//! opening slot drains up to `--batch` queued commands into one proposal
//! (see [`ftm_serve::batch`]), falling back to a deterministic filler
//! when the queue is empty. The process exits after deciding `--slots`
//! slots *and* receiving a client `Shutdown` (or when `--timeout-ms`
//! trips), printing a byte-stable JSON summary on stdout.
//!
//! `--barrier 0` skips the start barrier: a replica restarted into a
//! live cluster cannot expect a fresh mesh handshake from peers that are
//! already running, so it starts its actor immediately and relies on the
//! checkpoint catch-up protocol (always enabled here) to reach the
//! cluster's current slot.

use std::env;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use ftm_core::byzantine::log::ReplicatedLog;
use ftm_core::byzantine::{ByzantineChandraToueg, ByzantineConsensus, TransformedProtocol};
use ftm_core::config::ProtocolConfig;
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_net::{parse_convictions, run_node, NetReport, NodeConfig, ServiceReply};
use ftm_runtime::ProcessId;
use ftm_serve::api::{Reply, Request, Status};
use ftm_serve::args::Args;
use ftm_serve::batch::BatchState;
use ftm_serve::log_digest;
use ftm_sim::Json;

const FLAGS: [&str; 11] = [
    "id",
    "peers",
    "protocol",
    "f",
    "slots",
    "seed",
    "cluster",
    "timeout-ms",
    "batch",
    "barrier",
    "delay-ms",
];

/// Checkpoints shipped per catch-up reply (see
/// [`ReplicatedLog::with_catchup`]); recovery proceeds in strides of this
/// many slots per round-trip.
const CATCHUP_WINDOW: u64 = 16;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ftm-serve: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = Args::parse(env::args().skip(1), &FLAGS)?;
    let peers = args.list("peers")?;
    let id = args.u64_or("id", u64::MAX)?;
    if id as usize >= peers.len() {
        return Err(format!(
            "--id must index into --peers (got {id} with {} peers)",
            peers.len()
        ));
    }
    let f = args.u64_or("f", 1)? as usize;
    let slots = args.u64_or("slots", 1000)?;
    let seed = args.u64_or("seed", 0xD00D)?;
    let cluster = args.u64_or("cluster", 0)?;
    let timeout_ms = args.u64_or("timeout-ms", 120_000)?;
    let batch = args.u64_or("batch", 1)?.max(1);
    let me = ProcessId(u32::try_from(id).map_err(|_| "--id out of range".to_string())?);
    let mut cfg = NodeConfig::new(me, peers, cluster, seed);
    cfg.run_timeout_ms = timeout_ms;
    cfg.start_barrier = args.u64_or("barrier", 1)? != 0;
    // Artificial per-hop latency (the transport's `tc netem` knob): with
    // a few ms per hop the slot cadence is delay-dominated instead of
    // machine-dominated, which lets chaos scripts time a kill/restart
    // window in wall-clock seconds and have it land mid-run everywhere.
    cfg.delivery_delay_ms = args.u64_or("delay-ms", 0)?;
    match args.get("protocol").unwrap_or("hr") {
        "hr" => serve::<ByzantineConsensus>(&cfg, f, slots, seed, batch),
        "ct" => serve::<ByzantineChandraToueg>(&cfg, f, slots, seed, batch),
        other => Err(format!("--protocol must be hr or ct, got `{other}`")),
    }
}

fn serve<P>(
    cfg: &NodeConfig,
    f: usize,
    slots: u64,
    seed: u64,
    batch: u64,
) -> Result<ExitCode, String>
where
    P: TransformedProtocol + Send + 'static,
{
    let setup = ProtocolConfig::new(cfg.n, f).seed(seed).setup();
    let me = cfg.me;
    // The batching ledger, shared by the command source (drains up to
    // `batch` commands per opening slot), the slot hook (settles sealed
    // slots) and the client service (submits and status snapshots). All
    // three run on the node loop thread; the mutex is never contended.
    let ledger: Arc<Mutex<BatchState>> = Arc::new(Mutex::new(BatchState::new(batch)));
    let source = Arc::clone(&ledger);
    let settle = Arc::clone(&ledger);
    let actor = ReplicatedLog::<P>::new(&setup, me, slots, move |slot, p| {
        source
            .lock()
            .ok()
            .and_then(|mut q| q.propose(slot))
            .unwrap_or(1_000_000 * (slot + 1) + u64::from(p))
    })
    .with_slot_hook(move |slot, vector| {
        if let Ok(mut q) = settle.lock() {
            q.on_sealed(slot, vector.get(me.index()));
        }
    })
    .with_catchup(CATCHUP_WINDOW);
    // Bind with retry (ftm_net::rebind): a replica restarted into a live
    // cluster races the kernel's release of its previous incarnation's
    // address, so a single bind attempt would fail spuriously.
    let listener = ftm_net::rebind(&cfg.peers[me.index()])
        .map_err(|e| format!("bind {}: {e}", cfg.peers[me.index()]))?;
    eprintln!(
        "ftm-serve: replica {me} of {} listening on {}, {slots} slots",
        cfg.n,
        cfg.peers[me.index()]
    );

    let report =
        run_node(
            cfg,
            listener,
            actor,
            |actor, view, frame| match Request::from_canonical_bytes(frame) {
                Ok(Request::Submit { value }) => {
                    let queued = ledger.lock().map_or(0, |mut q| q.submit(value));
                    ServiceReply::reply(Reply::Submitted { queued }.canonical_bytes())
                }
                Ok(Request::Status) => {
                    let status = Status {
                        me: me.0,
                        now_ms: view.now.ticks(),
                        decided_slots: actor.decided_slots() as u64,
                        halted: view.halted,
                        contradicted: view.contradicted,
                        log_digest: log_digest(actor.decided_log()),
                        convicted: parse_convictions(view.notes)
                            .into_iter()
                            .map(|(who, class)| format!("{who} {class}"))
                            .collect(),
                        queued: ledger.lock().map_or(0, |q| q.queued()),
                        msgs_sent: view.msgs_sent,
                        msgs_received: view.msgs_received,
                        bytes_sent: view.bytes_sent,
                        bytes_received: view.bytes_received,
                        batch,
                        submitted: ledger.lock().map_or(0, |q| q.submitted()),
                        committed: ledger.lock().map_or(0, |q| q.committed()),
                        inflight: ledger.lock().map_or(0, |q| q.inflight()),
                        committed_digest: ledger
                            .lock()
                            .map_or_else(|_| Vec::new(), |q| q.committed_digest()),
                    };
                    ServiceReply::reply(Reply::Status(status).canonical_bytes())
                }
                Ok(Request::Shutdown) => {
                    ServiceReply::shutdown(Reply::ShuttingDown.canonical_bytes())
                }
                Err(e) => ServiceReply::reply(Reply::BadRequest(format!("{e}")).canonical_bytes()),
            },
        )
        .map_err(|e| format!("node failed: {e}"))?;

    let committed = ledger.lock().map_or(0, |q| q.committed());
    println!(
        "{}",
        render_report(&report, slots, batch, committed).render()
    );
    Ok(if report.halted && !report.contradicted {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// The final per-replica summary printed on stdout (integers only, keys
/// in fixed order — byte-stable given equal state).
fn render_report<D>(report: &NetReport<D>, slots: u64, batch: u64, committed: u64) -> Json {
    let convictions: Vec<Json> = parse_convictions(&report.notes)
        .into_iter()
        .map(|(who, class)| Json::Str(format!("{who} {class}")))
        .collect();
    Json::Obj(vec![
        ("replica".into(), Json::U64(u64::from(report.me.0))),
        ("slots_target".into(), Json::U64(slots)),
        ("batch".into(), Json::U64(batch)),
        ("committed_commands".into(), Json::U64(committed)),
        ("halted".into(), Json::Bool(report.halted)),
        ("contradicted".into(), Json::Bool(report.contradicted)),
        ("convictions".into(), Json::Arr(convictions)),
        ("msgs_sent".into(), Json::U64(report.msgs_sent)),
        ("msgs_received".into(), Json::U64(report.msgs_received)),
        ("bytes_sent".into(), Json::U64(report.bytes_sent)),
        ("bytes_received".into(), Json::U64(report.bytes_received)),
        ("elapsed_ms".into(), Json::U64(report.end_time.ticks())),
    ])
}
