//! `ftm-load`: drive a cluster of `ftm-serve` replicas and report.
//!
//! ```text
//! ftm-load --peers 127.0.0.1:7100,127.0.0.1:7101,... \
//!          [--slots 1000] [--cluster 0] [--submit-per-replica <slots>] \
//!          [--clients N] [--requests-per-client K] [--targets a:p,b:p] \
//!          [--poll-ms 100] [--timeout-ms 120000] [--out report.json]
//! ```
//!
//! Two load modes share the same invariant checks:
//!
//! * **classic** (`--clients 0`, the default): one worker per replica
//!   (fanned out through the harness's `parallel_map`, the repo's only
//!   sanctioned thread pool outside the transport) submits
//!   `--submit-per-replica` commands, then polls `Status` until the
//!   replica reports a complete, halted log;
//! * **many-client** (`--clients N`): a single-threaded
//!   [`ftm_net::run_load`] loop drives `N` concurrent connections —
//!   `--requests-per-client` submissions each against `--targets`
//!   (default: all peers), with reconnect backoff and integer-µs latency
//!   percentiles — then the classic workers take over for the monitor
//!   phase only (no further submissions).
//!
//! Afterwards the main thread checks the cluster invariants — every
//! replica halted, no contradictions, **all log digests equal**, the
//! batching ledger conservation law (`submitted == queued + inflight +
//! committed`) on every replica, zero convictions — sends `Shutdown`
//! everywhere, and emits a byte-stable integer-only JSON report (exit
//! code 0 only if every invariant holds).
//!
//! Elapsed time is the *maximum replica-reported* `now_ms`: the load
//! generator itself never reads a clock, keeping this crate inside the
//! determinism lint's no-wall-clock scope.

use std::env;
use std::process::ExitCode;

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_net::{run_load, ClientConn, LoadConfig, LoadOutcome};
use ftm_serve::api::{Reply, Request, Status};
use ftm_serve::args::Args;
use ftm_serve::hex;
use ftm_sim::harness::parallel_map;
use ftm_sim::Json;

const FLAGS: [&str; 11] = [
    "peers",
    "slots",
    "cluster",
    "submit-per-replica",
    "clients",
    "requests-per-client",
    "targets",
    "seed",
    "poll-ms",
    "timeout-ms",
    "out",
];

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ftm-load: {e}");
            ExitCode::from(2)
        }
    }
}

struct Drive {
    cluster: u64,
    slots: u64,
    submit: u64,
    poll_ms: u64,
    timeout_ms: u64,
}

fn run() -> Result<ExitCode, String> {
    let args = Args::parse(env::args().skip(1), &FLAGS)?;
    let peers = args.list("peers")?;
    let slots = args.u64_or("slots", 1000)?;
    let clients = args.u64_or("clients", 0)? as usize;
    let requests_per_client = args.u64_or("requests-per-client", 16)?;
    let drive = Drive {
        cluster: args.u64_or("cluster", 0)?,
        slots,
        // Many-client mode submits through the load loop; the per-replica
        // workers then only monitor.
        submit: if clients > 0 {
            0
        } else {
            args.u64_or("submit-per-replica", slots)?
        },
        poll_ms: args.u64_or("poll-ms", 100)?,
        timeout_ms: args.u64_or("timeout-ms", 120_000)?,
    };

    let load = if clients > 0 {
        let targets = match args.get("targets") {
            Some(_) => args.list("targets")?,
            None => peers.clone(),
        };
        let lcfg = LoadConfig {
            clients,
            targets,
            cluster: drive.cluster,
            requests_per_client,
            seed: args.u64_or("seed", 0xD00D)?,
            timeout_ms: drive.timeout_ms,
        };
        let outcome = run_load(
            &lcfg,
            |i, k| {
                // Distinct, replayable values per (client, sequence).
                let value = 0xC2_0000_0000 + (i as u64) * requests_per_client + k;
                Request::Submit { value }.canonical_bytes()
            },
            |_, frame| {
                matches!(
                    Reply::from_canonical_bytes(frame),
                    Ok(Reply::Submitted { .. })
                )
            },
        )
        .map_err(|e| format!("load phase: {e}"))?;
        eprintln!(
            "ftm-load: {} clients completed {} requests ({} reconnects) in {} ms",
            clients, outcome.completed, outcome.reconnects, outcome.elapsed_ms
        );
        Some(outcome)
    } else {
        None
    };

    let results: Vec<Result<Status, String>> = parallel_map(&peers, peers.len(), |i, addr| {
        drive_replica(i, addr, &drive)
    });

    // Shut every replica down regardless of outcome, so a failed check
    // still leaves no orphan servers behind.
    for addr in &peers {
        if let Ok(mut conn) = ClientConn::connect(addr, drive.cluster) {
            let _ = conn.request(&Request::Shutdown.canonical_bytes());
        }
    }

    let mut statuses = Vec::new();
    let mut errors = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(s) => statuses.push(s),
            Err(e) => errors.push(format!("replica {i}: {e}")),
        }
    }

    let all_halted = errors.is_empty() && statuses.iter().all(|s| s.halted);
    let none_contradicted = statuses.iter().all(|s| !s.contradicted);
    let all_complete = statuses.iter().all(|s| s.decided_slots >= drive.slots);
    let digests_agree = statuses
        .windows(2)
        .all(|w| w[0].log_digest == w[1].log_digest);
    // The batching ledger's conservation law, at every replica.
    let conserved = statuses
        .iter()
        .all(|s| s.submitted == s.queued + s.inflight + s.committed);
    let convictions: Vec<String> = statuses
        .iter()
        .flat_map(|s| s.convicted.iter().map(|c| format!("p{} saw {c}", s.me)))
        .collect();
    let ok = all_halted
        && none_contradicted
        && all_complete
        && digests_agree
        && conserved
        && convictions.is_empty();

    let elapsed_ms = statuses.iter().map(|s| s.now_ms).max().unwrap_or(0).max(1);
    let total_bytes: u64 = statuses.iter().map(|s| s.bytes_sent).sum();
    let total_msgs: u64 = statuses.iter().map(|s| s.msgs_sent).sum();
    let report = Json::Obj(vec![
        ("ok".into(), Json::Bool(ok)),
        ("replicas".into(), Json::U64(statuses.len() as u64)),
        ("slots".into(), Json::U64(drive.slots)),
        ("all_halted".into(), Json::Bool(all_halted)),
        ("all_complete".into(), Json::Bool(all_complete)),
        ("digests_agree".into(), Json::Bool(digests_agree)),
        ("none_contradicted".into(), Json::Bool(none_contradicted)),
        ("conserved".into(), Json::Bool(conserved)),
        (
            "log_digest".into(),
            Json::Str(
                statuses
                    .first()
                    .map_or_else(String::new, |s| hex(&s.log_digest)),
            ),
        ),
        (
            "convictions".into(),
            Json::Arr(convictions.into_iter().map(Json::Str).collect()),
        ),
        (
            "errors".into(),
            Json::Arr(errors.into_iter().map(Json::Str).collect()),
        ),
        ("elapsed_ms".into(), Json::U64(elapsed_ms)),
        (
            "slots_per_sec".into(),
            Json::U64(drive.slots.saturating_mul(1000) / elapsed_ms),
        ),
        (
            "slots_per_sec_milli".into(),
            Json::U64(drive.slots.saturating_mul(1_000_000) / elapsed_ms),
        ),
        ("total_msgs_sent".into(), Json::U64(total_msgs)),
        ("total_bytes_sent".into(), Json::U64(total_bytes)),
        (
            "bytes_per_slot".into(),
            Json::U64(total_bytes / drive.slots.max(1)),
        ),
        (
            "total_submitted".into(),
            Json::U64(statuses.iter().map(|s| s.submitted).sum()),
        ),
        (
            "total_committed".into(),
            Json::U64(statuses.iter().map(|s| s.committed).sum()),
        ),
        ("clients".into(), Json::U64(clients as u64)),
        (
            "load_completed".into(),
            Json::U64(load_field(&load, |o| o.completed)),
        ),
        (
            "load_rejected".into(),
            Json::U64(load_field(&load, |o| o.rejected)),
        ),
        (
            "load_reconnects".into(),
            Json::U64(load_field(&load, |o| o.reconnects)),
        ),
        (
            "load_elapsed_ms".into(),
            Json::U64(load_field(&load, |o| o.elapsed_ms)),
        ),
        (
            "load_p50_us".into(),
            Json::U64(load_field(&load, |o| o.p50_us)),
        ),
        (
            "load_p95_us".into(),
            Json::U64(load_field(&load, |o| o.p95_us)),
        ),
        (
            "load_requests_per_sec".into(),
            Json::U64(load.as_ref().map_or(0, |o| {
                o.completed.saturating_mul(1000) / o.elapsed_ms.max(1)
            })),
        ),
    ]);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = args.get("out") {
        std::fs::write(path, &rendered).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Worker for one replica: connect (with retry), submit the command
/// budget, poll until the log is complete and halted, return the final
/// status.
fn drive_replica(index: usize, addr: &String, drive: &Drive) -> Result<Status, String> {
    let poll = std::time::Duration::from_millis(drive.poll_ms.max(1));
    let attempts = (drive.timeout_ms / drive.poll_ms.max(1)).max(1);

    let mut conn = None;
    for _ in 0..attempts {
        match ClientConn::connect(addr, drive.cluster) {
            Ok(c) => {
                conn = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
    let mut conn = conn.ok_or_else(|| format!("{addr}: connect timed out"))?;

    // Distinct, replayable command values per (replica, sequence).
    for k in 0..drive.submit {
        let value = 0xC1_0000_0000 + (index as u64) * drive.submit + k;
        let reply = request(&mut conn, &Request::Submit { value })?;
        if !matches!(reply, Reply::Submitted { .. }) {
            return Err(format!("{addr}: unexpected submit reply {reply:?}"));
        }
    }

    // Monitor phase. A dropped connection here is not fatal: the replica
    // may be mid-restart (the chaos smoke kills one on purpose), so the
    // worker redials and keeps polling until the overall attempt budget
    // runs out.
    let mut conn = Some(conn);
    let mut last = None;
    for _ in 0..attempts {
        let polled = match conn.as_mut() {
            Some(c) => request(c, &Request::Status),
            None => Err("disconnected".into()),
        };
        match polled {
            Ok(Reply::Status(s)) => {
                let done = s.halted && s.decided_slots >= drive.slots;
                last = Some(s);
                if done {
                    return Ok(last.unwrap_or_else(|| unreachable!()));
                }
            }
            Ok(other) => return Err(format!("{addr}: unexpected status reply {other:?}")),
            Err(_) => conn = ClientConn::connect(addr, drive.cluster).ok(),
        }
        std::thread::sleep(poll);
    }
    Err(format!(
        "{addr}: log incomplete after {} ms (last: {} of {} slots)",
        drive.timeout_ms,
        last.map_or(0, |s| s.decided_slots),
        drive.slots
    ))
}

/// A field of the load outcome, or zero in classic mode.
fn load_field(load: &Option<LoadOutcome>, f: impl Fn(&LoadOutcome) -> u64) -> u64 {
    load.as_ref().map_or(0, f)
}

fn request(conn: &mut ClientConn, req: &Request) -> Result<Reply, String> {
    let frame = conn
        .request(&req.canonical_bytes())
        .map_err(|e| format!("request failed: {e}"))?;
    Reply::from_canonical_bytes(&frame).map_err(|e| format!("bad reply: {e}"))
}
