//! Shared pieces of the `ftm-serve` / `ftm-load` binaries: the client
//! wire protocol, the status snapshot, and a tiny flag parser.
//!
//! The server binary (`src/main.rs`) hosts one [`ftm_core::byzantine::log::ReplicatedLog`]
//! replica on the `ftm-net` transport; the load generator
//! (`src/bin/ftm-load.rs`) drives a cluster of them: submit commands, poll
//! status until the log completes, check agreement, emit a byte-stable
//! JSON report.
//!
//! Everything here is deliberately socket-free and clock-free: sockets
//! and wall time belong to `ftm-net` (the `ftm-lint` D3/D4 carve-out does
//! not extend to this crate), so the binaries consume [`ftm_net::ClientConn`]
//! and replica-reported milliseconds instead.

pub mod api;
pub mod args;
pub mod batch;

use std::fmt::Write as _;

use ftm_certify::ValueVector;
use ftm_crypto::sha256::Sha256;
use ftm_crypto::wire::Encoder;

/// SHA-256 over the canonical encoding of a decided log prefix.
///
/// Two replicas hold the same log if and only if their digests match, so
/// the load generator's agreement check is one 32-byte comparison per
/// replica instead of shipping whole logs.
pub fn log_digest(log: &[ValueVector]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.seq(log);
    Sha256::digest(&enc.into_bytes()).as_bytes().to_vec()
}

/// Lowercase hex rendering of a byte string (digests in reports).
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_logs_and_hex_is_stable() {
        let a = vec![ValueVector::from_entries(vec![Some(1), None])];
        let b = vec![ValueVector::from_entries(vec![Some(2), None])];
        assert_eq!(log_digest(&a), log_digest(&a));
        assert_ne!(log_digest(&a), log_digest(&b));
        assert_eq!(hex(&[0x00, 0xab, 0xff]), "00abff");
        assert_eq!(log_digest(&a).len(), 32);
    }
}
