//! A tiny `--flag value` parser: no positional arguments, every flag
//! takes exactly one value, unknown flags are errors. Hand-rolled so the
//! binaries stay dependency-free.

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs from an argument iterator (without the
    /// program name).
    ///
    /// # Errors
    ///
    /// A flag without a value, a value without a flag, a repeated flag,
    /// or a flag not in `known`.
    pub fn parse(argv: impl Iterator<Item = String>, known: &[&str]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut argv = argv.peekable();
        while let Some(arg) = argv.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            if !known.contains(&key) {
                return Err(format!(
                    "unknown flag --{key} (known: {})",
                    known.join(", ")
                ));
            }
            let Some(value) = argv.next() else {
                return Err(format!("flag --{key} needs a value"));
            };
            if map.insert(key.to_string(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Args { map })
    }

    /// The raw value of `key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// The flag is missing.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An integer flag (decimal or `0x` hex) with a default.
    ///
    /// # Errors
    ///
    /// The value does not parse as an integer.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => {
                let parsed = match raw.strip_prefix("0x") {
                    Some(hexpart) => u64::from_str_radix(hexpart, 16),
                    None => raw.parse(),
                };
                parsed.map_err(|_| format!("flag --{key}: `{raw}` is not an integer"))
            }
        }
    }

    /// A comma-separated list flag.
    ///
    /// # Errors
    ///
    /// The flag is missing or empty.
    pub fn list(&self, key: &str) -> Result<Vec<String>, String> {
        let raw = self.required(key)?;
        let items: Vec<String> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if items.is_empty() {
            return Err(format!("flag --{key} lists no items"));
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(
            words.iter().map(|s| (*s).to_string()),
            &["id", "peers", "seed"],
        )
    }

    #[test]
    fn flags_parse_with_defaults_and_hex() {
        let args = parse(&["--id", "2", "--peers", "a:1,b:2", "--seed", "0xD00D"]).expect("parse");
        assert_eq!(args.u64_or("id", 0), Ok(2));
        assert_eq!(args.u64_or("seed", 0), Ok(0xD00D));
        assert_eq!(args.u64_or("missing", 7), Ok(7));
        assert_eq!(args.list("peers"), Ok(vec!["a:1".into(), "b:2".into()]));
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--id"]).is_err());
        assert!(parse(&["--id", "1", "--id", "2"]).is_err());
        assert!(parse(&["--bogus", "1"]).is_err());
        let args = parse(&["--id", "zz"]).expect("parses as string");
        assert!(args.u64_or("id", 0).is_err());
        assert!(args.required("peers").is_err());
    }
}
