//! Command batching: many client submissions per log slot.
//!
//! A slot's vector holds **one value per replica**, so an unbatched server
//! commits at most one client command per slot it proposes in. Batching
//! packs up to `batch` queued commands into that single value: a batch of
//! one rides as the raw command (wire-identical to the unbatched server),
//! a larger batch rides as a 64-bit digest of the command list
//! ([`encode_batch`]). The consensus layer is untouched — it agrees on
//! opaque `u64`s either way — and the server keeps the ledger mapping its
//! proposed slots back to the commands they carried.
//!
//! Commit accounting is conservative: a batch counts as committed only
//! when the sealed slot's vector contains this replica's entry and that
//! entry equals the value the ledger recorded for the slot. A missing or
//! mismatched entry requeues the whole batch at the **front** of the
//! queue, so commands are delayed, never dropped, and their relative
//! order is preserved. The conservation law
//!
//! ```text
//! submitted == queued + inflight + committed
//! ```
//!
//! holds at every step and is what the batching equivalence tests (and
//! `ftm-load`'s cross-checks) lean on.
//!
//! This module is deliberately socket- and clock-free: it is driven by
//! the server's command source and slot hook, and unit-tested without a
//! cluster.

use std::collections::{BTreeMap, VecDeque};

use ftm_crypto::sha256::Sha256;
use ftm_crypto::wire::Encoder;

/// The value proposed for `slot` when `commands` client commands ride it.
///
/// * empty — the caller proposes its deterministic filler instead (this
///   function is not called);
/// * one command — the raw command value, byte-identical on the wire to
///   an unbatched proposal of the same command;
/// * more — the first 8 bytes (big-endian) of SHA-256 over the canonical
///   encoding of `(slot, commands)`, a collision-resistant commitment the
///   proposer can recompute when the slot seals.
pub fn encode_batch(slot: u64, commands: &[u64]) -> Option<u64> {
    match commands {
        [] => None,
        [one] => Some(*one),
        many => {
            let mut enc = Encoder::new();
            enc.bytes(b"ftm-batch");
            enc.u64(slot);
            enc.u32(u32::try_from(many.len()).unwrap_or(u32::MAX));
            for c in many {
                enc.u64(*c);
            }
            let digest = Sha256::digest(&enc.into_bytes());
            let mut word = [0u8; 8];
            word.copy_from_slice(&digest.as_bytes()[..8]);
            Some(u64::from_be_bytes(word))
        }
    }
}

/// The server-side batching ledger: queued commands, in-flight batches
/// keyed by slot, and the committed multiset.
#[derive(Debug)]
pub struct BatchState {
    batch: u64,
    queue: VecDeque<u64>,
    /// Commands proposed for a slot whose fate is not yet known.
    proposed: BTreeMap<u64, Vec<u64>>,
    committed: Vec<u64>,
    submitted: u64,
}

impl BatchState {
    /// A ledger proposing at most `batch` commands per slot (a `batch` of
    /// zero is treated as one).
    pub fn new(batch: u64) -> Self {
        BatchState {
            batch: batch.max(1),
            queue: VecDeque::new(),
            proposed: BTreeMap::new(),
            committed: Vec::new(),
            submitted: 0,
        }
    }

    /// Accepts one client command; returns the queue depth after the push.
    pub fn submit(&mut self, value: u64) -> u64 {
        self.queue.push_back(value);
        self.submitted += 1;
        self.queue.len() as u64
    }

    /// Drains up to `batch` commands for the opening `slot` and returns
    /// the value to propose, or `None` when the queue is empty (the
    /// caller proposes its filler; the ledger records nothing).
    pub fn propose(&mut self, slot: u64) -> Option<u64> {
        let take = (self.batch).min(self.queue.len() as u64) as usize;
        if take == 0 {
            return None;
        }
        let commands: Vec<u64> = self.queue.drain(..take).collect();
        let value = encode_batch(slot, &commands);
        self.proposed.insert(slot, commands);
        value
    }

    /// Settles `slot` after it sealed: `my_entry` is this replica's entry
    /// in the decided vector (if present). The recorded batch commits when
    /// the entry matches its encoding, and requeues at the front
    /// otherwise, preserving submission order.
    pub fn on_sealed(&mut self, slot: u64, my_entry: Option<u64>) {
        let Some(commands) = self.proposed.remove(&slot) else {
            return;
        };
        if my_entry.is_some() && my_entry == encode_batch(slot, &commands) {
            self.committed.extend(commands);
        } else {
            for c in commands.into_iter().rev() {
                self.queue.push_front(c);
            }
        }
    }

    /// Commands submitted over the ledger's lifetime.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Commands waiting to be proposed.
    pub fn queued(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Commands riding slots whose fate is unknown.
    pub fn inflight(&self) -> u64 {
        self.proposed.values().map(|c| c.len() as u64).sum()
    }

    /// Commands whose slot sealed with this replica's entry intact.
    pub fn committed(&self) -> u64 {
        self.committed.len() as u64
    }

    /// SHA-256 over the sorted committed multiset: equal digests mean the
    /// same commands committed, independent of batch size or the slots
    /// they rode in. This is the batching-equivalence observable.
    pub fn committed_digest(&self) -> Vec<u8> {
        let mut sorted = self.committed.clone();
        sorted.sort_unstable();
        let mut enc = Encoder::new();
        enc.bytes(b"ftm-committed");
        enc.u32(u32::try_from(sorted.len()).unwrap_or(u32::MAX));
        for c in &sorted {
            enc.u64(*c);
        }
        Sha256::digest(&enc.into_bytes()).as_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conserved(s: &BatchState) -> bool {
        s.submitted() == s.queued() + s.inflight() + s.committed()
    }

    #[test]
    fn single_command_batches_ride_as_the_raw_value() {
        assert_eq!(encode_batch(3, &[]), None);
        assert_eq!(encode_batch(3, &[42]), Some(42));
        // Multi-command batches commit to slot and content.
        let a = encode_batch(3, &[1, 2]);
        assert_ne!(a, encode_batch(4, &[1, 2]));
        assert_ne!(a, encode_batch(3, &[2, 1]));
        assert_eq!(a, encode_batch(3, &[1, 2]));
    }

    #[test]
    fn commit_path_conserves_commands() {
        let mut s = BatchState::new(4);
        for v in 0..10 {
            s.submit(100 + v);
        }
        assert!(conserved(&s));
        let v0 = s.propose(0).expect("4 queued");
        assert_eq!(s.inflight(), 4);
        assert!(conserved(&s));
        s.on_sealed(0, Some(v0));
        assert_eq!(s.committed(), 4);
        assert!(conserved(&s));
        // Remaining 6 drain in two more slots.
        let v1 = s.propose(1).expect("4 more");
        let v2 = s.propose(2).expect("last 2");
        s.on_sealed(1, Some(v1));
        s.on_sealed(2, Some(v2));
        assert_eq!(s.committed(), 10);
        assert_eq!(s.propose(3), None, "queue is dry");
        assert!(conserved(&s));
    }

    #[test]
    fn missing_or_mismatched_entries_requeue_in_order() {
        let mut s = BatchState::new(2);
        for v in [7, 8, 9] {
            s.submit(v);
        }
        let _ = s.propose(0).expect("proposed 7,8");
        // Entry missing from the decided vector: the batch returns to the
        // front of the queue, ahead of the not-yet-proposed 9.
        s.on_sealed(0, None);
        assert_eq!(s.committed(), 0);
        assert!(conserved(&s));
        let v1 = s.propose(1).expect("retry 7,8");
        assert_eq!(v1, encode_batch(1, &[7, 8]).unwrap());
        // A mismatched entry (another value won the slot) also requeues.
        s.on_sealed(1, Some(v1 ^ 1));
        assert!(conserved(&s));
        let v2 = s.propose(2).expect("retry again");
        s.on_sealed(2, Some(v2));
        let v3 = s.propose(3).expect("9 now");
        assert_eq!(v3, 9);
        s.on_sealed(3, Some(v3));
        assert_eq!(s.committed(), 3);
        assert!(conserved(&s));
    }

    #[test]
    fn committed_digest_is_batch_size_independent() {
        let run = |batch: u64| {
            let mut s = BatchState::new(batch);
            for v in 0..12 {
                s.submit(500 + v);
            }
            let mut slot = 0;
            while s.queued() > 0 {
                if let Some(v) = s.propose(slot) {
                    s.on_sealed(slot, Some(v));
                }
                slot += 1;
            }
            s.committed_digest()
        };
        assert_eq!(run(1), run(16));
        assert_eq!(run(3), run(100));
    }
}
