//! The client request/reply protocol, canonically encoded.
//!
//! Clients talk to a replica over one `ftm-net` client connection; each
//! request frame carries one [`Request`], each reply frame one [`Reply`].
//! The encoding reuses `ftm_crypto::wire` (big-endian, length-prefixed,
//! tagged), so replies are byte-stable given equal state — which is what
//! lets the load generator compare replicas structurally.

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode, DecodeError, Decoder, Encoder};

/// A client request to one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue `value` as a command this replica proposes for an upcoming
    /// slot.
    Submit {
        /// The command value.
        value: u64,
    },
    /// Ask for a [`Status`] snapshot.
    Status,
    /// Ask the replica to exit after replying.
    Shutdown,
}

impl CanonicalEncode for Request {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Request::Submit { value } => {
                enc.tag(1);
                enc.u64(*value);
            }
            Request::Status => enc.tag(2),
            Request::Shutdown => enc.tag(3),
        }
    }
}

impl CanonicalDecode for Request {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.tag()? {
            1 => Ok(Request::Submit { value: dec.u64()? }),
            2 => Ok(Request::Status),
            3 => Ok(Request::Shutdown),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// One replica's self-reported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// The replica's process id.
    pub me: u32,
    /// Replica-local milliseconds since it started (clients use the max
    /// across replicas as the run's elapsed time, keeping the load
    /// generator clock-free).
    pub now_ms: u64,
    /// Log slots decided so far.
    pub decided_slots: u64,
    /// Whether the replica's actor halted (log complete).
    pub halted: bool,
    /// Whether a contradictory decision was attempted (must stay false).
    pub contradicted: bool,
    /// SHA-256 of the decided log prefix (see [`crate::log_digest`]).
    pub log_digest: Vec<u8>,
    /// Convictions this replica's detectors produced, as
    /// `"culprit class"` strings (must stay empty in honest runs).
    pub convicted: Vec<String>,
    /// Client-submitted commands still queued.
    pub queued: u64,
    /// Transport counters: messages handed to the transport.
    pub msgs_sent: u64,
    /// Messages delivered to the actor.
    pub msgs_received: u64,
    /// Bytes written (frames + loopback payloads).
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Max commands this replica packs into one slot (`--batch`).
    pub batch: u64,
    /// Commands submitted to this replica over its lifetime.
    pub submitted: u64,
    /// Commands whose slot sealed with this replica's entry intact.
    pub committed: u64,
    /// Commands riding slots whose fate is not yet known.
    pub inflight: u64,
    /// SHA-256 over the sorted committed multiset (see
    /// [`crate::batch::BatchState::committed_digest`]): batch-size
    /// independent, so `--batch 1` and `--batch 16` runs of the same
    /// workload report equal digests.
    pub committed_digest: Vec<u8>,
}

/// A string as canonical bytes (UTF-8, length-prefixed).
fn encode_str(enc: &mut Encoder, s: &str) {
    enc.bytes(s.as_bytes());
}

fn decode_str(dec: &mut Decoder<'_>) -> Result<String, DecodeError> {
    // Tag 0 stands in for "invalid UTF-8" — the canonical encoder only
    // ever writes valid UTF-8, so hitting this means corruption.
    String::from_utf8(dec.bytes()?).map_err(|_| DecodeError::BadTag(0))
}

impl CanonicalEncode for Status {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(self.me);
        enc.u64(self.now_ms);
        enc.u64(self.decided_slots);
        enc.bool(self.halted);
        enc.bool(self.contradicted);
        enc.bytes(&self.log_digest);
        enc.u32(u32::try_from(self.convicted.len()).unwrap_or(u32::MAX));
        for c in &self.convicted {
            encode_str(enc, c);
        }
        enc.u64(self.queued);
        enc.u64(self.msgs_sent);
        enc.u64(self.msgs_received);
        enc.u64(self.bytes_sent);
        enc.u64(self.bytes_received);
        enc.u64(self.batch);
        enc.u64(self.submitted);
        enc.u64(self.committed);
        enc.u64(self.inflight);
        enc.bytes(&self.committed_digest);
    }
}

impl CanonicalDecode for Status {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let me = dec.u32()?;
        let now_ms = dec.u64()?;
        let decided_slots = dec.u64()?;
        let halted = dec.bool()?;
        let contradicted = dec.bool()?;
        let log_digest = dec.bytes()?;
        let n_convicted = dec.u32()?;
        if n_convicted as usize > dec.remaining() {
            return Err(DecodeError::BadLength(n_convicted));
        }
        let mut convicted = Vec::with_capacity(n_convicted as usize);
        for _ in 0..n_convicted {
            convicted.push(decode_str(dec)?);
        }
        Ok(Status {
            me,
            now_ms,
            decided_slots,
            halted,
            contradicted,
            log_digest,
            convicted,
            queued: dec.u64()?,
            msgs_sent: dec.u64()?,
            msgs_received: dec.u64()?,
            bytes_sent: dec.u64()?,
            bytes_received: dec.u64()?,
            batch: dec.u64()?,
            submitted: dec.u64()?,
            committed: dec.u64()?,
            inflight: dec.u64()?,
            committed_digest: dec.bytes()?,
        })
    }
}

/// A replica's reply to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The command was queued; `queued` is the depth after the push.
    Submitted {
        /// Queue depth after the submit.
        queued: u64,
    },
    /// The status snapshot.
    Status(Status),
    /// Acknowledges a shutdown; the connection closes after this frame.
    ShuttingDown,
    /// The request frame could not be decoded.
    BadRequest(String),
}

impl CanonicalEncode for Reply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Reply::Submitted { queued } => {
                enc.tag(1);
                enc.u64(*queued);
            }
            Reply::Status(s) => {
                enc.tag(2);
                s.encode(enc);
            }
            Reply::ShuttingDown => enc.tag(3),
            Reply::BadRequest(msg) => {
                enc.tag(4);
                encode_str(enc, msg);
            }
        }
    }
}

impl CanonicalDecode for Reply {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.tag()? {
            1 => Ok(Reply::Submitted { queued: dec.u64()? }),
            2 => Ok(Reply::Status(Status::decode(dec)?)),
            3 => Ok(Reply::ShuttingDown),
            4 => Ok(Reply::BadRequest(decode_str(dec)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_status() -> Status {
        Status {
            me: 2,
            now_ms: 1234,
            decided_slots: 17,
            halted: false,
            contradicted: false,
            log_digest: vec![0xAB; 32],
            convicted: vec!["p3 bad-certificate".to_string()],
            queued: 5,
            msgs_sent: 100,
            msgs_received: 90,
            bytes_sent: 4000,
            bytes_received: 3800,
            batch: 16,
            submitted: 40,
            committed: 30,
            inflight: 5,
            committed_digest: vec![0xCD; 32],
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Submit { value: 7 },
            Request::Status,
            Request::Shutdown,
        ] {
            let bytes = req.canonical_bytes();
            assert_eq!(Request::from_canonical_bytes(&bytes), Ok(req));
        }
    }

    #[test]
    fn replies_roundtrip() {
        for reply in [
            Reply::Submitted { queued: 3 },
            Reply::Status(sample_status()),
            Reply::ShuttingDown,
            Reply::BadRequest("tag 9".to_string()),
        ] {
            let bytes = reply.canonical_bytes();
            assert_eq!(Reply::from_canonical_bytes(&bytes), Ok(reply.clone()));
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(Request::from_canonical_bytes(&[9]).is_err());
        assert!(Reply::from_canonical_bytes(&[]).is_err());
        let mut truncated = Reply::Status(sample_status()).canonical_bytes();
        truncated.truncate(truncated.len() / 2);
        assert!(Reply::from_canonical_bytes(&truncated).is_err());
    }
}
