//! Unreliable failure detectors for the crash and arbitrary-failure models.
//!
//! The paper's module stack uses two detector classes:
//!
//! * the crash-model protocol (Hurfin–Raynal, paper Fig. 2) relies on a
//!   **◇S** detector — Strong Completeness plus Eventual Weak Accuracy
//!   (Chandra–Toueg);
//! * the transformed protocol replaces it with a **muteness detector of
//!   class ◇M** (Doudou et al.): it suspects processes that permanently stop
//!   sending the *protocol* messages they are supposed to send — a strict
//!   generalization of crash detection, since a Byzantine process can fall
//!   mute without crashing.
//!
//! This crate provides:
//!
//! * [`FailureDetector`] — the query/feed interface actors embed;
//! * [`TimeoutDetector`] — the classical timeout-with-increase
//!   implementation (doubles a peer's timeout on each wrongful suspicion);
//!   eventually accurate once the network stabilizes (GST). Feeding it all
//!   messages makes it a crash/◇S detector; feeding it only accepted
//!   protocol messages makes it a muteness/◇M detector — exactly the
//!   distinction drawn in the paper;
//! * [`MutenessDetector`] — the round-aware ◇M variant (Doudou et al.):
//!   a peer is suspected only when it is both silent *and* falling rounds
//!   behind the observer — muteness with respect to the algorithm;
//! * [`QuietDetector`] — the fixed-timeout "quiet process" detector of
//!   Malkhi–Reiter (◇S(bz)), kept as a comparison baseline;
//! * [`OracleDetector`] — a test harness detector with scripted accuracy,
//!   used to isolate protocol correctness from detector quality;
//! * [`properties`] — trace-replay checkers measuring Strong Completeness,
//!   detection latency and wrongful-suspicion (mistake) rates — the numbers
//!   experiment E7 reports.

pub mod muteness;
pub mod oracle;
pub mod properties;
pub mod quiet;
pub mod suspicion;
pub mod timeout;

pub use muteness::MutenessDetector;
pub use oracle::OracleDetector;
pub use quiet::QuietDetector;
pub use suspicion::{FailureDetector, SuspicionChange};
pub use timeout::TimeoutDetector;
