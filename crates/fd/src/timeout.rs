//! The timeout-with-increase detector: the standard implementable member of
//! ◇S (crash) and ◇M (muteness) under partial synchrony.
//!
//! Scheme (Chandra–Toueg, and the ◇M implementation sketched by Doudou et
//! al.): suspect `peer` when no relevant message arrived within its current
//! timeout; when a message from a *suspected* peer arrives, the suspicion
//! was a mistake — rehabilitate the peer and **double its timeout**, so
//! each peer is wrongly suspected only finitely often once the network
//! stabilizes. That yields Strong Completeness unconditionally and Eventual
//! (Weak) Accuracy after GST.

use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::suspicion::{FailureDetector, SuspicionChange};

#[derive(Debug, Clone)]
struct PeerState {
    last_heard: VirtualTime,
    timeout: Duration,
    suspected: bool,
    mistakes: u64,
}

/// Adaptive timeout-based failure detector (see module docs).
///
/// # Example
///
/// ```
/// use ftm_fd::{FailureDetector, TimeoutDetector};
/// use ftm_sim::{Duration, ProcessId, VirtualTime};
///
/// let mut fd = TimeoutDetector::new(4, Duration::of(50));
/// let peer = ProcessId(2);
/// assert!(!fd.suspects(peer, VirtualTime::at(10)));   // within timeout
/// assert!(fd.suspects(peer, VirtualTime::at(100)));   // silent too long
/// fd.observe_message(peer, VirtualTime::at(120));     // mistake! timeout doubles
/// assert!(!fd.suspects(peer, VirtualTime::at(200)));  // 120+100 > 200
/// ```
#[derive(Debug, Clone)]
pub struct TimeoutDetector {
    peers: Vec<PeerState>,
    history: Vec<SuspicionChange>,
    mistakes: u64,
}

impl TimeoutDetector {
    /// Creates a detector over `n` peers with initial timeout
    /// `initial_timeout` for each (measured from time zero).
    ///
    /// # Panics
    ///
    /// Panics if `initial_timeout` is zero.
    pub fn new(n: usize, initial_timeout: Duration) -> Self {
        assert!(
            initial_timeout > Duration::ZERO,
            "initial timeout must be positive"
        );
        TimeoutDetector {
            peers: vec![
                PeerState {
                    last_heard: VirtualTime::ZERO,
                    timeout: initial_timeout,
                    suspected: false,
                    mistakes: 0,
                };
                n
            ],
            history: Vec::new(),
            mistakes: 0,
        }
    }

    /// Number of wrongful suspicions corrected so far (messages received
    /// from a currently-suspected peer).
    pub fn mistakes(&self) -> u64 {
        self.mistakes
    }

    /// Wrongful suspicions of `peer` corrected so far — the per-peer
    /// breakdown of [`mistakes`](Self::mistakes), so observers can
    /// separate mistakes about honest peers from mistakes about peers
    /// later convicted anyway.
    pub fn mistakes_for(&self, peer: ProcessId) -> u64 {
        self.peers[peer.index()].mistakes
    }

    /// Current timeout of `peer` (grows by doubling on each mistake).
    pub fn timeout_of(&self, peer: ProcessId) -> Duration {
        self.peers[peer.index()].timeout
    }

    /// All peers suspected at `now`, updating histories.
    pub fn suspected_set(&mut self, now: VirtualTime) -> Vec<ProcessId> {
        (0..self.peers.len() as u32)
            .map(ProcessId)
            .filter(|&p| self.suspects(p, now))
            .collect()
    }
}

impl FailureDetector for TimeoutDetector {
    fn observe_message(&mut self, peer: ProcessId, now: VirtualTime) {
        let st = &mut self.peers[peer.index()];
        if st.suspected {
            // Premature suspicion: rehabilitate and back off.
            st.suspected = false;
            st.timeout = st.timeout.saturating_mul(2);
            st.mistakes += 1;
            self.mistakes += 1;
            self.history.push(SuspicionChange {
                peer,
                at: now,
                suspected: false,
            });
        }
        st.last_heard = now;
    }

    fn suspects(&mut self, peer: ProcessId, now: VirtualTime) -> bool {
        let st = &mut self.peers[peer.index()];
        let overdue = now.since(st.last_heard) > st.timeout;
        if overdue && !st.suspected {
            st.suspected = true;
            self.history.push(SuspicionChange {
                peer,
                at: now,
                suspected: true,
            });
        }
        st.suspected || overdue
    }

    fn history(&self) -> &[SuspicionChange] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd() -> TimeoutDetector {
        TimeoutDetector::new(3, Duration::of(10))
    }

    #[test]
    fn fresh_peers_not_suspected() {
        let mut d = fd();
        for p in 0..3u32 {
            assert!(!d.suspects(ProcessId(p), VirtualTime::at(5)));
        }
    }

    #[test]
    fn silence_beyond_timeout_triggers_suspicion() {
        let mut d = fd();
        assert!(!d.suspects(ProcessId(0), VirtualTime::at(10)));
        assert!(d.suspects(ProcessId(0), VirtualTime::at(11)));
    }

    #[test]
    fn message_rehabilitates_and_doubles_timeout() {
        let mut d = fd();
        assert!(d.suspects(ProcessId(0), VirtualTime::at(20)));
        d.observe_message(ProcessId(0), VirtualTime::at(21));
        assert_eq!(d.mistakes(), 1);
        assert_eq!(d.timeout_of(ProcessId(0)), Duration::of(20));
        assert!(!d.suspects(ProcessId(0), VirtualTime::at(41)));
        assert!(d.suspects(ProcessId(0), VirtualTime::at(42)));
    }

    #[test]
    fn strong_completeness_a_mute_peer_stays_suspected() {
        let mut d = fd();
        // p1 talks until t=100, then goes mute.
        for t in (0..=100).step_by(5) {
            d.observe_message(ProcessId(1), VirtualTime::at(t));
        }
        assert!(!d.suspects(ProcessId(1), VirtualTime::at(105)));
        assert!(d.suspects(ProcessId(1), VirtualTime::at(111)));
        // Suspicion is permanent without further messages.
        for t in [200u64, 1_000, 100_000] {
            assert!(d.suspects(ProcessId(1), VirtualTime::at(t)));
        }
    }

    #[test]
    fn eventual_accuracy_under_bounded_delays() {
        // A peer that always speaks within delay `5` but was wrongly
        // suspected a few times ends up with a timeout > 5 and is never
        // suspected again: mistakes are finite.
        let mut d = TimeoutDetector::new(1, Duration::of(1));
        let mut t = 0u64;
        let mut mistakes_before = 0;
        for _ in 0..10 {
            t += 5;
            let _ = d.suspects(ProcessId(0), VirtualTime::at(t));
            d.observe_message(ProcessId(0), VirtualTime::at(t));
            mistakes_before = d.mistakes();
        }
        // Timeout has grown past the message gap: no further mistakes.
        for _ in 0..50 {
            t += 5;
            assert!(!d.suspects(ProcessId(0), VirtualTime::at(t)));
            d.observe_message(ProcessId(0), VirtualTime::at(t));
        }
        assert_eq!(d.mistakes(), mistakes_before);
        assert!(d.timeout_of(ProcessId(0)) > Duration::of(5));
    }

    #[test]
    fn history_records_flips() {
        let mut d = fd();
        assert!(d.suspects(ProcessId(2), VirtualTime::at(50)));
        d.observe_message(ProcessId(2), VirtualTime::at(60));
        let h = d.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].suspected && !h[1].suspected);
        assert_eq!(h[0].peer, ProcessId(2));
    }

    #[test]
    fn suspected_set_lists_all_silent_peers() {
        let mut d = fd();
        d.observe_message(ProcessId(0), VirtualTime::at(95));
        let set = d.suspected_set(VirtualTime::at(100));
        assert_eq!(set, vec![ProcessId(1), ProcessId(2)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        let _ = TimeoutDetector::new(1, Duration::ZERO);
    }
}
