//! Detector-quality measurement by trace replay.
//!
//! A detector's worth is judged on two axes (Chandra–Toueg):
//! *completeness* — real faults get suspected, and how fast — and
//! *accuracy* — correct processes do not stay suspected, and how often they
//! are wrongly suspected. These functions replay a message-arrival timeline
//! (taken from a simulation [`ftm_sim::trace::Trace`] or synthesized) into
//! any [`FailureDetector`] and report both axes. Experiment E7 sweeps the
//! timeout parameter with exactly this instrument.

use ftm_sim::trace::{Trace, TraceEvent};
use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::suspicion::FailureDetector;

/// Replay result for one observer watching one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorQuality {
    /// Time from the peer's silence onset to its *permanent* suspicion
    /// (`None` when the peer never fell silent, or was never caught).
    pub detection_time: Option<Duration>,
    /// Wrongful suspicions: flips back to trusted after a message arrived.
    pub mistakes: u64,
    /// Whether the peer was suspected at the replay horizon.
    pub suspected_at_horizon: bool,
}

impl DetectorQuality {
    /// Strong completeness verdict: a peer mute from some onset must be
    /// suspected at the horizon (and the suspicion must be permanent,
    /// which `detection_time` already certifies).
    pub fn complete(&self) -> bool {
        self.detection_time.is_some() && self.suspected_at_horizon
    }
}

/// Extracts the times at which `dst` received a message from `src`.
pub fn delivery_times(trace: &Trace, src: ProcessId, dst: ProcessId) -> Vec<VirtualTime> {
    trace
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Deliver { src: s, dst: d, .. } if *s == src && *d == dst => Some(e.at),
            _ => None,
        })
        .collect()
}

/// Replays `deliveries` (times the observer heard from the peer, ascending)
/// into `detector`, querying every `query_interval` up to `horizon`.
///
/// `silence_onset` is ground truth: the instant the peer actually went
/// mute, or `None` if it stayed correct. The returned quality reports the
/// permanent-detection latency relative to that onset.
///
/// # Panics
///
/// Panics if `query_interval` is zero.
pub fn replay_quality<F: FailureDetector>(
    detector: &mut F,
    peer: ProcessId,
    deliveries: &[VirtualTime],
    silence_onset: Option<VirtualTime>,
    horizon: VirtualTime,
    query_interval: Duration,
) -> DetectorQuality {
    assert!(
        query_interval > Duration::ZERO,
        "query interval must be positive"
    );

    let mut mistakes = 0u64;
    let mut last_flip_to_suspected: Option<VirtualTime> = None;
    let mut suspected = false;

    let mut di = 0usize;
    let mut q = VirtualTime::ZERO + query_interval;
    loop {
        // Interleave deliveries and queries in time order; deliveries first
        // on ties (the message is what the query should already reflect).
        let next_delivery = deliveries.get(di).copied();
        match next_delivery {
            Some(d) if d <= q && d <= horizon => {
                detector.observe_message(peer, d);
                if suspected {
                    mistakes += 1;
                    suspected = false;
                    last_flip_to_suspected = None;
                }
                di += 1;
                continue;
            }
            _ => {}
        }
        if q > horizon {
            break;
        }
        let s = detector.suspects(peer, q);
        if s && !suspected {
            suspected = true;
            last_flip_to_suspected = Some(q);
        } else if !s && suspected {
            // Detector rehabilitated on its own (only oracles do this).
            suspected = false;
            last_flip_to_suspected = None;
        }
        q += query_interval;
    }

    let detection_time = match (silence_onset, last_flip_to_suspected) {
        (Some(onset), Some(flip)) if suspected => Some(flip.since(onset)),
        _ => None,
    };
    DetectorQuality {
        detection_time,
        mistakes,
        suspected_at_horizon: suspected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeout::TimeoutDetector;

    fn times(ts: &[u64]) -> Vec<VirtualTime> {
        ts.iter().map(|&t| VirtualTime::at(t)).collect()
    }

    #[test]
    fn mute_peer_is_detected_permanently() {
        let mut d = TimeoutDetector::new(1, Duration::of(10));
        let deliveries = times(&[5, 10, 15, 20]); // silent after t=20
        let q = replay_quality(
            &mut d,
            ProcessId(0),
            &deliveries,
            Some(VirtualTime::at(20)),
            VirtualTime::at(200),
            Duration::of(1),
        );
        assert!(q.complete());
        assert_eq!(q.detection_time, Some(Duration::of(11)));
        assert_eq!(q.mistakes, 0);
    }

    #[test]
    fn chatty_peer_with_adaptive_timeout_has_finite_mistakes() {
        let mut d = TimeoutDetector::new(1, Duration::of(2));
        // Speaks every 8 ticks forever: timeout 2 → wrongly suspected a few
        // times, then the doubled timeout exceeds 8 and mistakes stop.
        let deliveries: Vec<VirtualTime> = (1..200).map(|i| VirtualTime::at(i * 8)).collect();
        let q = replay_quality(
            &mut d,
            ProcessId(0),
            &deliveries,
            None,
            VirtualTime::at(1_500),
            Duration::of(1),
        );
        assert!(!q.suspected_at_horizon);
        assert!(
            q.mistakes >= 1 && q.mistakes <= 3,
            "mistakes={}",
            q.mistakes
        );
        assert_eq!(q.detection_time, None);
    }

    #[test]
    fn never_silent_never_detected() {
        let mut d = TimeoutDetector::new(1, Duration::of(50));
        let deliveries: Vec<VirtualTime> = (1..40).map(|i| VirtualTime::at(i * 10)).collect();
        let q = replay_quality(
            &mut d,
            ProcessId(0),
            &deliveries,
            None,
            VirtualTime::at(400),
            Duration::of(5),
        );
        assert!(!q.complete());
        assert_eq!(q.mistakes, 0);
    }

    #[test]
    fn delivery_times_filters_by_channel() {
        let mut trace = Trace::new();
        trace.record(
            VirtualTime::at(3),
            TraceEvent::Deliver {
                src: ProcessId(0),
                dst: ProcessId(1),
                label: "x".into(),
            },
        );
        trace.record(
            VirtualTime::at(4),
            TraceEvent::Deliver {
                src: ProcessId(1),
                dst: ProcessId(0),
                label: "y".into(),
            },
        );
        assert_eq!(
            delivery_times(&trace, ProcessId(0), ProcessId(1)),
            times(&[3])
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_query_interval_rejected() {
        let mut d = TimeoutDetector::new(1, Duration::of(10));
        let _ = replay_quality(
            &mut d,
            ProcessId(0),
            &[],
            None,
            VirtualTime::at(10),
            Duration::ZERO,
        );
    }
}
