//! A scripted detector for controlled experiments.
//!
//! Protocol proofs assume detector *classes* (◇S, ◇M), not implementations.
//! To test a protocol against the class boundary — e.g. "Hurfin–Raynal
//! terminates with eventual weak accuracy even if the detector lies wildly
//! first" — we need a detector whose accuracy schedule is chosen by the
//! test, not by network timing. [`OracleDetector`] is that instrument: it
//! knows the ground-truth fault schedule (perfect completeness with a
//! configurable detection lag) and wrongly suspects scripted peers until a
//! scripted time (imperfect accuracy, eventually weak).

use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::suspicion::FailureDetector;

/// Ground-truth-driven detector with scripted mistakes.
///
/// # Example
///
/// ```
/// use ftm_fd::{FailureDetector, OracleDetector};
/// use ftm_sim::{Duration, ProcessId, VirtualTime};
///
/// let mut fd = OracleDetector::new(3)
///     .faulty_from(ProcessId(0), VirtualTime::at(100))
///     .detection_lag(Duration::of(10))
///     .wrongly_suspect_until(ProcessId(1), VirtualTime::at(50));
///
/// assert!(fd.suspects(ProcessId(1), VirtualTime::at(40)));  // scripted lie
/// assert!(!fd.suspects(ProcessId(1), VirtualTime::at(60))); // lie expired
/// assert!(!fd.suspects(ProcessId(0), VirtualTime::at(105))); // within lag
/// assert!(fd.suspects(ProcessId(0), VirtualTime::at(111)));  // completeness
/// ```
#[derive(Debug, Clone)]
pub struct OracleDetector {
    n: usize,
    faulty_from: Vec<Option<VirtualTime>>,
    wrong_until: Vec<Option<VirtualTime>>,
    lag: Duration,
}

impl OracleDetector {
    /// Creates an initially truthful oracle over `n` peers: no peer is
    /// faulty, no lies are scripted, detection lag is zero.
    pub fn new(n: usize) -> Self {
        OracleDetector {
            n,
            faulty_from: vec![None; n],
            wrong_until: vec![None; n],
            lag: Duration::ZERO,
        }
    }

    /// Declares `peer` actually faulty (crashed/mute) from `at` on.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    pub fn faulty_from(mut self, peer: ProcessId, at: VirtualTime) -> Self {
        assert!(peer.index() < self.n, "peer out of range");
        self.faulty_from[peer.index()] = Some(at);
        self
    }

    /// Sets how long after the real fault the oracle starts suspecting
    /// (models detection latency; completeness still holds).
    pub fn detection_lag(mut self, lag: Duration) -> Self {
        self.lag = lag;
        self
    }

    /// Scripts a lie: suspect the (correct) `peer` at every query strictly
    /// before `until`. Eventual weak accuracy holds as long as some correct
    /// peer's lie eventually stops — which this constructor enforces by
    /// always taking a finite `until`.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    pub fn wrongly_suspect_until(mut self, peer: ProcessId, until: VirtualTime) -> Self {
        assert!(peer.index() < self.n, "peer out of range");
        self.wrong_until[peer.index()] = Some(until);
        self
    }
}

impl FailureDetector for OracleDetector {
    fn observe_message(&mut self, _peer: ProcessId, _now: VirtualTime) {
        // The oracle consults ground truth, not message flow.
    }

    fn suspects(&mut self, peer: ProcessId, now: VirtualTime) -> bool {
        let idx = peer.index();
        if let Some(at) = self.faulty_from[idx] {
            if now >= at + self.lag {
                return true;
            }
        }
        if let Some(until) = self.wrong_until[idx] {
            if now < until {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_oracle_never_suspects_correct_peers() {
        let mut d = OracleDetector::new(2);
        for t in [0u64, 10, 1_000_000] {
            assert!(!d.suspects(ProcessId(0), VirtualTime::at(t)));
        }
    }

    #[test]
    fn completeness_with_lag() {
        let mut d = OracleDetector::new(2)
            .faulty_from(ProcessId(1), VirtualTime::at(100))
            .detection_lag(Duration::of(20));
        assert!(!d.suspects(ProcessId(1), VirtualTime::at(119)));
        assert!(d.suspects(ProcessId(1), VirtualTime::at(120)));
    }

    #[test]
    fn scripted_lies_expire() {
        let mut d = OracleDetector::new(2).wrongly_suspect_until(ProcessId(0), VirtualTime::at(30));
        assert!(d.suspects(ProcessId(0), VirtualTime::at(29)));
        assert!(!d.suspects(ProcessId(0), VirtualTime::at(30)));
    }

    #[test]
    fn observe_message_is_inert() {
        let mut d = OracleDetector::new(1).wrongly_suspect_until(ProcessId(0), VirtualTime::at(10));
        d.observe_message(ProcessId(0), VirtualTime::at(5));
        assert!(d.suspects(ProcessId(0), VirtualTime::at(5)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_peer_rejected() {
        let _ = OracleDetector::new(1).faulty_from(ProcessId(1), VirtualTime::ZERO);
    }
}
