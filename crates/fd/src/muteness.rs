//! The round-aware muteness detector — the ◇M implementation shape
//! sketched by Doudou et al. for regular round-based algorithms.
//!
//! The generic [`crate::TimeoutDetector`] adapts by doubling on mistakes.
//! This variant additionally exploits the *round structure* the class ◇M
//! is defined for: the embedding protocol reports its round, and a peer's
//! time allowance grows linearly with that round —
//! `Δ(r) = Δ₀ + r · δ` — modeling the fact that later rounds may
//! legitimately take longer (vote collection, churned coordinators,
//! growing certificates). Strong completeness is preserved: at any fixed
//! round the allowance is finite, so a mute peer's silence eventually
//! exceeds it; accuracy improves as rounds accumulate because the
//! allowance only grows.
//!
//! (An earlier design required the observer to *outrun* the peer by some
//! round slack before suspecting — that breaks completeness: if the mute
//! process is the round-1 coordinator, nobody's round ever advances and
//! the deadlock is permanent. The time-based allowance avoids the trap.)

use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::suspicion::{FailureDetector, SuspicionChange};

/// Round-aware ◇M detector with allowance `Δ(r) = Δ₀ + r · δ`, plus the
/// doubling-on-mistake adaptation of the generic detector.
///
/// # Example
///
/// ```
/// use ftm_fd::muteness::MutenessDetector;
/// use ftm_fd::FailureDetector;
/// use ftm_sim::{Duration, ProcessId, VirtualTime};
///
/// let mut fd = MutenessDetector::new(3, Duration::of(50), Duration::of(25));
/// fd.enter_round(1, VirtualTime::ZERO);
/// // Allowance in round 1 is 50 + 25 = 75.
/// assert!(!fd.suspects(ProcessId(1), VirtualTime::at(75)));
/// assert!(fd.suspects(ProcessId(1), VirtualTime::at(76)));
/// // In round 4 the allowance is 50 + 100 = 150.
/// let mut fd = MutenessDetector::new(3, Duration::of(50), Duration::of(25));
/// fd.enter_round(4, VirtualTime::ZERO);
/// assert!(!fd.suspects(ProcessId(1), VirtualTime::at(150)));
/// assert!(fd.suspects(ProcessId(1), VirtualTime::at(151)));
/// ```
#[derive(Debug, Clone)]
pub struct MutenessDetector {
    last_heard: Vec<VirtualTime>,
    adaptive: Vec<Duration>,
    suspected: Vec<bool>,
    base: Duration,
    per_round: Duration,
    round: u64,
    history: Vec<SuspicionChange>,
    mistakes: u64,
    peer_mistakes: Vec<u64>,
}

impl MutenessDetector {
    /// Creates a detector over `n` peers with base allowance `base` and
    /// per-round increment `per_round`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero.
    pub fn new(n: usize, base: Duration, per_round: Duration) -> Self {
        assert!(base > Duration::ZERO, "base timeout must be positive");
        MutenessDetector {
            last_heard: vec![VirtualTime::ZERO; n],
            adaptive: vec![Duration::ZERO; n],
            suspected: vec![false; n],
            base,
            per_round,
            round: 0,
            history: Vec::new(),
            mistakes: 0,
            peer_mistakes: vec![0; n],
        }
    }

    /// Informs the detector that the *observer* entered `round`.
    pub fn enter_round(&mut self, round: u64, _now: VirtualTime) {
        self.round = self.round.max(round);
    }

    /// Wrongful suspicions corrected so far.
    pub fn mistakes(&self) -> u64 {
        self.mistakes
    }

    /// Wrongful suspicions of `peer` corrected so far — the per-peer
    /// breakdown of [`mistakes`](Self::mistakes).
    pub fn mistakes_for(&self, peer: ProcessId) -> u64 {
        self.peer_mistakes[peer.index()]
    }

    /// Current allowance of `peer`: `max(adaptive, Δ₀ + r·δ)`.
    pub fn allowance_of(&self, peer: ProcessId) -> Duration {
        let scheduled = self.base + self.per_round.saturating_mul(self.round);
        self.adaptive[peer.index()].max(scheduled)
    }
}

impl FailureDetector for MutenessDetector {
    fn observe_message(&mut self, peer: ProcessId, now: VirtualTime) {
        let i = peer.index();
        if self.suspected[i] {
            self.suspected[i] = false;
            // Back off: double whatever allowance proved insufficient.
            self.adaptive[i] = self.allowance_of(peer).saturating_mul(2);
            self.mistakes += 1;
            self.peer_mistakes[i] += 1;
            self.history.push(SuspicionChange {
                peer,
                at: now,
                suspected: false,
            });
        }
        self.last_heard[i] = now;
    }

    fn suspects(&mut self, peer: ProcessId, now: VirtualTime) -> bool {
        let i = peer.index();
        let overdue = now.since(self.last_heard[i]) > self.allowance_of(peer);
        if overdue && !self.suspected[i] {
            self.suspected[i] = true;
            self.history.push(SuspicionChange {
                peer,
                at: now,
                suspected: true,
            });
        }
        self.suspected[i] || overdue
    }

    fn history(&self) -> &[SuspicionChange] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd() -> MutenessDetector {
        MutenessDetector::new(2, Duration::of(20), Duration::of(10))
    }

    #[test]
    fn allowance_grows_with_round() {
        let mut d = fd();
        d.enter_round(1, VirtualTime::ZERO);
        assert_eq!(d.allowance_of(ProcessId(0)), Duration::of(30));
        d.enter_round(5, VirtualTime::ZERO);
        assert_eq!(d.allowance_of(ProcessId(0)), Duration::of(70));
    }

    #[test]
    fn completeness_even_when_the_observer_is_parked() {
        // The mute round-1 coordinator scenario: the observer never leaves
        // round 1, yet the suspicion must eventually fire.
        let mut d = fd();
        d.enter_round(1, VirtualTime::ZERO);
        assert!(!d.suspects(ProcessId(0), VirtualTime::at(30)));
        assert!(d.suspects(ProcessId(0), VirtualTime::at(31)));
        // And it is permanent without further messages.
        assert!(d.suspects(ProcessId(0), VirtualTime::at(100_000)));
    }

    #[test]
    fn accuracy_improves_in_later_rounds() {
        let mut early = fd();
        early.enter_round(1, VirtualTime::ZERO);
        let mut late = fd();
        late.enter_round(10, VirtualTime::ZERO);
        // A gap of 100 ticks: suspicious in round 1, tolerated in round 10.
        assert!(early.suspects(ProcessId(0), VirtualTime::at(100)));
        assert!(!late.suspects(ProcessId(0), VirtualTime::at(100)));
    }

    #[test]
    fn mistakes_double_the_allowance() {
        let mut d = fd();
        d.enter_round(1, VirtualTime::ZERO);
        assert!(d.suspects(ProcessId(0), VirtualTime::at(40)));
        d.observe_message(ProcessId(0), VirtualTime::at(41));
        assert_eq!(d.mistakes(), 1);
        assert_eq!(d.allowance_of(ProcessId(0)), Duration::of(60));
        // The adaptive floor persists even as rounds advance slowly.
        assert!(!d.suspects(ProcessId(0), VirtualTime::at(101)));
        assert!(d.suspects(ProcessId(0), VirtualTime::at(102)));
    }

    #[test]
    fn rounds_never_regress() {
        let mut d = fd();
        d.enter_round(5, VirtualTime::ZERO);
        d.enter_round(3, VirtualTime::ZERO);
        assert_eq!(d.allowance_of(ProcessId(0)), Duration::of(70));
    }

    #[test]
    fn history_records_flips() {
        let mut d = fd();
        d.enter_round(1, VirtualTime::ZERO);
        let _ = d.suspects(ProcessId(1), VirtualTime::at(50));
        d.observe_message(ProcessId(1), VirtualTime::at(60));
        assert_eq!(d.history().len(), 2);
        assert!(d.history()[0].suspected && !d.history()[1].suspected);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_base_rejected() {
        let _ = MutenessDetector::new(1, Duration::ZERO, Duration::of(1));
    }
}
