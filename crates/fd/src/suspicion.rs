//! The failure-detector interface and suspicion history records.

use ftm_sim::{ProcessId, VirtualTime};

/// One flip of an observer's suspicion about a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspicionChange {
    /// The peer whose status changed.
    pub peer: ProcessId,
    /// When the observer's view changed.
    pub at: VirtualTime,
    /// The new status: `true` = suspected.
    pub suspected: bool,
}

/// An unreliable failure detector module, as seen by the protocol actor
/// that embeds it.
///
/// The actor *feeds* the detector (message receipts) and *queries* it
/// (`suspects`). Per the paper, the protocol module may only **read** the
/// suspicion output — it never writes it.
///
/// What the detector means depends on what it is fed:
///
/// * fed every incoming message → a crash-style detector (◇S with a
///   [`crate::TimeoutDetector`] under partial synchrony);
/// * fed only messages *accepted by the protocol state machine* → a
///   muteness detector ◇M — a process sending garbage is as good as mute.
pub trait FailureDetector {
    /// Informs the detector that a relevant message from `peer` was
    /// received at `now`.
    fn observe_message(&mut self, peer: ProcessId, now: VirtualTime);

    /// Returns `true` when `peer` is currently suspected at time `now`.
    ///
    /// Takes `&mut self` because querying may update internal state (e.g.
    /// record a suspicion onset for the history).
    fn suspects(&mut self, peer: ProcessId, now: VirtualTime) -> bool;

    /// The observer's suspicion history (chronological), for property
    /// checking. Detectors not keeping history return an empty slice.
    fn history(&self) -> &[SuspicionChange] {
        &[]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_: &mut dyn FailureDetector) {}
    }

    #[test]
    fn change_record_is_plain_data() {
        let c = SuspicionChange {
            peer: ProcessId(1),
            at: VirtualTime::at(5),
            suspected: true,
        };
        assert_eq!(c, c);
        assert!(format!("{c:?}").contains("suspected"));
    }
}
