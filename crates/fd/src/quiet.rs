//! The Malkhi–Reiter "quiet process" detector (class ◇S(bz)).
//!
//! Historically the first failure-detector extension beyond crashes: a
//! process is *quiet* if some correct process eventually stops receiving
//! messages from it. The paper points out (via Doudou et al.) that
//! quietness is **not** a context-free generalization of crashing — a
//! process can be quiet with respect to one protocol while chattering in
//! another — which motivates the protocol-aware muteness class ◇M. We keep
//! this detector as the baseline the paper compares against.
//!
//! Implementation: fixed-timeout silence detection with rehabilitation on
//! receipt, but **no timeout adaptation** — which is exactly why its
//! mistake rate does not converge on slow-but-correct peers (shown by
//! experiment E7).

use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::suspicion::{FailureDetector, SuspicionChange};

/// Fixed-timeout quiet-process detector.
///
/// # Example
///
/// ```
/// use ftm_fd::{FailureDetector, QuietDetector};
/// use ftm_sim::{Duration, ProcessId, VirtualTime};
///
/// let mut fd = QuietDetector::new(3, Duration::of(20));
/// assert!(fd.suspects(ProcessId(0), VirtualTime::at(50)));
/// fd.observe_message(ProcessId(0), VirtualTime::at(60));
/// // Rehabilitated, but the timeout never adapts:
/// assert!(fd.suspects(ProcessId(0), VirtualTime::at(81)));
/// ```
#[derive(Debug, Clone)]
pub struct QuietDetector {
    last_heard: Vec<VirtualTime>,
    suspected: Vec<bool>,
    timeout: Duration,
    history: Vec<SuspicionChange>,
    mistakes: u64,
}

impl QuietDetector {
    /// Creates a detector over `n` peers with the given fixed timeout.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn new(n: usize, timeout: Duration) -> Self {
        assert!(timeout > Duration::ZERO, "timeout must be positive");
        QuietDetector {
            last_heard: vec![VirtualTime::ZERO; n],
            suspected: vec![false; n],
            timeout,
            history: Vec::new(),
            mistakes: 0,
        }
    }

    /// Number of wrongful suspicions corrected so far.
    pub fn mistakes(&self) -> u64 {
        self.mistakes
    }
}

impl FailureDetector for QuietDetector {
    fn observe_message(&mut self, peer: ProcessId, now: VirtualTime) {
        if self.suspected[peer.index()] {
            self.suspected[peer.index()] = false;
            self.mistakes += 1;
            self.history.push(SuspicionChange {
                peer,
                at: now,
                suspected: false,
            });
        }
        self.last_heard[peer.index()] = now;
    }

    fn suspects(&mut self, peer: ProcessId, now: VirtualTime) -> bool {
        let overdue = now.since(self.last_heard[peer.index()]) > self.timeout;
        if overdue && !self.suspected[peer.index()] {
            self.suspected[peer.index()] = true;
            self.history.push(SuspicionChange {
                peer,
                at: now,
                suspected: true,
            });
        }
        self.suspected[peer.index()] || overdue
    }

    fn history(&self) -> &[SuspicionChange] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspects_after_fixed_silence() {
        let mut d = QuietDetector::new(2, Duration::of(10));
        assert!(!d.suspects(ProcessId(1), VirtualTime::at(10)));
        assert!(d.suspects(ProcessId(1), VirtualTime::at(11)));
    }

    #[test]
    fn timeout_never_adapts_mistakes_repeat() {
        // Peer speaks every 15 ticks; timeout fixed at 10: every gap is a
        // fresh mistake, forever. (Contrast TimeoutDetector which adapts.)
        let mut d = QuietDetector::new(1, Duration::of(10));
        let mut t = 0u64;
        for _ in 0..10 {
            t += 15;
            assert!(d.suspects(ProcessId(0), VirtualTime::at(t)));
            d.observe_message(ProcessId(0), VirtualTime::at(t));
        }
        assert_eq!(d.mistakes(), 10);
    }

    #[test]
    fn history_is_chronological() {
        let mut d = QuietDetector::new(1, Duration::of(5));
        let _ = d.suspects(ProcessId(0), VirtualTime::at(6));
        d.observe_message(ProcessId(0), VirtualTime::at(7));
        let _ = d.suspects(ProcessId(0), VirtualTime::at(20));
        let times: Vec<u64> = d.history().iter().map(|c| c.at.ticks()).collect();
        assert_eq!(times, vec![6, 7, 20]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        let _ = QuietDetector::new(1, Duration::ZERO);
    }
}
