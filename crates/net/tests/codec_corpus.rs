//! Wire-codec corpus: committed golden bytes plus seeded property tests.
//!
//! The golden constants pin the frame and handshake encodings byte for
//! byte — any change to the wire layout fails here first and forces a
//! [`ftm_net::VERSION`] bump. The property tests drive the codec with a
//! seeded PRNG (reproducible, no wall-clock randomness): encode→decode
//! identity over random inputs, and rejection-without-panic for every
//! truncation and for arbitrary garbage.

use std::io::{self, Cursor};

use ftm_crypto::prng::{Rng64, Xoshiro256PlusPlus};
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_net::{read_frame, write_frame, Hello, DEFAULT_MAX_FRAME};

const ROUNDS: usize = 200;

fn hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Golden frame bytes: 4-byte big-endian length prefix, then the payload.
#[test]
fn golden_frame_bytes() {
    let mut buf = Vec::new();
    write_frame(&mut buf, &[0xDE, 0xAD, 0xBE, 0xEF]).expect("write");
    assert_eq!(hex(&buf), "00000004deadbeef");

    let mut empty = Vec::new();
    write_frame(&mut empty, &[]).expect("write empty");
    assert_eq!(hex(&empty), "00000000");
}

/// Golden handshake bytes: magic `"FTMN"`, version 1, tag, fields.
#[test]
fn golden_hello_bytes() {
    let peer = Hello::Peer {
        id: 3,
        cluster: 0xABCD,
    };
    assert_eq!(
        hex(&peer.canonical_bytes()),
        "46544d4e000000010100000003000000000000abcd"
    );

    let client = Hello::Client { cluster: 0xBEEF };
    assert_eq!(
        hex(&client.canonical_bytes()),
        "46544d4e0000000102000000000000beef"
    );

    // And the goldens decode back, so the constants stay honest.
    assert_eq!(
        Hello::from_canonical_bytes(&peer.canonical_bytes()),
        Ok(peer)
    );
    assert_eq!(
        Hello::from_canonical_bytes(&client.canonical_bytes()),
        Ok(client)
    );
}

/// Seeded frame round-trips: random payload lengths and contents survive
/// write→read unchanged, including back-to-back frames on one stream.
#[test]
fn frames_roundtrip_over_seeded_payloads() {
    let mut rng = Xoshiro256PlusPlus::from_seed(0xC0DEC);
    for _ in 0..ROUNDS {
        let len = (rng.next_u64() % 2048) as usize;
        let payload: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("write");
        write_frame(&mut buf, &payload).expect("write twice");
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read"),
            payload
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read"),
            payload
        );
    }
}

/// Seeded handshake round-trips over random ids and cluster values.
#[test]
fn hellos_roundtrip_over_seeded_values() {
    let mut rng = Xoshiro256PlusPlus::from_seed(0x4E110);
    for _ in 0..ROUNDS {
        let hello = if rng.next_u64().is_multiple_of(2) {
            Hello::Peer {
                id: (rng.next_u64() & 0xFFFF_FFFF) as u32,
                cluster: rng.next_u64(),
            }
        } else {
            Hello::Client {
                cluster: rng.next_u64(),
            }
        };
        let bytes = hello.canonical_bytes();
        assert_eq!(Hello::from_canonical_bytes(&bytes), Ok(hello));
    }
}

/// Every strict prefix of a valid frame is an error (EOF), never a panic
/// and never a bogus success.
#[test]
fn every_frame_truncation_is_rejected() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"truncate-me").expect("write");
    for cut in 0..buf.len() {
        let err = read_frame(&mut Cursor::new(&buf[..cut]), DEFAULT_MAX_FRAME)
            .expect_err("prefix must not parse");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
    }
}

/// Every strict prefix of a valid handshake is a decode error.
#[test]
fn every_hello_truncation_is_rejected() {
    let bytes = Hello::Peer {
        id: 7,
        cluster: 0x0123_4567_89AB_CDEF,
    }
    .canonical_bytes();
    for cut in 0..bytes.len() {
        assert!(
            Hello::from_canonical_bytes(&bytes[..cut]).is_err(),
            "prefix of length {cut} must not parse"
        );
    }
}

/// Seeded garbage never panics the decoder: random byte strings either
/// fail to decode or (for the framing layer) yield a bounded payload.
#[test]
fn seeded_garbage_is_rejected_without_panic() {
    let mut rng = Xoshiro256PlusPlus::from_seed(0x6A2BA6E);
    for _ in 0..ROUNDS {
        let len = (rng.next_u64() % 64) as usize;
        let junk: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();

        // Handshake decoding: garbage must error (the magic makes an
        // accidental parse astronomically unlikely, and the decoder also
        // rejects trailing bytes).
        assert!(Hello::from_canonical_bytes(&junk).is_err());

        // Framing: reading garbage with a small cap either errors or
        // returns a payload no longer than the cap.
        if let Ok(payload) = read_frame(&mut Cursor::new(&junk), 16) {
            assert!(payload.len() <= 16);
        }
    }
}
