//! Sim/net cross-check: the same `(n, F)` system, workload and attacker
//! produce the same decisions and the same conviction split whether the
//! stack runs under the deterministic simulator or over loopback TCP.
//!
//! This is the issue's "run the Fig. 1 stack unchanged" acceptance test:
//! the actors are byte-for-byte the same types, only the `Runtime`
//! underneath differs.
//!
//! # What is compared, and what is deliberately not
//!
//! Compared — because they are *content-deterministic* (forced by the
//! protocol, independent of message timing):
//!
//! * every honest replica's decided log, slot for slot, across the two
//!   runtimes. With the attacker signing everything with the wrong key,
//!   all of its messages are rejected at the signature check, so each
//!   slot's certified vector can only be built from the `n − F = 3`
//!   honest INITs — the decided vectors are pinned regardless of
//!   schedule;
//! * the deduplicated conviction set `(observer, culprit, class)`: every
//!   honest replica convicts the attacker of the same tangible fault
//!   class on first contact, and convicts nobody else.
//!
//! Excluded — because they are *schedule-dependent* and legitimately
//! differ between virtual time and wall-clock TCP (see the determinism
//! contract in `ftm-net`'s crate docs): message/byte counters (retry and
//! interleaving dependent), end times (virtual ticks vs elapsed
//! milliseconds), the raw note streams (duplicate detections fire once
//! per offending message received, and how many arrive before halt is a
//! race), and per-round timing metrics.

use std::collections::BTreeSet;

use ftm_core::byzantine::log::ReplicatedLog;
use ftm_core::byzantine::ByzantineConsensus;
use ftm_core::config::ProtocolConfig;
use ftm_core::validator::detections;
use ftm_crypto::rsa::KeyPair;
use ftm_faults::attacks::WrongKeySigner;
use ftm_faults::{log_command, AttackRun, ByzantineLogWrapper};
use ftm_net::{parse_convictions, run_loopback_cluster, ClusterConfig};
use ftm_runtime::time::Duration;
use ftm_runtime::SendBoxedActor;

const N: usize = 4;
const F: usize = 1;
const SEED: u64 = 9;
const SLOTS: u64 = 8;
/// Emulated per-hop network latency for the TCP run. Raw loopback is the
/// degenerate network where a hop (~50 µs) is *smaller* than OS
/// thread-scheduling noise, so whether the attacker's slot-`s` message
/// lands while an observer is still deciding slot `s` becomes a
/// scheduler race — a real network's millisecond hops dominate that
/// noise, exactly like the simulator's delay model does. Injecting a
/// few ms of hop latency restores that regime, making first-contact
/// detection (and with it the conviction split) content-determined
/// rather than schedule-determined.
const HOP_MS: u64 = 5;
const ATTACKER: u32 = 3;

/// The same wrong key on both sides (the attack is seed-deterministic,
/// mirroring [`ftm_faults::FaultBehavior::WrongKey`]).
fn wrong_key() -> KeyPair {
    let mut rng = ftm_crypto::rng_from_seed(0xBAD ^ SEED);
    KeyPair::generate(&mut rng, 128)
}

/// `(observer, culprit, class)` triples, deduplicated: the *set* of
/// convictions is schedule-independent even though the count of repeated
/// detection notes is not.
type Convictions = BTreeSet<(u32, String, String)>;

#[test]
fn simulator_and_tcp_agree_on_decisions_and_convictions() {
    // --- Simulator side -------------------------------------------------
    let sim = AttackRun::new(N, F, SEED, ATTACKER).run_log(SLOTS, |_| {
        Some(Box::new(WrongKeySigner { wrong: wrong_key() }))
    });

    let sim_convictions: Convictions = detections(&sim.trace)
        .into_iter()
        .filter(|d| d.observer.0 != ATTACKER)
        .map(|d| (d.observer.0, d.culprit, d.class))
        .collect();

    // --- TCP side -------------------------------------------------------
    let setup = ProtocolConfig::new(N, F).seed(SEED).setup();
    let cfg = ClusterConfig::new(N, 2, SEED).delivery_delay_ms(HOP_MS);
    let reports = run_loopback_cluster(&cfg, |id| {
        let honest = ReplicatedLog::<ByzantineConsensus>::new(&setup, id, SLOTS, log_command);
        if id.0 == ATTACKER {
            Box::new(ByzantineLogWrapper::new(
                honest,
                Box::new(WrongKeySigner { wrong: wrong_key() }),
                setup.keys[ATTACKER as usize].clone(),
                Duration::of(3),
            )) as SendBoxedActor<_, _>
        } else {
            Box::new(honest)
        }
    })
    .expect("cluster run");

    let net_convictions: Convictions = reports
        .iter()
        .filter(|r| r.me.0 != ATTACKER)
        .flat_map(|r| {
            parse_convictions(&r.notes)
                .into_iter()
                .map(|(culprit, class)| (r.me.0, culprit, class))
        })
        .collect();

    // --- Cross-check ----------------------------------------------------
    for (i, report) in reports.iter().enumerate() {
        if i as u32 == ATTACKER {
            continue;
        }
        let sim_log = sim.decisions[i]
            .as_ref()
            .unwrap_or_else(|| panic!("sim: p{i} never decided"));
        assert_eq!(sim_log.len() as u64, SLOTS, "sim: p{i} lost slots");

        assert!(report.halted, "net: p{i} never halted");
        assert!(!report.contradicted, "net: p{i} contradicted itself");
        let net_log = report
            .decision
            .as_ref()
            .unwrap_or_else(|| panic!("net: p{i} never decided"));
        assert_eq!(
            net_log, sim_log,
            "p{i}: decided log differs between runtimes"
        );
    }

    assert!(
        !sim_convictions.is_empty(),
        "the wrong-key attack went undetected in the simulator"
    );
    for (observer, culprit, class) in &sim_convictions {
        assert_eq!(culprit, "p3", "sim: p{observer} convicted {culprit}");
        assert!(!class.is_empty());
    }
    assert_eq!(
        net_convictions, sim_convictions,
        "conviction sets differ between runtimes"
    );
}
