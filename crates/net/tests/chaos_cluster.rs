//! Chaos tests for the readiness-loop transport: seeded kill/restart of
//! a replica mid-run, abrupt client disconnects, half-open peers and
//! slow-reading clients.
//!
//! All thread spawning goes through `ftm_net::spawn_node` (the
//! D4-sanctioned harness in `cluster.rs`); these tests only raise stop
//! flags, poke sockets and join handles. Progress is observed through
//! `ReplicatedLog::with_slot_hook` counters instead of wall-clock
//! deadlines, so the scenarios are paced by the cluster itself.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ftm_certify::ValueVector;
use ftm_core::byzantine::log::{ReplicatedLog, SlotMsg};
use ftm_core::byzantine::ByzantineConsensus;
use ftm_core::config::ProtocolConfig;
use ftm_crypto::wire::CanonicalEncode;
use ftm_faults::log_command;
use ftm_net::{
    bind_cluster, parse_convictions, rebind, spawn_node, write_frame, ClientConn, Hello,
    NodeConfig, NodeHandle, ServiceReply,
};
use ftm_runtime::{Actor, Context, ProcessId};

const N: usize = 4;
const F: usize = 1;
const CLUSTER: u64 = 0xC4A05;
const CATCHUP_WINDOW: u64 = 16;

/// Polls `cond` every 10 ms for up to 60 s; panics on timeout so a wedged
/// cluster fails the test instead of hanging the suite.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..6000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// An actor that does nothing: single-node tests that only exercise the
/// transport (handshake eviction, client service) run on top of it.
struct Idle;

impl Actor for Idle {
    type Msg = SlotMsg;
    type Decision = Vec<ValueVector>;

    fn on_start(&mut self, _ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>) {}

    fn on_message(
        &mut self,
        _from: ProcessId,
        _msg: &SlotMsg,
        _ctx: &mut Context<'_, SlotMsg, Vec<ValueVector>>,
    ) {
    }
}

/// One replica's config for a bounded chaos run.
fn chaos_cfg(me: ProcessId, addrs: &[String], seed: u64) -> NodeConfig {
    let mut cfg = NodeConfig::new(me, addrs.to_vec(), CLUSTER, seed);
    cfg.exit_on_halt = true;
    cfg.run_timeout_ms = 120_000;
    cfg
}

/// Asserts every report halted with the same complete log and no
/// convictions, returning nothing (panics with the diverging replica).
fn assert_cluster_agrees(reports: &[ftm_net::NetReport<Vec<ValueVector>>], slots: u64) {
    let reference = reports[0]
        .decision
        .as_ref()
        .expect("replica 0 decided its log");
    assert_eq!(reference.len() as u64, slots, "replica 0 lost slots");
    for report in reports {
        let p = report.me;
        assert!(report.halted, "{p} never halted");
        assert!(!report.contradicted, "{p} contradicted itself");
        assert_eq!(
            report.decision.as_ref(),
            Some(reference),
            "{p} diverged from replica 0"
        );
        assert_eq!(
            parse_convictions(&report.notes),
            vec![],
            "{p} convicted someone in a crash-only run"
        );
    }
}

/// Kill one replica mid-run, restart it on the same address with a fresh
/// actor and no barrier: checkpoint catch-up must rebuild its log and the
/// final decided logs must be identical on all four replicas.
#[test]
fn killed_replica_rejoins_via_checkpoint_catchup() {
    const SLOTS: u64 = 24;
    const SEED: u64 = 0x0C4A_0501;
    let setup = ProtocolConfig::new(N, F).seed(SEED).setup();
    let (listeners, addrs) = bind_cluster(N).expect("bind cluster");
    let progress = Arc::new(AtomicU64::new(0));

    let mut handles: Vec<NodeHandle<Vec<ValueVector>>> = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let mut actor = ReplicatedLog::<ByzantineConsensus>::new(&setup, me, SLOTS, log_command)
            .with_catchup(CATCHUP_WINDOW);
        if i == 0 {
            let watch = Arc::clone(&progress);
            actor = actor.with_slot_hook(move |slot, _| {
                watch.store(slot + 1, Ordering::Relaxed);
            });
        }
        handles.push(spawn_node(
            chaos_cfg(me, &addrs, SEED),
            listener,
            Box::new(actor),
            |_, _, _| ServiceReply::reply(Vec::new()),
        ));
    }

    // Let a few slots decide, then kill replica 3 abruptly: its listener
    // and every socket drop, peers see EOF and start redialing.
    wait_until("the first slots to decide", || {
        progress.load(Ordering::Relaxed) >= 3
    });
    let first_run = handles.pop().expect("replica 3").kill().expect("kill");
    assert!(
        !first_run.halted,
        "replica 3 was killed mid-run, not after completing"
    );

    // Outage: the three survivors are a decide quorum and keep going.
    let at_kill = progress.load(Ordering::Relaxed);
    wait_until("progress during the outage", || {
        progress.load(Ordering::Relaxed) >= at_kill + 3
    });

    // Restart with a fresh actor on the same address, skipping the start
    // barrier (peers are already meshed). Catch-up does the rest.
    let me = ProcessId(3);
    let listener = rebind(&addrs[3]).expect("rebind replica 3's address");
    let mut cfg = chaos_cfg(me, &addrs, SEED);
    cfg.start_barrier = false;
    let actor = ReplicatedLog::<ByzantineConsensus>::new(&setup, me, SLOTS, log_command)
        .with_catchup(CATCHUP_WINDOW);
    handles.push(spawn_node(cfg, listener, Box::new(actor), |_, _, _| {
        ServiceReply::reply(Vec::new())
    }));

    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node run"))
        .collect();
    assert_cluster_agrees(&reports, SLOTS);
    let rejoined = &reports[3];
    assert!(
        rejoined.notes.iter().any(|n| n.contains("catchup-applied")),
        "the rejoined replica never applied a catch-up checkpoint"
    );
    assert!(
        reports[..3]
            .iter()
            .any(|r| r.notes.iter().any(|n| n.contains("catchup-sent"))),
        "no survivor answered the rejoined replica's stale traffic"
    );
}

/// A client that drops its connection right after writing a request (no
/// reply read) must not cost the cluster anything: all slots decide,
/// logs stay identical, and later clients are served normally.
#[test]
fn abrupt_client_disconnect_loses_no_slots() {
    const SLOTS: u64 = 12;
    const SEED: u64 = 0x0C4A_0502;
    let setup = ProtocolConfig::new(N, F).seed(SEED).setup();
    let (listeners, addrs) = bind_cluster(N).expect("bind cluster");
    let progress = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));

    let mut handles: Vec<NodeHandle<Vec<ValueVector>>> = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let mut actor = ReplicatedLog::<ByzantineConsensus>::new(&setup, me, SLOTS, log_command)
            .with_catchup(CATCHUP_WINDOW);
        if i == 0 {
            let watch = Arc::clone(&progress);
            actor = actor.with_slot_hook(move |slot, _| {
                watch.store(slot + 1, Ordering::Relaxed);
            });
        }
        let count = Arc::clone(&served);
        handles.push(spawn_node(
            chaos_cfg(me, &addrs, SEED),
            listener,
            Box::new(actor),
            move |_, _, frame| {
                count.fetch_add(1, Ordering::Relaxed);
                ServiceReply::reply(frame.to_vec())
            },
        ));
    }

    wait_until("the cluster to go live", || {
        progress.load(Ordering::Relaxed) >= 1
    });

    // Mid-submit abrupt disconnect: handshake, one request, then the
    // socket drops before the reply is read. The server's reply write
    // fails and the connection is reaped — nothing else may change.
    {
        let mut rude = TcpStream::connect(&addrs[0]).expect("connect");
        write_frame(
            &mut rude,
            &Hello::Client { cluster: CLUSTER }.canonical_bytes(),
        )
        .expect("hello");
        write_frame(&mut rude, b"chaos-submit").expect("submit");
    }

    // A well-behaved client right after still gets full service.
    let mut polite = ClientConn::connect(&addrs[0], CLUSTER).expect("connect");
    let echoed = polite.request(b"after-the-crash").expect("request");
    assert_eq!(echoed, b"after-the-crash");

    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node run"))
        .collect();
    assert_cluster_agrees(&reports, SLOTS);
    assert!(served.load(Ordering::Relaxed) >= 1, "the service never ran");
}

/// A connection that never sends its handshake is evicted after the
/// handshake timeout without affecting clients that do handshake.
#[test]
fn half_open_peer_is_evicted_without_stalling_clients() {
    const SEED: u64 = 0x0C4A_0503;
    let (listeners, addrs) = bind_cluster(1).expect("bind");
    let listener = listeners.into_iter().next().expect("one listener");
    // exit_on_halt stays false: the idle actor never halts, the test
    // stops the node explicitly once the scenario played out.
    let mut cfg = NodeConfig::new(ProcessId(0), addrs.clone(), CLUSTER, SEED);
    cfg.run_timeout_ms = 120_000;
    let handle = spawn_node(cfg, listener, Box::new(Idle), |_, _, frame| {
        ServiceReply::reply(frame.to_vec())
    });

    // Half-open: connected, but no handshake ever.
    let half_open = TcpStream::connect(&addrs[0]).expect("connect half-open");

    let mut client = ClientConn::connect(&addrs[0], CLUSTER).expect("connect client");
    assert_eq!(client.request(b"before").expect("request"), b"before");

    // Outlive the 3 s handshake timeout, then show the node still serves.
    thread::sleep(Duration::from_millis(3500));
    assert_eq!(client.request(b"after").expect("request"), b"after");

    let report = handle.kill().expect("node run");
    drop(half_open);
    assert!(
        report
            .notes
            .iter()
            .any(|n| n.contains("handshake-timeout evicted")),
        "the half-open connection was never evicted: {:?}",
        report.notes
    );
}

/// A client that submits requests but never reads replies must be
/// disconnected at the write-ring cap — bounded memory — while peer
/// traffic and the decided log are untouched.
#[test]
fn slow_client_is_cut_by_backpressure_not_the_peers() {
    const SLOTS: u64 = 12;
    const SEED: u64 = 0x0C4A_0504;
    // Each request earns a 64 KiB reply; an unread handful crosses the
    // 256 KiB client write cap.
    const REPLY_BYTES: usize = 64 * 1024;
    let setup = ProtocolConfig::new(N, F).seed(SEED).setup();
    let (listeners, addrs) = bind_cluster(N).expect("bind cluster");
    let progress = Arc::new(AtomicU64::new(0));

    let mut handles: Vec<NodeHandle<Vec<ValueVector>>> = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let mut actor = ReplicatedLog::<ByzantineConsensus>::new(&setup, me, SLOTS, log_command)
            .with_catchup(CATCHUP_WINDOW);
        if i == 0 {
            let watch = Arc::clone(&progress);
            actor = actor.with_slot_hook(move |slot, _| {
                watch.store(slot + 1, Ordering::Relaxed);
            });
        }
        handles.push(spawn_node(
            chaos_cfg(me, &addrs, SEED),
            listener,
            Box::new(actor),
            |_, _, _| ServiceReply::reply(vec![0u8; REPLY_BYTES]),
        ));
    }

    wait_until("the cluster to go live", || {
        progress.load(Ordering::Relaxed) >= 1
    });

    // Flood requests without ever reading a reply. 40 replies is 2.5 MiB
    // of backlog against a 256 KiB cap, far beyond what kernel socket
    // buffers can hide; the write loop ends early once the server cuts
    // the connection.
    let mut slow = TcpStream::connect(&addrs[0]).expect("connect slow client");
    write_frame(
        &mut slow,
        &Hello::Client { cluster: CLUSTER }.canonical_bytes(),
    )
    .expect("hello");
    for _ in 0..40 {
        if write_frame(&mut slow, b"feed-me").is_err() {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }

    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node run"))
        .collect();
    drop(slow);
    assert_cluster_agrees(&reports, SLOTS);
    assert!(
        reports[0]
            .notes
            .iter()
            .any(|n| n.contains("backpressure-disconnect client")),
        "the slow client was never disconnected: {:?}",
        reports[0].notes
    );
}
