//! End-to-end loopback smoke: four honest replicas of the transformed
//! replicated log agree over real TCP sockets.
//!
//! Every message crosses a socket (even self-sends stay in-process, but
//! peer traffic is framed, written, read back and canonically decoded),
//! so this exercises the full encode→frame→TCP→decode path with the
//! unchanged Fig. 1 actor stack on top.

use ftm_core::byzantine::log::ReplicatedLog;
use ftm_core::byzantine::ByzantineConsensus;
use ftm_core::config::ProtocolConfig;
use ftm_faults::log_command;
use ftm_net::{parse_convictions, run_loopback_cluster, ClusterConfig};

const N: usize = 4;
const F: usize = 1;
const SEED: u64 = 0x10CA1;
const SLOTS: u64 = 5;

#[test]
fn four_honest_replicas_agree_over_tcp() {
    let setup = ProtocolConfig::new(N, F).seed(SEED).setup();
    let cfg = ClusterConfig::new(N, 1, SEED);

    let reports = run_loopback_cluster(&cfg, |id| {
        Box::new(ReplicatedLog::<ByzantineConsensus>::new(
            &setup,
            id,
            SLOTS,
            log_command,
        ))
    })
    .expect("cluster run");

    assert_eq!(reports.len(), N);
    let reference = reports[0]
        .decision
        .as_ref()
        .expect("replica 0 decided its log");
    assert_eq!(reference.len() as u64, SLOTS, "replica 0 lost slots");

    for report in &reports {
        let p = report.me;
        assert!(report.halted, "{p} never halted");
        assert!(!report.contradicted, "{p} contradicted itself");
        assert_eq!(
            report.decision.as_ref(),
            Some(reference),
            "{p} diverged from replica 0"
        );
        assert_eq!(
            parse_convictions(&report.notes),
            vec![],
            "{p} convicted someone in an honest run"
        );
        assert!(report.msgs_received > 0, "{p} never heard from its peers");
    }
}
