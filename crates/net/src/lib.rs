//! A real transport for the runtime-agnostic actor boundary: a
//! single-threaded readiness loop over non-blocking TCP with a
//! length-prefixed wire codec, zero external dependencies.
//!
//! This crate is the second implementation of [`ftm_runtime::Runtime`]
//! (the first is the deterministic simulator in `ftm-sim`). The same actor
//! types — the transformed Byzantine consensus, the replicated log, even
//! the fault-injection wrappers — run here unmodified: sockets replace the
//! simulated network, wall-clock milliseconds replace virtual ticks, and
//! everything above the [`Runtime`](ftm_runtime::Runtime) seam is the
//! byte-for-byte artifact the simulation sweeps validated.
//!
//! # Execution model
//!
//! One thread per node runs everything — an epoll-style readiness loop
//! hand-rolled from safe `std` (`unsafe` is forbidden workspace-wide, so
//! the raw syscalls are out; [`poll`] is the poll(2)-shaped
//! probe built on non-blocking sockets):
//!
//! * every connection (peer or client) is a slab slot holding the socket
//!   plus per-connection read/write **ring buffers** ([`ring`]) that
//!   absorb partial frames and unflushed writes;
//! * the loop accepts, dials, flushes, reads and parses in rounds, and
//!   runs the actor's callbacks inline between rounds — still through
//!   [`ftm_runtime::step`], so an actor never observes two callbacks
//!   concurrently, exactly as in the simulator;
//! * a dropped peer link is redialed with capped exponential **backoff +
//!   deterministic jitter** ([`backoff`]), re-validating the handshake;
//!   frames staged while the link was down are queued (bounded) and
//!   flushed on reconnect, so a restarted replica rejoins the mesh;
//! * a client that stops reading its replies hits the write-ring cap and
//!   is disconnected with a `backpressure-disconnect` note — bounded
//!   memory per connection, no head-of-line blocking of peer traffic.
//!
//! A connection costs two ring buffers instead of two OS threads, which
//! is what lets one node serve thousands of concurrent clients (see
//! [`loadgen`] and the many-client rows in the bench suite).
//!
//! # What survives of the determinism contract
//!
//! Content determinism survives; schedule determinism does not. Message
//! *contents* are still canonical bytes (signatures verify across
//! machines), decisions are still quorum-certified, and the per-replica
//! RNG stream is still seeded. But arrival order, timer interleaving and
//! therefore all timing-dependent counters (rounds, suspicions, end
//! times) vary run to run — see `DESIGN.md` §15 for the precise split,
//! and the sim/net cross-check test for the properties that must agree.
//!
//! This crate is the sanctioned home for wall-clock time (`ftm-lint` D3,
//! confined to `clock.rs`) and test-harness thread spawning (D4, confined
//! to `cluster.rs`) on the transport side; confining both keeps every
//! other crate simulator-pure.

pub mod backoff;
pub mod client;
pub mod clock;
pub mod cluster;
pub mod codec;
pub mod loadgen;
pub mod node;
pub mod poll;
pub mod ring;

pub use backoff::Backoff;
pub use client::ClientConn;
pub use clock::WallClock;
pub use cluster::{
    bind_cluster, rebind, run_loopback_cluster, spawn_node, ClusterConfig, NodeHandle,
};
pub use codec::{frame_into, read_frame, write_frame, Hello, DEFAULT_MAX_FRAME, MAGIC, VERSION};
pub use loadgen::{run_load, LoadConfig, LoadOutcome};
pub use node::{
    parse_convictions, run_node, run_node_controlled, NetReport, NodeConfig, NodeView, ServiceReply,
};
pub use ring::RingBuf;
