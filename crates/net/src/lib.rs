//! A real transport for the runtime-agnostic actor boundary: threaded TCP
//! with a length-prefixed wire codec, zero external dependencies.
//!
//! This crate is the second implementation of [`ftm_runtime::Runtime`]
//! (the first is the deterministic simulator in `ftm-sim`). The same actor
//! types — the transformed Byzantine consensus, the replicated log, even
//! the fault-injection wrappers — run here unmodified: sockets replace the
//! simulated network, wall-clock milliseconds replace virtual ticks, and
//! everything above the [`Runtime`](ftm_runtime::Runtime) seam is the
//! byte-for-byte artifact the simulation sweeps validated.
//!
//! # Threading model
//!
//! Concurrency lives strictly *below* the actor boundary:
//!
//! * one **acceptor** thread per node polls the listener and spawns a
//!   reader per inbound connection;
//! * one **reader** thread per peer/client connection turns the socket
//!   into framed events on an MPSC channel;
//! * one **writer** thread per outbound peer connection drains a frame
//!   queue into the socket (so a slow peer never blocks the event loop);
//! * one **sequential event loop** — the thread that called
//!   [`node::run_node`] — owns the actor and applies the staged-effects
//!   discipline. An actor never observes two callbacks concurrently,
//!   exactly as in the simulator.
//!
//! # What survives of the determinism contract
//!
//! Content determinism survives; schedule determinism does not. Message
//! *contents* are still canonical bytes (signatures verify across
//! machines), decisions are still quorum-certified, and the per-replica
//! RNG stream is still seeded. But arrival order, timer interleaving and
//! therefore all timing-dependent counters (rounds, suspicions, end
//! times) vary run to run — see `DESIGN.md` §15 for the precise split,
//! and the sim/net cross-check test for the properties that must agree.
//!
//! This crate is the sanctioned home for wall-clock time (`ftm-lint` D3)
//! and thread spawning (D4) on the transport side: real transports need
//! real clocks and real threads, and confining both here keeps every
//! other crate simulator-pure.

pub mod client;
pub mod clock;
pub mod cluster;
pub mod codec;
pub mod node;

pub use client::ClientConn;
pub use clock::WallClock;
pub use cluster::{run_loopback_cluster, ClusterConfig};
pub use codec::{read_frame, write_frame, Hello, DEFAULT_MAX_FRAME, MAGIC, VERSION};
pub use node::{parse_convictions, run_node, NetReport, NodeConfig, NodeView, ServiceReply};
