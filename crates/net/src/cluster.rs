//! In-process loopback clusters: `n` replicas on `127.0.0.1`, one thread
//! each, real sockets in between.
//!
//! This is the transport-side twin of `ftm_sim::Simulation::run` for
//! tests: the same actor factory, but every message crosses a TCP
//! connection. Listeners are bound (on ephemeral ports) *before* any node
//! thread starts, so there is no dial race — by the time a writer
//! retries, the target port exists.

use std::io;
use std::net::TcpListener;
use std::thread;

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_runtime::{Payload, ProcessId, SendBoxedActor};

use crate::node::{run_node, NetReport, NodeConfig, ServiceReply};

/// Shape of a loopback cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub n: usize,
    /// Cluster id used in every handshake.
    pub cluster: u64,
    /// Base seed; each node derives its own stream from it.
    pub seed: u64,
    /// Per-node wall-clock bound in ms (a node that neither halts nor
    /// times out would hang the join).
    pub run_timeout_ms: u64,
    /// Artificial per-hop delivery latency in ms (see
    /// [`NodeConfig::delivery_delay_ms`]); 0 = raw loopback speed.
    pub delivery_delay_ms: u64,
}

impl ClusterConfig {
    /// A cluster of `n` with a 30 s per-node bound.
    pub fn new(n: usize, cluster: u64, seed: u64) -> Self {
        ClusterConfig {
            n,
            cluster,
            seed,
            run_timeout_ms: 30_000,
            delivery_delay_ms: 0,
        }
    }

    /// Sets the artificial per-hop latency (emulated network time).
    pub fn delivery_delay_ms(mut self, ms: u64) -> Self {
        self.delivery_delay_ms = ms;
        self
    }
}

/// Runs `n` replicas built by `factory` over loopback TCP until each
/// halts (or times out), returning their reports in process-id order.
///
/// Nodes run with [`NodeConfig::exit_on_halt`] and no client service —
/// this is the bounded, self-terminating mode used by tests and the
/// sim/net cross-check.
///
/// # Errors
///
/// Listener binding failures, or a node thread that panicked.
pub fn run_loopback_cluster<M, D, F>(
    cfg: &ClusterConfig,
    factory: F,
) -> io::Result<Vec<NetReport<D>>>
where
    M: Payload + CanonicalEncode + CanonicalDecode + 'static,
    D: Clone + std::fmt::Debug + PartialEq + Send + 'static,
    F: Fn(ProcessId) -> SendBoxedActor<M, D>,
{
    // Bind everything first: the full address list must exist before the
    // first node starts dialing.
    let mut listeners = Vec::with_capacity(cfg.n);
    let mut addrs = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?.to_string());
        listeners.push(listener);
    }

    let mut handles = Vec::with_capacity(cfg.n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let mut node_cfg = NodeConfig::new(me, addrs.clone(), cfg.cluster, cfg.seed);
        node_cfg.exit_on_halt = true;
        node_cfg.run_timeout_ms = cfg.run_timeout_ms;
        node_cfg.delivery_delay_ms = cfg.delivery_delay_ms;
        let actor = factory(me);
        handles.push(thread::spawn(move || {
            run_node(&node_cfg, listener, actor, |_, _, _| {
                ServiceReply::reply(Vec::new())
            })
        }));
    }

    let mut reports = Vec::with_capacity(cfg.n);
    for handle in handles {
        let report = handle
            .join()
            .map_err(|_| io::Error::other("node thread panicked"))??;
        reports.push(report);
    }
    Ok(reports)
}
