//! In-process loopback clusters: `n` replicas on `127.0.0.1`, one thread
//! each, real sockets in between.
//!
//! This is the transport-side twin of `ftm_sim::Simulation::run` for
//! tests: the same actor factory, but every message crosses a TCP
//! connection. Listeners are bound (on ephemeral ports) *before* any node
//! thread starts, so there is no dial race — by the time a writer
//! retries, the target port exists.

use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_runtime::{Payload, ProcessId, SendBoxedActor};

use crate::node::{run_node, run_node_controlled, NetReport, NodeConfig, NodeView, ServiceReply};

/// Shape of a loopback cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub n: usize,
    /// Cluster id used in every handshake.
    pub cluster: u64,
    /// Base seed; each node derives its own stream from it.
    pub seed: u64,
    /// Per-node wall-clock bound in ms (a node that neither halts nor
    /// times out would hang the join).
    pub run_timeout_ms: u64,
    /// Artificial per-hop delivery latency in ms (see
    /// [`NodeConfig::delivery_delay_ms`]); 0 = raw loopback speed.
    pub delivery_delay_ms: u64,
}

impl ClusterConfig {
    /// A cluster of `n` with a 30 s per-node bound.
    pub fn new(n: usize, cluster: u64, seed: u64) -> Self {
        ClusterConfig {
            n,
            cluster,
            seed,
            run_timeout_ms: 30_000,
            delivery_delay_ms: 0,
        }
    }

    /// Sets the artificial per-hop latency (emulated network time).
    pub fn delivery_delay_ms(mut self, ms: u64) -> Self {
        self.delivery_delay_ms = ms;
        self
    }
}

/// Binds `n` loopback listeners on ephemeral ports, returning them with
/// their address strings (in process-id order). Binding everything before
/// any node starts is what makes the mesh dial race-free.
///
/// # Errors
///
/// Propagates listener binding failures.
pub fn bind_cluster(n: usize) -> io::Result<(Vec<TcpListener>, Vec<String>)> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?.to_string());
        listeners.push(listener);
    }
    Ok((listeners, addrs))
}

/// Re-binds a listener on `addr` — the restart half of a kill/restart
/// cycle, where the dead node's listener must come back on the *same*
/// address so peers' redials find it.
///
/// The old listener's socket may not be released the instant its node
/// thread is stopped, so binding retries in 10 ms steps for up to ~2 s
/// before giving up.
///
/// # Errors
///
/// The last bind error if the address never frees up.
pub fn rebind(addr: &str) -> io::Result<TcpListener> {
    let mut last = None;
    for _ in 0..200 {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => last = Some(e),
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    Err(last.unwrap_or_else(|| io::Error::other("rebind: bind never attempted")))
}

/// A replica running on its own harness thread, stoppable from the test.
///
/// This is the controllable twin of one [`run_loopback_cluster`] slot,
/// built on [`run_node_controlled`]: the chaos tests use it to kill a
/// replica mid-run (dropping its listener and every socket), restart it
/// on the same address ([`rebind`]) and assert the cluster converges.
#[derive(Debug)]
pub struct NodeHandle<D> {
    stop: Arc<AtomicBool>,
    thread: thread::JoinHandle<io::Result<NetReport<D>>>,
}

impl<D> NodeHandle<D> {
    /// Raises the stop flag; the node exits its loop at the next
    /// iteration (bounded exit flush, then sockets drop).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether the node thread has exited (halt, stop, or timeout).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Waits for the node to exit and returns its report.
    ///
    /// # Errors
    ///
    /// Node setup failures, or a panicked node thread.
    pub fn join(self) -> io::Result<NetReport<D>> {
        self.thread
            .join()
            .map_err(|_| io::Error::other("node thread panicked"))?
    }

    /// [`stop`](NodeHandle::stop) + [`join`](NodeHandle::join): the
    /// kill half of a kill/restart cycle.
    ///
    /// # Errors
    ///
    /// As for [`join`](NodeHandle::join).
    pub fn kill(self) -> io::Result<NetReport<D>> {
        self.stop();
        self.join()
    }
}

/// Spawns one replica on a fresh harness thread, returning its handle.
///
/// The node runs `actor` over `listener` with `service` answering client
/// frames, until it halts (with [`NodeConfig::exit_on_halt`]), its run
/// bound trips, or [`NodeHandle::stop`] is called. This is the sanctioned
/// thread-spawn site for transport tests (`ftm-lint` D4): integration
/// tests build kill/restart scenarios from these handles instead of
/// spawning threads themselves.
pub fn spawn_node<M, D, S>(
    cfg: NodeConfig,
    listener: TcpListener,
    actor: SendBoxedActor<M, D>,
    service: S,
) -> NodeHandle<D>
where
    M: Payload + CanonicalEncode + CanonicalDecode + 'static,
    D: Clone + std::fmt::Debug + PartialEq + Send + 'static,
    S: FnMut(&mut SendBoxedActor<M, D>, &NodeView<'_, D>, &[u8]) -> ServiceReply + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = thread::spawn(move || {
        run_node_controlled(&cfg, listener, actor, service, &flag).map(|(report, _actor)| report)
    });
    NodeHandle { stop, thread }
}

/// Runs `n` replicas built by `factory` over loopback TCP until each
/// halts (or times out), returning their reports in process-id order.
///
/// Nodes run with [`NodeConfig::exit_on_halt`] and no client service —
/// this is the bounded, self-terminating mode used by tests and the
/// sim/net cross-check.
///
/// # Errors
///
/// Listener binding failures, or a node thread that panicked.
pub fn run_loopback_cluster<M, D, F>(
    cfg: &ClusterConfig,
    factory: F,
) -> io::Result<Vec<NetReport<D>>>
where
    M: Payload + CanonicalEncode + CanonicalDecode + 'static,
    D: Clone + std::fmt::Debug + PartialEq + Send + 'static,
    F: Fn(ProcessId) -> SendBoxedActor<M, D>,
{
    // Bind everything first: the full address list must exist before the
    // first node starts dialing.
    let (listeners, addrs) = bind_cluster(cfg.n)?;

    let mut handles = Vec::with_capacity(cfg.n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let mut node_cfg = NodeConfig::new(me, addrs.clone(), cfg.cluster, cfg.seed);
        node_cfg.exit_on_halt = true;
        node_cfg.run_timeout_ms = cfg.run_timeout_ms;
        node_cfg.delivery_delay_ms = cfg.delivery_delay_ms;
        let actor = factory(me);
        handles.push(thread::spawn(move || {
            run_node(&node_cfg, listener, actor, |_, _, _| {
                ServiceReply::reply(Vec::new())
            })
        }));
    }

    let mut reports = Vec::with_capacity(cfg.n);
    for handle in handles {
        let report = handle
            .join()
            .map_err(|_| io::Error::other("node thread panicked"))??;
        reports.push(report);
    }
    Ok(reports)
}
