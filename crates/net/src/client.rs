//! Client side of the request/reply protocol: one blocking connection,
//! framed requests, framed replies.

use std::io;
use std::net::TcpStream;

use ftm_crypto::wire::CanonicalEncode;

use crate::codec::{read_frame, write_frame, Hello, DEFAULT_MAX_FRAME};

/// A blocking client connection to one replica.
///
/// Requests are strictly serialized: each [`request`](ClientConn::request)
/// writes one frame and waits for exactly one reply frame. The replica's
/// event loop services requests between protocol steps, so a request
/// observes a consistent snapshot of the replica's state.
#[derive(Debug)]
pub struct ClientConn {
    stream: TcpStream,
    max_frame: usize,
}

impl ClientConn {
    /// Connects to `addr` and performs the client handshake for `cluster`.
    ///
    /// # Errors
    ///
    /// Propagates connection and handshake-write failures.
    pub fn connect(addr: &str, cluster: u64) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &Hello::Client { cluster }.canonical_bytes())?;
        Ok(ClientConn {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request frame and blocks for the reply frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; an oversized reply is `InvalidData`.
    pub fn request(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, payload)?;
        read_frame(&mut self.stream, self.max_frame)
    }
}
