//! Wall-clock time source mapping real milliseconds onto [`VirtualTime`].
//!
//! The simulator's ticks are dimensionless; the transport interprets one
//! tick as one millisecond. Protocol timeouts tuned in the simulator
//! (muteness timeout 150 ticks, heartbeat every 40) therefore become
//! 150 ms / 40 ms on the wire — comfortably above loopback latency, so
//! the failure-detector behavior carries over qualitatively.
//!
//! This module is THE sanctioned wall-clock call site outside
//! `crates/bench/src/timing.rs` (`ftm-lint` D3): a real transport *is* a
//! timing boundary, but every other file in this crate — the node loop,
//! the poll probe, the load generator — reads time through [`WallClock`]
//! rather than touching `Instant` itself, so the raw clock stays in one
//! audited place.

use std::time::Instant;

use ftm_runtime::VirtualTime;

/// A monotonic clock measuring milliseconds since its own start.
///
/// Each node starts its own clock, so `VirtualTime` values are local to a
/// replica (as in the asynchronous model: no global clock). Only
/// *differences* are meaningful across replicas.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Starts a clock reading zero now.
    pub fn start() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`start`](WallClock::start), as a
    /// virtual instant (saturating at `u64::MAX` after ~585 million
    /// years of uptime).
    pub fn now(&self) -> VirtualTime {
        let ms = self.origin.elapsed().as_millis();
        VirtualTime::at(u64::try_from(ms).unwrap_or(u64::MAX))
    }

    /// Microseconds elapsed since [`start`](WallClock::start) — the
    /// resolution used for client-request latency percentiles, where
    /// whole milliseconds would quantize loopback round-trips to zero.
    pub fn micros(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Real-time span from now until the virtual instant `at` (zero if
    /// `at` is already past). Used to bound channel waits so timers fire
    /// on schedule.
    pub fn until(&self, at: VirtualTime) -> std::time::Duration {
        std::time::Duration::from_millis(at.ticks().saturating_sub(self.now().ticks()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_from_zero() {
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(a.ticks() < 10_000, "fresh clock should read near zero");
        assert!(b >= a);
    }

    #[test]
    fn until_is_zero_for_past_instants() {
        let clock = WallClock::start();
        assert_eq!(clock.until(VirtualTime::ZERO), std::time::Duration::ZERO);
    }

    #[test]
    fn until_reaches_into_the_future() {
        let clock = WallClock::start();
        let target = clock.now() + ftm_runtime::Duration::of(60_000);
        let wait = clock.until(target);
        assert!(wait > std::time::Duration::from_millis(50_000));
        assert!(wait <= std::time::Duration::from_millis(60_000));
    }
}
