//! Capped exponential backoff with deterministic jitter.
//!
//! Both the initial dial-retry and the steady-state peer reconnect path
//! share one policy: delays double from [`Backoff::BASE_MS`] up to
//! [`Backoff::CAP_MS`], and each delay adds a jitter term drawn from the
//! node's deterministic xoshiro stream (so the full schedule is a pure
//! function of the seed — unit-testable, replayable). A successful
//! handshake resets the schedule to the base delay.

use ftm_crypto::prng::{Rng64, Xoshiro256PlusPlus};

/// Deterministic capped-exponential backoff schedule for one peer link.
#[derive(Debug)]
pub struct Backoff {
    rng: Xoshiro256PlusPlus,
    /// Consecutive failures since the last reset.
    failures: u32,
}

impl Backoff {
    /// First retry delay in milliseconds.
    pub const BASE_MS: u64 = 20;
    /// Hard ceiling on the exponential term, in milliseconds.
    pub const CAP_MS: u64 = 2_000;

    /// A schedule seeded from the node's derived per-process stream.
    ///
    /// Callers derive `seed` per (node, peer) so links don't share a
    /// jitter stream: e.g. `derive_seed(cfg.seed, me) ^ peer`.
    pub fn new(seed: u64) -> Self {
        Backoff {
            rng: Xoshiro256PlusPlus::from_seed(seed),
            failures: 0,
        }
    }

    /// Consecutive failures recorded since the last [`reset`](Self::reset).
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Records a failure and returns the delay to wait before the next
    /// attempt: `min(BASE << failures, CAP)` plus jitter in
    /// `[0, delay/2]` drawn from the deterministic stream.
    pub fn next_delay_ms(&mut self) -> u64 {
        let exp = self.failures.min(20);
        self.failures = self.failures.saturating_add(1);
        let base = Self::BASE_MS.saturating_shl(exp).min(Self::CAP_MS);
        let jitter = self.rng.next_u64() % (base / 2 + 1);
        base + jitter
    }

    /// Clears the failure count after a successful handshake, so the next
    /// outage restarts from the base delay.
    pub fn reset(&mut self) {
        self.failures = 0;
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> Self {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_given_the_seed() {
        let mut a = Backoff::new(0xB0FF);
        let mut b = Backoff::new(0xB0FF);
        let sched_a: Vec<u64> = (0..12).map(|_| a.next_delay_ms()).collect();
        let sched_b: Vec<u64> = (0..12).map(|_| b.next_delay_ms()).collect();
        assert_eq!(sched_a, sched_b);
        // Different seeds give a different jitter stream (same envelope).
        let mut c = Backoff::new(0xB0FF ^ 1);
        let sched_c: Vec<u64> = (0..12).map(|_| c.next_delay_ms()).collect();
        assert_ne!(sched_a, sched_c);
    }

    #[test]
    fn delays_double_to_the_cap_with_bounded_jitter() {
        let mut b = Backoff::new(7);
        for k in 0..16u32 {
            let d = b.next_delay_ms();
            let base = (Backoff::BASE_MS << k.min(20)).min(Backoff::CAP_MS);
            assert!(d >= base, "attempt {k}: {d} below envelope {base}");
            assert!(
                d <= base + base / 2,
                "attempt {k}: {d} above jitter bound {}",
                base + base / 2
            );
        }
        // Far past the cap the envelope stays pinned.
        for _ in 0..100 {
            let d = b.next_delay_ms();
            assert!((Backoff::CAP_MS..=Backoff::CAP_MS * 3 / 2).contains(&d));
        }
    }

    #[test]
    fn reset_restarts_from_the_base_delay() {
        let mut b = Backoff::new(99);
        for _ in 0..10 {
            b.next_delay_ms();
        }
        assert_eq!(b.failures(), 10);
        b.reset();
        assert_eq!(b.failures(), 0);
        let d = b.next_delay_ms();
        assert!(d <= Backoff::BASE_MS + Backoff::BASE_MS / 2);
    }
}
