//! Byte ring buffers for the readiness loop's per-connection I/O state.
//!
//! Every connection owns two [`RingBuf`]s: a *read* ring accumulating
//! partial frames straight off the socket, and a *write* ring holding
//! encoded frames the loop has not yet managed to flush. Both grow by
//! doubling up to a hard cap — the cap is the backpressure boundary: a
//! write ring that would exceed it refuses the push, and the loop reacts
//! by disconnecting the slow reader (client) or spilling to the per-peer
//! reconnect queue (peer).
//!
//! The buffer is a classic power-of-two circular array: `head` is the
//! read cursor, `len` the live byte count, and the two-slice views
//! (`peek`) expose the contiguous runs without copying.

use std::io::{self, Read, Write};

/// Minimum allocation once a buffer holds any bytes.
const MIN_CAP: usize = 4096;

/// A growable circular byte buffer with a hard capacity cap.
#[derive(Debug)]
pub struct RingBuf {
    buf: Vec<u8>,
    head: usize,
    len: usize,
    max: usize,
}

impl RingBuf {
    /// An empty ring that will never grow beyond `max` bytes.
    pub fn with_max(max: usize) -> Self {
        RingBuf {
            buf: Vec::new(),
            head: 0,
            len: 0,
            max: max.max(MIN_CAP),
        }
    }

    /// Live bytes currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The hard capacity cap (backpressure boundary).
    pub fn max(&self) -> usize {
        self.max
    }

    /// Bytes that can still be pushed before hitting the cap.
    pub fn free(&self) -> usize {
        self.max - self.len
    }

    /// Grows the backing store to at least `need` live-byte capacity
    /// (power-of-two, capped at `max`). Returns `false` if `need`
    /// exceeds the cap.
    fn reserve(&mut self, need: usize) -> bool {
        if need > self.max {
            return false;
        }
        if need <= self.buf.len() {
            return true;
        }
        let mut cap = self.buf.len().max(MIN_CAP);
        while cap < need {
            cap *= 2;
        }
        let cap = cap.min(self.max.next_power_of_two());
        // Re-linearize into the new allocation.
        let mut next = vec![0u8; cap];
        let (a, b) = self.peek();
        next[..a.len()].copy_from_slice(a);
        next[a.len()..a.len() + b.len()].copy_from_slice(b);
        self.head = 0;
        self.buf = next;
        true
    }

    /// The two contiguous live-byte slices, in order (second may be empty).
    pub fn peek(&self) -> (&[u8], &[u8]) {
        if self.buf.is_empty() || self.len == 0 {
            return (&[], &[]);
        }
        let end = self.head + self.len;
        if end <= self.buf.len() {
            (&self.buf[self.head..end], &[])
        } else {
            let wrap = end - self.buf.len();
            (&self.buf[self.head..], &self.buf[..wrap])
        }
    }

    /// Copies the first `n` live bytes into `out` (which must be at least
    /// `n` long) without consuming them. Returns `false` if fewer than `n`
    /// bytes are buffered.
    pub fn copy_to(&self, out: &mut [u8], n: usize) -> bool {
        if n > self.len {
            return false;
        }
        let (a, b) = self.peek();
        if n <= a.len() {
            out[..n].copy_from_slice(&a[..n]);
        } else {
            out[..a.len()].copy_from_slice(a);
            out[a.len()..n].copy_from_slice(&b[..n - a.len()]);
        }
        true
    }

    /// Drops the first `n` live bytes (saturating).
    pub fn consume(&mut self, n: usize) {
        let n = n.min(self.len);
        self.len -= n;
        if self.len == 0 {
            self.head = 0;
        } else {
            self.head = (self.head + n) % self.buf.len();
        }
    }

    /// Appends `data`, growing as needed. Returns `false` (leaving the
    /// ring unchanged) if the push would exceed the cap.
    pub fn push(&mut self, data: &[u8]) -> bool {
        if !self.reserve(self.len + data.len()) {
            return false;
        }
        let start = (self.head + self.len) % self.buf.len();
        let tail_room = self.buf.len() - start;
        if data.len() <= tail_room {
            self.buf[start..start + data.len()].copy_from_slice(data);
        } else {
            self.buf[start..].copy_from_slice(&data[..tail_room]);
            self.buf[..data.len() - tail_room].copy_from_slice(&data[tail_room..]);
        }
        self.len += data.len();
        true
    }

    /// Reads from `r` into the ring's spare room (growing toward the cap
    /// first), returning the byte count. `Ok(0)` means either EOF or a
    /// full ring — callers distinguish via [`free`](RingBuf::free).
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        if self.free() == 0 {
            return Ok(0);
        }
        // Grow eagerly so large frames are read in few syscalls.
        let want = (self.len + self.free().min(64 * 1024)).max(MIN_CAP);
        if !self.reserve(want.min(self.max)) {
            return Ok(0);
        }
        let start = (self.head + self.len) % self.buf.len();
        let writable_here = (self.buf.len() - start).min(self.buf.len() - self.len);
        let n = r.read(&mut self.buf[start..start + writable_here])?;
        self.len += n;
        Ok(n)
    }

    /// Writes buffered bytes to `w`, consuming what was accepted and
    /// returning the byte count.
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let n = {
            let (a, _) = self.peek();
            if a.is_empty() {
                return Ok(0);
            }
            w.write(a)?
        };
        self.consume(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_peek_consume_roundtrip_with_wraparound() {
        let mut rb = RingBuf::with_max(1 << 20);
        for round in 0..50u32 {
            let chunk: Vec<u8> = (0..997).map(|i| ((i as u32 + round) % 251) as u8).collect();
            assert!(rb.push(&chunk));
            let mut out = vec![0u8; 500];
            assert!(rb.copy_to(&mut out, 500));
            assert_eq!(&out[..], &chunk[..500]);
            rb.consume(500);
            // Drain the remainder to keep the head moving through wraps.
            let rest = rb.len();
            let mut out = vec![0u8; rest];
            assert!(rb.copy_to(&mut out, rest));
            rb.consume(rest);
            assert!(rb.is_empty());
        }
    }

    #[test]
    fn cap_is_a_hard_boundary() {
        let mut rb = RingBuf::with_max(MIN_CAP);
        assert!(rb.push(&vec![7u8; MIN_CAP]));
        assert!(!rb.push(&[1]), "push past the cap must be refused");
        assert_eq!(rb.len(), MIN_CAP);
        rb.consume(1);
        assert!(rb.push(&[1]), "freeing a byte reopens exactly that byte");
    }

    #[test]
    fn io_roundtrip_through_std_cursors() {
        let mut rb = RingBuf::with_max(1 << 16);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        let mut src = io::Cursor::new(data.clone());
        let mut total = 0;
        while total < data.len() {
            let n = rb.read_from(&mut src).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, data.len());
        let mut sink = Vec::new();
        while !rb.is_empty() {
            rb.write_to(&mut sink).unwrap();
        }
        assert_eq!(sink, data);
    }

    #[test]
    fn partial_copy_fails_when_short() {
        let mut rb = RingBuf::with_max(1 << 16);
        rb.push(&[1, 2, 3]);
        let mut out = [0u8; 4];
        assert!(!rb.copy_to(&mut out, 4));
        assert!(rb.copy_to(&mut out, 3));
        assert_eq!(&out[..3], &[1, 2, 3]);
    }
}
