//! Single-threaded many-client load generator for the readiness-loop
//! transport.
//!
//! The threaded transport needed one OS thread per simulated client; the
//! readiness loop needs none — and neither does the load side. One
//! [`run_load`] call drives `clients` concurrent connections from a
//! single thread with the same non-blocking try-I/O pattern the server
//! uses: each client keeps exactly one request outstanding (strictly
//! serialized, like [`crate::ClientConn`]), and per-request latency is
//! sampled in integer microseconds from [`WallClock::micros`].
//!
//! The caller supplies two closures: one building the request frame for
//! `(client, seq)` and one vetting a reply frame. This keeps the module
//! protocol-agnostic — `ftm-load` feeds it `Submit` frames, the bench
//! suite feeds it whatever it measures.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use ftm_crypto::wire::CanonicalEncode;

use crate::backoff::Backoff;
use crate::clock::WallClock;
use crate::codec::{frame_into, Hello, DEFAULT_MAX_FRAME};
use crate::poll::{poll, PollFd, POLLIN};
use crate::ring::RingBuf;

/// Shape of one many-client load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of concurrent client connections.
    pub clients: usize,
    /// Replica addresses; client `i` connects to `targets[i % len]`.
    pub targets: Vec<String>,
    /// Cluster id for the client handshake.
    pub cluster: u64,
    /// Requests each client performs before closing.
    pub requests_per_client: u64,
    /// Seed for the reconnect backoff jitter streams.
    pub seed: u64,
    /// Wall-clock bound on the whole run, in ms.
    pub timeout_ms: u64,
}

/// Outcome of a [`run_load`] call. Latencies are integer microseconds.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Requests that received an accepted reply.
    pub completed: u64,
    /// Replies the caller's vetting closure rejected.
    pub rejected: u64,
    /// Connection-level failures (each triggers a backoff + reconnect).
    pub reconnects: u64,
    /// Wall-clock duration of the run in ms.
    pub elapsed_ms: u64,
    /// Median request latency in µs (0 if no samples).
    pub p50_us: u64,
    /// 95th-percentile request latency in µs (0 if no samples).
    pub p95_us: u64,
}

/// One client connection's state in the load loop.
struct LoadClient {
    stream: Option<TcpStream>,
    rb: RingBuf,
    wb: RingBuf,
    /// Requests completed (accepted replies).
    done: u64,
    /// Sequence number of the in-flight request, if one is outstanding.
    inflight: Option<u64>,
    /// Next sequence number to submit.
    next_seq: u64,
    /// µs timestamp of the in-flight request's send.
    sent_us: u64,
    backoff: Backoff,
    /// ms timestamp before which no reconnect attempt is made.
    next_dial_ms: u64,
}

impl LoadClient {
    /// Drops the connection and schedules a backoff-gated reconnect; the
    /// in-flight request (if any) will be resubmitted on the new
    /// connection.
    fn fail(&mut self, now_ms: u64, reconnects: &mut u64) {
        self.stream = None;
        self.rb = RingBuf::with_max(DEFAULT_MAX_FRAME + 4);
        self.wb = RingBuf::with_max(DEFAULT_MAX_FRAME + 4);
        self.inflight = None;
        self.next_dial_ms = now_ms + self.backoff.next_delay_ms();
        *reconnects += 1;
    }
}

/// Percentile of a sorted sample vector by integer ratio (`idx =
/// len * pct / 100`, clamped), avoiding float arithmetic (lint D1).
fn percentile_us(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() as u64 * pct / 100).min(sorted.len() as u64 - 1) as usize;
    sorted[idx]
}

/// Drives `cfg.clients` concurrent connections until every client has
/// completed its request budget (or the timeout trips).
///
/// `make_request(client, seq)` builds the request frame payload;
/// `accept_reply(client, reply)` returns whether the reply counts as
/// completed.
///
/// # Errors
///
/// Returns `Err` only when no target address resolves; per-connection
/// failures are absorbed into backoff-gated reconnects.
pub fn run_load<Q, R>(
    cfg: &LoadConfig,
    mut make_request: Q,
    mut accept_reply: R,
) -> io::Result<LoadOutcome>
where
    Q: FnMut(usize, u64) -> Vec<u8>,
    R: FnMut(usize, &[u8]) -> bool,
{
    let targets: Vec<_> = cfg
        .targets
        .iter()
        .map(|t| {
            t.to_socket_addrs()
                .ok()
                .and_then(|mut a| a.next())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, format!("bad target {t}"))
                })
        })
        .collect::<Result<_, _>>()?;
    if targets.is_empty() || cfg.clients == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "need at least one target and one client",
        ));
    }
    let clock = WallClock::start();
    let mut clients: Vec<LoadClient> = (0..cfg.clients)
        .map(|i| LoadClient {
            stream: None,
            rb: RingBuf::with_max(DEFAULT_MAX_FRAME + 4),
            wb: RingBuf::with_max(DEFAULT_MAX_FRAME + 4),
            done: 0,
            inflight: None,
            next_seq: 0,
            sent_us: 0,
            backoff: Backoff::new(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            next_dial_ms: 0,
        })
        .collect();
    let mut samples: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let mut reconnects = 0u64;

    loop {
        let now_ms = clock.now().ticks();
        if now_ms >= cfg.timeout_ms {
            break;
        }
        let mut all_done = true;
        let mut busy = false;
        for (i, c) in clients.iter_mut().enumerate() {
            if c.done >= cfg.requests_per_client {
                c.stream = None;
                continue;
            }
            all_done = false;
            // (Re)connect when due.
            if c.stream.is_none() {
                if now_ms < c.next_dial_ms {
                    continue;
                }
                let addr = targets[i % targets.len()];
                match TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(300)) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        if s.set_nonblocking(true).is_err() {
                            c.fail(now_ms, &mut reconnects);
                            continue;
                        }
                        frame_into(
                            &mut c.wb,
                            &Hello::Client {
                                cluster: cfg.cluster,
                            }
                            .canonical_bytes(),
                        );
                        c.stream = Some(s);
                        c.backoff.reset();
                        busy = true;
                    }
                    Err(_) => {
                        c.fail(now_ms, &mut reconnects);
                        continue;
                    }
                }
            }
            // Stage the next request when idle.
            if c.inflight.is_none() {
                let seq = c.next_seq;
                let req = make_request(i, seq);
                if frame_into(&mut c.wb, &req) {
                    c.inflight = Some(seq);
                    c.next_seq += 1;
                    c.sent_us = clock.micros();
                    busy = true;
                }
            }
            // Flush.
            let mut failed = false;
            if let Some(stream) = &c.stream {
                while !c.wb.is_empty() {
                    match c.wb.write_to(&mut &*stream) {
                        Ok(0) => break,
                        Ok(_) => busy = true,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            if failed {
                c.fail(now_ms, &mut reconnects);
            }
        }
        if all_done {
            break;
        }
        // Poll all live sockets for replies; sleep only when idle.
        let wait = if busy {
            std::time::Duration::ZERO
        } else {
            std::time::Duration::from_millis(5)
        };
        let live: Vec<usize> = (0..clients.len())
            .filter(|&i| clients[i].stream.is_some() && clients[i].done < cfg.requests_per_client)
            .collect();
        if live.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
            continue;
        }
        let ready: Vec<usize> = {
            let mut fds: Vec<PollFd<'_>> = live
                .iter()
                .map(|&i| PollFd::new(clients[i].stream.as_ref().expect("live"), POLLIN))
                .collect();
            if poll(&mut fds, wait) == 0 {
                Vec::new()
            } else {
                live.iter()
                    .zip(&fds)
                    .filter(|(_, fd)| fd.revents & POLLIN != 0)
                    .map(|(&i, _)| i)
                    .collect()
            }
        };
        let now_ms = clock.now().ticks();
        for i in ready {
            let c = &mut clients[i];
            let mut failed = false;
            if let Some(stream) = &c.stream {
                loop {
                    if c.rb.free() == 0 {
                        break;
                    }
                    match c.rb.read_from(&mut &*stream) {
                        Ok(0) => {
                            failed = true;
                            break;
                        }
                        Ok(_) => {}
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            // Parse reply frames.
            let mut frames: VecDeque<Vec<u8>> = VecDeque::new();
            loop {
                let mut len_buf = [0u8; 4];
                if !c.rb.copy_to(&mut len_buf, 4) {
                    break;
                }
                let len = u32::from_be_bytes(len_buf) as usize;
                if len > DEFAULT_MAX_FRAME || c.rb.len() < 4 + len {
                    if len > DEFAULT_MAX_FRAME {
                        failed = true;
                    }
                    break;
                }
                c.rb.consume(4);
                let mut frame = vec![0u8; len];
                c.rb.copy_to(&mut frame, len);
                c.rb.consume(len);
                frames.push_back(frame);
            }
            for frame in frames {
                if c.inflight.is_none() {
                    continue; // unsolicited reply: ignore
                }
                let latency = clock.micros().saturating_sub(c.sent_us);
                c.inflight = None;
                if accept_reply(i, &frame) {
                    c.done += 1;
                    samples.push(latency);
                } else {
                    rejected += 1;
                }
            }
            if failed {
                c.fail(now_ms, &mut reconnects);
            }
        }
    }

    samples.sort_unstable();
    Ok(LoadOutcome {
        completed: samples.len() as u64,
        rejected,
        reconnects,
        elapsed_ms: clock.now().ticks(),
        p50_us: percentile_us(&samples, 50),
        p95_us: percentile_us(&samples, 95),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_integer_ratio_indexing() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50), 51);
        assert_eq!(percentile_us(&sorted, 95), 96);
        assert_eq!(percentile_us(&sorted, 100), 100);
        assert_eq!(percentile_us(&[], 95), 0);
        assert_eq!(percentile_us(&[7], 95), 7);
    }
}
