//! One replica on the TCP transport: threaded I/O below, a sequential
//! staged-effects event loop above.
//!
//! [`run_node`] hosts a single [`Actor`] — the same type the simulator
//! runs — on real sockets. The split mirrors the crate docs: an acceptor
//! thread plus per-connection reader threads funnel framed bytes into an
//! MPSC channel; per-peer writer threads drain outbound frame queues; and
//! the caller's thread runs the event loop, which is the *only* place the
//! actor is touched. Every callback goes through [`ftm_runtime::step`],
//! so the staged-effects discipline (effects applied after the callback,
//! in canonical order) is identical to the simulator's.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use ftm_crypto::prng::{derive_seed, Rng64, Xoshiro256PlusPlus};
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_runtime::{
    step, Actor, Duration, Payload, ProcessId, Runtime, StagedSend, TimerTag, VirtualTime,
};

use crate::clock::WallClock;
use crate::codec::{write_frame, Hello};

/// Configuration for one transport node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's identity (index into [`peers`](NodeConfig::peers)).
    pub me: ProcessId,
    /// Total number of replicas `n`.
    pub n: usize,
    /// Cluster id checked during the connection handshake; connections
    /// from a different cluster are dropped.
    pub cluster: u64,
    /// Base seed for this node's pseudo-random stream (per-node stream is
    /// derived from it, so all replicas can share one base seed).
    pub seed: u64,
    /// Dial addresses of all `n` replicas, indexed by process id.
    pub peers: Vec<String>,
    /// Cap on a single inbound frame's payload bytes.
    pub max_frame: usize,
    /// How long to keep retrying outbound peer connections, in ms.
    pub connect_timeout_ms: u64,
    /// Hard wall-clock bound on the whole run, in ms (safety net; the
    /// node reports `halted: false` if it trips).
    pub run_timeout_ms: u64,
    /// Exit the event loop as soon as the actor halts (used by bounded
    /// test clusters; servers keep running to answer client requests).
    pub exit_on_halt: bool,
    /// Artificial per-hop delivery latency in ms (0 = deliver as fast as
    /// the socket allows). Inbound peer frames are held for this long
    /// before reaching the actor — the transport's `tc netem` equivalent,
    /// used by loopback tests to emulate a network whose hop time
    /// dominates thread-scheduling noise. Loopback self-sends are never
    /// delayed (they are part of the staged-effects semantics, not the
    /// network).
    pub delivery_delay_ms: u64,
    /// Hold `on_start` until the cluster is fully meshed and every peer
    /// has confirmed its own mesh (two-phase barrier, bounded by
    /// [`connect_timeout_ms`](NodeConfig::connect_timeout_ms)). Without
    /// it, fast replicas can decide early slots before a slow peer's
    /// connection is even accepted — which is harmless for safety but
    /// makes first-contact behavior (e.g. detection of a faulty peer's
    /// very first message) a startup race. On timeout the node starts
    /// anyway: a crashed peer must not block the cluster forever.
    pub start_barrier: bool,
}

impl NodeConfig {
    /// A config with default tunables: 1 MiB frame cap, 10 s connect
    /// retry window, 120 s run bound, keep serving after halt.
    pub fn new(me: ProcessId, peers: Vec<String>, cluster: u64, seed: u64) -> Self {
        NodeConfig {
            me,
            n: peers.len(),
            cluster,
            seed,
            peers,
            max_frame: crate::codec::DEFAULT_MAX_FRAME,
            connect_timeout_ms: 10_000,
            run_timeout_ms: 120_000,
            exit_on_halt: false,
            delivery_delay_ms: 0,
            start_barrier: true,
        }
    }
}

/// Outcome of one node's run, mirroring the per-process slice of the
/// simulator's run report (minus the schedule-dependent trace).
#[derive(Debug, Clone)]
pub struct NetReport<D> {
    /// Which replica this is.
    pub me: ProcessId,
    /// The decision recorded, if any (first decision wins).
    pub decision: Option<D>,
    /// Whether the actor halted itself.
    pub halted: bool,
    /// Whether a second, different decision was attempted.
    pub contradicted: bool,
    /// All notes the actor emitted, in order (includes `detected=`
    /// convictions; see [`parse_convictions`]).
    pub notes: Vec<String>,
    /// Messages handed to the transport (loopback included).
    pub msgs_sent: u64,
    /// Messages delivered to the actor (loopback included).
    pub msgs_received: u64,
    /// Frame bytes written to peers plus loopback payload bytes.
    pub bytes_sent: u64,
    /// Frame bytes received from peers plus loopback payload bytes.
    pub bytes_received: u64,
    /// Node-local milliseconds from start to event-loop exit.
    pub end_time: VirtualTime,
}

/// Read-only snapshot of a node's state handed to the client-request
/// service callback.
#[derive(Debug)]
pub struct NodeView<'a, D> {
    /// Which replica this is.
    pub me: ProcessId,
    /// Node-local current time (milliseconds since start).
    pub now: VirtualTime,
    /// The decision recorded so far, if any.
    pub decision: Option<&'a D>,
    /// Whether the actor has halted.
    pub halted: bool,
    /// Whether a contradictory second decision was attempted.
    pub contradicted: bool,
    /// Notes emitted so far.
    pub notes: &'a [String],
    /// Messages handed to the transport so far.
    pub msgs_sent: u64,
    /// Messages delivered to the actor so far.
    pub msgs_received: u64,
    /// Bytes written so far.
    pub bytes_sent: u64,
    /// Bytes received so far.
    pub bytes_received: u64,
}

/// What the service callback returns for one client request.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// Frame payload written back to the client.
    pub frame: Vec<u8>,
    /// When `true`, the node exits its event loop after replying.
    pub shutdown: bool,
}

impl ServiceReply {
    /// A plain reply; the node keeps running.
    pub fn reply(frame: Vec<u8>) -> Self {
        ServiceReply {
            frame,
            shutdown: false,
        }
    }

    /// A final reply; the node exits after sending it.
    pub fn shutdown(frame: Vec<u8>) -> Self {
        ServiceReply {
            frame,
            shutdown: true,
        }
    }
}

/// Extracts `(culprit, class)` pairs from `detected=<p> class=<c> …` notes
/// (tolerating the replicated log's `s<slot>:` prefix), the transport-side
/// twin of `ftm-core`'s trace-based detection parser.
pub fn parse_convictions(notes: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for note in notes {
        if let Some(pos) = note.find("detected=") {
            let rest = &note[pos + "detected=".len()..];
            let mut toks = rest.split_whitespace();
            let culprit = toks.next().unwrap_or("").to_string();
            let class = toks
                .find_map(|t| t.strip_prefix("class="))
                .unwrap_or("")
                .to_string();
            out.push((culprit, class));
        }
    }
    out
}

/// One framed event delivered to the event loop by a reader thread.
enum NetEvent {
    /// A protocol frame from peer `from`.
    Peer { from: u32, frame: Vec<u8> },
    /// A client request; the reply goes back through `reply`.
    Client {
        frame: Vec<u8>,
        reply: mpsc::Sender<Vec<u8>>,
    },
}

/// The transport-side [`Runtime`]: sockets for delivery, a wall clock for
/// time, a scan-min vector for timers.
struct NetDriver<M, D> {
    me: ProcessId,
    n: usize,
    clock: WallClock,
    rng: Xoshiro256PlusPlus,
    /// Outbound frame queues, indexed by peer id (`None` at `me`).
    peer_tx: Vec<Option<mpsc::Sender<Vec<u8>>>>,
    /// Self-sends, delivered after the current callback's effects apply.
    loopback: VecDeque<M>,
    /// Pending timers as `(deadline, seq, tag)`; `seq` breaks ties in
    /// scheduling order, matching the simulator's event queue.
    timers: Vec<(VirtualTime, u64, TimerTag)>,
    timer_seq: u64,
    notes: Vec<String>,
    decision: Option<D>,
    contradicted: bool,
    halted: bool,
    msgs_sent: u64,
    msgs_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl<M: Payload + CanonicalEncode, D: Clone + std::fmt::Debug + PartialEq> NetDriver<M, D> {
    fn new(
        cfg: &NodeConfig,
        clock: WallClock,
        peer_tx: Vec<Option<mpsc::Sender<Vec<u8>>>>,
    ) -> Self {
        NetDriver {
            me: cfg.me,
            n: cfg.n,
            clock,
            rng: Xoshiro256PlusPlus::from_seed(derive_seed(cfg.seed, u64::from(cfg.me.0))),
            peer_tx,
            loopback: VecDeque::new(),
            timers: Vec::new(),
            timer_seq: 0,
            notes: Vec::new(),
            decision: None,
            contradicted: false,
            halted: false,
            msgs_sent: 0,
            msgs_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Queues one encoded frame to a remote peer.
    fn send_bytes(&mut self, to: ProcessId, bytes: Vec<u8>) {
        self.msgs_sent += 1;
        self.bytes_sent += bytes.len() as u64 + 4;
        if let Some(tx) = self.peer_tx.get(to.index()).and_then(Option::as_ref) {
            // A dead peer's writer has exited; dropping the frame models
            // the crash exactly as the simulator silences a crashed node.
            let _ = tx.send(bytes);
        }
    }

    /// Queues a self-send for delivery after the current effects apply.
    fn send_loopback(&mut self, msg: M) {
        self.msgs_sent += 1;
        self.bytes_sent += msg.size_bytes() as u64;
        self.loopback.push_back(msg);
    }

    /// Earliest pending timer deadline, if any.
    fn next_deadline(&self) -> Option<VirtualTime> {
        self.timers.iter().map(|&(at, _, _)| at).min()
    }

    /// Pops the due timer with the smallest `(deadline, seq)`, if any.
    fn pop_due(&mut self, now: VirtualTime) -> Option<TimerTag> {
        let idx = self
            .timers
            .iter()
            .enumerate()
            .filter(|(_, &(at, _, _))| at <= now)
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        Some(self.timers.swap_remove(idx).2)
    }
}

impl<M: Payload + CanonicalEncode, D: Clone + std::fmt::Debug + PartialEq> Runtime<M, D>
    for NetDriver<M, D>
{
    fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    fn process_count(&self) -> usize {
        self.n
    }

    fn rng_draw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn dispatch(&mut self, _from: ProcessId, send: StagedSend<M>) {
        match send {
            StagedSend::To(to, msg) => {
                if to == self.me {
                    self.send_loopback(msg);
                } else {
                    let bytes = msg.canonical_bytes();
                    self.send_bytes(to, bytes);
                }
            }
            StagedSend::ToAll(msg) => {
                // Encode once; each remote peer gets a byte-level clone of
                // the same canonical frame, the self-copy stays decoded.
                let bytes = msg.canonical_bytes();
                for p in 0..self.n as u32 {
                    let to = ProcessId(p);
                    if to == self.me {
                        self.send_loopback(msg.clone());
                    } else {
                        self.send_bytes(to, bytes.clone());
                    }
                }
            }
        }
    }

    fn schedule(&mut self, _at: ProcessId, delay: Duration, tag: TimerTag) {
        let deadline = self.clock.now() + delay;
        self.timers.push((deadline, self.timer_seq, tag));
        self.timer_seq += 1;
    }

    fn emit_note(&mut self, _at: ProcessId, text: String) {
        self.notes.push(text);
    }

    fn record_decision(&mut self, _at: ProcessId, value: D) {
        match &self.decision {
            None => self.decision = Some(value),
            Some(prev) if *prev != value => self.contradicted = true,
            Some(_) => {}
        }
    }

    fn record_halt(&mut self, _at: ProcessId) {
        self.halted = true;
        // A halted process receives no further callbacks.
        self.timers.clear();
        self.loopback.clear();
    }
}

/// Reads exactly `buf.len()` bytes, retrying timeout errors so a read
/// timeout can double as a periodic stop-flag check without ever losing
/// partially-read bytes (which would desync the framing).
///
/// Returns `Ok(false)` on clean close before the first byte or when the
/// stop flag is raised; `Ok(true)` when the buffer is full.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(k) => filled += k,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one frame with stop-flag awareness; `Ok(None)` means the
/// connection closed cleanly or the node is stopping.
fn read_frame_stoppable(
    stream: &mut TcpStream,
    max_frame: usize,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !read_full(stream, &mut len_buf, stop)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len];
    if !read_full(stream, &mut payload, stop)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stopped mid-frame",
        ));
    }
    Ok(Some(payload))
}

/// Identity facts a reader needs to vet an inbound handshake.
#[derive(Clone, Copy)]
struct AcceptCtx {
    cluster: u64,
    n: usize,
    me: u32,
    max_frame: usize,
}

/// Per-connection reader: handshake, then pump frames into the event
/// channel (peer) or run the request/reply loop (client).
fn serve_connection(
    mut stream: TcpStream,
    tx: &mpsc::Sender<NetEvent>,
    stop: &AtomicBool,
    inbound: &Mutex<Vec<bool>>,
    ctx: AcceptCtx,
) {
    let max_frame = ctx.max_frame;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let Ok(Some(hello_frame)) = read_frame_stoppable(&mut stream, max_frame, stop) else {
        return;
    };
    let Ok(hello) = Hello::from_canonical_bytes(&hello_frame) else {
        return;
    };
    if hello.cluster() != ctx.cluster {
        return;
    }
    match hello {
        Hello::Peer { id, .. } => {
            if id as usize >= ctx.n || id == ctx.me {
                return;
            }
            if let Ok(mut seen) = inbound.lock() {
                seen[id as usize] = true;
            }
            loop {
                match read_frame_stoppable(&mut stream, max_frame, stop) {
                    Ok(Some(frame)) => {
                        if tx.send(NetEvent::Peer { from: id, frame }).is_err() {
                            return; // event loop gone: shutting down
                        }
                    }
                    Ok(None) | Err(_) => return,
                }
            }
        }
        Hello::Client { .. } => loop {
            match read_frame_stoppable(&mut stream, max_frame, stop) {
                Ok(Some(frame)) => {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    if tx
                        .send(NetEvent::Client {
                            frame,
                            reply: reply_tx,
                        })
                        .is_err()
                    {
                        return;
                    }
                    match reply_rx.recv_timeout(std::time::Duration::from_secs(30)) {
                        Ok(bytes) => {
                            if write_frame(&mut stream, &bytes).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
                Ok(None) | Err(_) => return,
            }
        },
    }
}

/// Dials `addr` until it answers, the stop flag rises, or `timeout_ms`
/// elapses.
fn connect_with_retry(addr: &str, timeout_ms: u64, stop: &AtomicBool) -> Option<TcpStream> {
    let clock = WallClock::start();
    loop {
        if stop.load(Ordering::Relaxed) || clock.now().ticks() >= timeout_ms {
            return None;
        }
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Some(s);
            }
            Err(_) => thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
}

/// Outbound writer: connect (with retry), send the handshake, then drain
/// the frame queue until every sender is dropped — which is how shutdown
/// guarantees all staged frames are flushed before the node exits.
fn writer_loop(
    addr: &str,
    hello: Hello,
    rx: &mpsc::Receiver<Vec<u8>>,
    connect_timeout_ms: u64,
    stop: &AtomicBool,
    connected: &AtomicUsize,
) {
    let Some(mut stream) = connect_with_retry(addr, connect_timeout_ms, stop) else {
        return;
    };
    if write_frame(&mut stream, &hello.canonical_bytes()).is_err() {
        return;
    }
    connected.fetch_add(1, Ordering::Relaxed);
    while let Ok(frame) = rx.recv() {
        if write_frame(&mut stream, &frame).is_err() {
            return;
        }
    }
}

/// The two-phase start barrier (see [`NodeConfig::start_barrier`]).
///
/// Phase 1 waits until this node's mesh is locally complete: every
/// outbound writer has delivered its handshake and every peer's inbound
/// connection has been accepted. Phase 2 announces readiness with an
/// *empty* frame — protocol messages are never zero-length, so the empty
/// frame is free as a transport sentinel — and waits for every peer's
/// announcement in turn. A peer only announces after *its* phase 1, so
/// when the barrier clears, every replica's `on_start` fires within one
/// message delay of the others instead of one accept-poll cycle.
///
/// Both phases share one deadline; on timeout the node proceeds with
/// whatever mesh it has (a crashed peer must not wedge the cluster) and
/// records a note. Protocol or client frames that arrive during phase 2
/// (possible only from a peer whose own barrier timed out) are returned
/// for the event loop to process first, in arrival order.
fn start_barrier<M, D>(
    driver: &mut NetDriver<M, D>,
    rx: &mpsc::Receiver<NetEvent>,
    inbound: &Mutex<Vec<bool>>,
    outbound: &AtomicUsize,
    deadline_ms: u64,
) -> VecDeque<NetEvent>
where
    M: Payload + CanonicalEncode,
    D: Clone + std::fmt::Debug + PartialEq,
{
    let mut pending = VecDeque::new();
    let n = driver.n;
    if n <= 1 {
        return pending;
    }
    let me = driver.me.index();

    let meshed = || {
        outbound.load(Ordering::Relaxed) >= n - 1
            && inbound.lock().map_or(true, |seen| {
                seen.iter().enumerate().all(|(i, &s)| s || i == me)
            })
    };
    while driver.clock.now().ticks() < deadline_ms && !meshed() {
        thread::sleep(std::time::Duration::from_millis(1));
    }

    for tx in driver.peer_tx.iter().flatten() {
        let _ = tx.send(Vec::new());
        driver.bytes_sent += 4;
    }
    let mut ready = vec![false; n];
    ready[me] = true;
    while !ready.iter().all(|&r| r) {
        if driver.clock.now().ticks() >= deadline_ms {
            let missing = ready.iter().filter(|&&r| !r).count();
            driver
                .notes
                .push(format!("mesh-incomplete missing={missing}"));
            break;
        }
        match rx.recv_timeout(std::time::Duration::from_millis(5)) {
            Ok(NetEvent::Peer { from, frame }) if frame.is_empty() => {
                driver.bytes_received += 4;
                if let Some(r) = ready.get_mut(from as usize) {
                    *r = true;
                }
            }
            Ok(ev) => pending.push_back(ev),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    pending
}

/// Delivers every queued loopback message to the actor (unless halted).
fn drain_loopback<A>(driver: &mut NetDriver<A::Msg, A::Decision>, actor: &mut A)
where
    A: Actor,
    A::Msg: CanonicalEncode,
{
    loop {
        if driver.halted {
            return;
        }
        let Some(msg) = driver.loopback.pop_front() else {
            return;
        };
        driver.msgs_received += 1;
        driver.bytes_received += msg.size_bytes() as u64;
        let me = driver.me;
        step(driver, me, |ctx| actor.on_message(me, &msg, ctx));
    }
}

/// Runs one replica's actor on the TCP transport until it halts (with
/// [`NodeConfig::exit_on_halt`]), a client requests shutdown, or the run
/// bound trips.
///
/// `listener` must already be bound to this node's address — binding is
/// the caller's job so test clusters can use ephemeral ports without a
/// dial race. `service` answers client request frames; it sees the actor
/// (mutably, for protocol-specific state like a log digest) and a
/// [`NodeView`] snapshot of the transport state.
///
/// # Errors
///
/// Only setup failures (listener configuration) surface as `Err`; peer
/// connection losses are absorbed, matching the crash-fault model.
pub fn run_node<A, S>(
    cfg: &NodeConfig,
    listener: TcpListener,
    mut actor: A,
    mut service: S,
) -> io::Result<NetReport<A::Decision>>
where
    A: Actor,
    A::Msg: CanonicalEncode + CanonicalDecode,
    S: FnMut(&mut A, &NodeView<'_, A::Decision>, &[u8]) -> ServiceReply,
{
    assert_eq!(
        cfg.peers.len(),
        cfg.n,
        "peer list must have one address per replica"
    );
    assert!(cfg.me.index() < cfg.n, "me out of range");
    let clock = WallClock::start();
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<NetEvent>();

    // Outbound: one writer thread + frame queue per remote peer. The
    // channel buffers frames while the writer is still connecting, so the
    // event loop never blocks on a slow or late peer.
    let mut peer_tx: Vec<Option<mpsc::Sender<Vec<u8>>>> = Vec::with_capacity(cfg.n);
    let mut writers = Vec::new();
    let outbound = Arc::new(AtomicUsize::new(0));
    for (id, addr) in cfg.peers.iter().enumerate() {
        if id == cfg.me.index() {
            peer_tx.push(None);
            continue;
        }
        let (ftx, frx) = mpsc::channel::<Vec<u8>>();
        peer_tx.push(Some(ftx));
        let addr = addr.clone();
        let hello = Hello::Peer {
            id: cfg.me.0,
            cluster: cfg.cluster,
        };
        let connect_timeout_ms = cfg.connect_timeout_ms;
        let stop = Arc::clone(&stop);
        let outbound = Arc::clone(&outbound);
        writers.push(thread::spawn(move || {
            writer_loop(&addr, hello, &frx, connect_timeout_ms, &stop, &outbound);
        }));
    }

    // Inbound: a polling acceptor that spawns one reader per connection.
    // Readers exit on their own when the event channel closes or the stop
    // flag rises (their read timeout doubles as the poll).
    listener.set_nonblocking(true)?;
    let inbound = Arc::new(Mutex::new(vec![false; cfg.n]));
    let acceptor = {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        let inbound = Arc::clone(&inbound);
        let ctx = AcceptCtx {
            cluster: cfg.cluster,
            n: cfg.n,
            me: cfg.me.0,
            max_frame: cfg.max_frame,
        };
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        let tx = tx.clone();
                        let stop = Arc::clone(&stop);
                        let inbound = Arc::clone(&inbound);
                        thread::spawn(move || {
                            serve_connection(conn, &tx, &stop, &inbound, ctx);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            }
        })
    };
    drop(tx); // the loop's rx must close once acceptor + readers are done

    let mut driver: NetDriver<A::Msg, A::Decision> = NetDriver::new(cfg, clock, peer_tx);
    let me = cfg.me;
    let pending = if cfg.start_barrier {
        start_barrier(
            &mut driver,
            &rx,
            &inbound,
            &outbound,
            cfg.connect_timeout_ms,
        )
    } else {
        VecDeque::new()
    };
    step(&mut driver, me, |ctx| actor.on_start(ctx));
    drain_loopback(&mut driver, &mut actor);

    // Every event passes through the hold queue, which implements the
    // optional per-hop delivery latency (deadlines are monotone because
    // the delay is constant, so FIFO order is deadline order). Events
    // stashed during the start barrier are due immediately.
    let delay = Duration::of(cfg.delivery_delay_ms);
    let mut holdq: VecDeque<(VirtualTime, NetEvent)> = pending
        .into_iter()
        .map(|ev| (VirtualTime::ZERO, ev))
        .collect();

    let mut shutdown = false;
    while !shutdown {
        if cfg.exit_on_halt && driver.halted {
            break;
        }
        if clock.now().ticks() >= cfg.run_timeout_ms {
            break;
        }
        // Fire every due timer (oldest deadline first), interleaving the
        // loopback deliveries each may stage.
        while !driver.halted {
            let Some(tag) = driver.pop_due(clock.now()) else {
                break;
            };
            step(&mut driver, me, |ctx| actor.on_timer(tag, ctx));
            drain_loopback(&mut driver, &mut actor);
        }
        // Deliver every held event whose delivery deadline has passed.
        while !shutdown {
            match holdq.front() {
                Some(&(due, _)) if due <= clock.now() => {}
                _ => break,
            }
            let Some((_, event)) = holdq.pop_front() else {
                break;
            };
            match event {
                NetEvent::Peer { from, frame } => {
                    driver.bytes_received += frame.len() as u64 + 4;
                    if frame.is_empty() {
                        // A late or duplicate start-barrier sentinel (its
                        // sender's barrier timed out); not protocol data.
                        continue;
                    }
                    match A::Msg::from_canonical_bytes(&frame) {
                        Ok(msg) => {
                            driver.msgs_received += 1;
                            if !driver.halted {
                                step(&mut driver, me, |ctx| {
                                    actor.on_message(ProcessId(from), &msg, ctx);
                                });
                                drain_loopback(&mut driver, &mut actor);
                            }
                        }
                        Err(e) => {
                            // An undecodable frame is transport-level
                            // garbage; note it and drop it, never panic
                            // on peer input.
                            driver
                                .notes
                                .push(format!("decode-error from=p{from} err={e}"));
                        }
                    }
                }
                NetEvent::Client { frame, reply } => {
                    let view = NodeView {
                        me,
                        now: clock.now(),
                        decision: driver.decision.as_ref(),
                        halted: driver.halted,
                        contradicted: driver.contradicted,
                        notes: &driver.notes,
                        msgs_sent: driver.msgs_sent,
                        msgs_received: driver.msgs_received,
                        bytes_sent: driver.bytes_sent,
                        bytes_received: driver.bytes_received,
                    };
                    let out = service(&mut actor, &view, &frame);
                    let _ = reply.send(out.frame);
                    shutdown = out.shutdown;
                }
            }
        }
        // Wait for the next frame, but never past the next timer or
        // hold-queue deadline (nor more than 50 ms, so stop conditions
        // are re-checked).
        let cap = std::time::Duration::from_millis(50);
        let mut wait = cap;
        if let Some(dl) = driver.next_deadline() {
            wait = wait.min(clock.until(dl));
        }
        if let Some(&(due, _)) = holdq.front() {
            wait = wait.min(clock.until(due));
        }
        match rx.recv_timeout(wait) {
            Ok(ev) => holdq.push_back((clock.now() + delay, ev)),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                if holdq.is_empty() {
                    break;
                }
                // Sources are gone but held events remain deliverable.
                thread::sleep(wait);
            }
        }
    }

    // Shutdown: raise the flag (readers + acceptor wind down), then drop
    // the writer queues — each writer drains its remaining frames before
    // exiting, so everything staged before the halt reaches the wire.
    stop.store(true, Ordering::Relaxed);
    drop(rx);
    let end_time = clock.now();
    let report = NetReport {
        me,
        decision: driver.decision.clone(),
        halted: driver.halted,
        contradicted: driver.contradicted,
        notes: std::mem::take(&mut driver.notes),
        msgs_sent: driver.msgs_sent,
        msgs_received: driver.msgs_received,
        bytes_sent: driver.bytes_sent,
        bytes_received: driver.bytes_received,
        end_time,
    };
    drop(driver); // drops peer_tx senders
    for w in writers {
        let _ = w.join();
    }
    let _ = acceptor.join();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_convictions_handles_prefixes_and_noise() {
        let notes = vec![
            "detected=p3 class=bad-certificate reason=x".to_string(),
            "s7: detected=p1 class=protocol-violation reason=y".to_string(),
            "round=2 opened".to_string(),
        ];
        assert_eq!(
            parse_convictions(&notes),
            vec![
                ("p3".to_string(), "bad-certificate".to_string()),
                ("p1".to_string(), "protocol-violation".to_string()),
            ]
        );
    }

    #[test]
    fn driver_timers_fire_in_deadline_then_seq_order() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["unused".into()], 0, 1);
        let clock = WallClock::start();
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, clock, vec![None]);
        d.schedule(ProcessId(0), Duration::of(0), 10);
        d.schedule(ProcessId(0), Duration::of(0), 11);
        let far = VirtualTime::MAX;
        assert_eq!(d.pop_due(far), Some(10));
        assert_eq!(d.pop_due(far), Some(11));
        assert_eq!(d.pop_due(far), None);
    }

    #[test]
    fn driver_contradiction_and_halt_semantics() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["unused".into()], 0, 1);
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, WallClock::start(), vec![None]);
        d.record_decision(ProcessId(0), 5);
        d.record_decision(ProcessId(0), 5);
        assert!(!d.contradicted);
        d.record_decision(ProcessId(0), 6);
        assert!(d.contradicted);
        assert_eq!(d.decision, Some(5));
        d.schedule(ProcessId(0), Duration::of(1), 1);
        d.loopback.push_back(9);
        d.record_halt(ProcessId(0));
        assert!(d.halted && d.timers.is_empty() && d.loopback.is_empty());
    }

    #[test]
    fn loopback_dispatch_stays_decoded() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["a".into(), "b".into()], 0, 1);
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, WallClock::start(), vec![None, None]);
        d.dispatch(ProcessId(0), StagedSend::ToAll(42));
        assert_eq!(d.loopback.pop_front(), Some(42));
        assert_eq!(d.msgs_sent, 2); // self copy + one remote frame
    }
}
