//! One replica on the TCP transport: a single-threaded readiness loop
//! below, a sequential staged-effects event loop above.
//!
//! [`run_node`] hosts a single [`Actor`] — the same type the simulator
//! runs — on real sockets. Unlike the PR 9 transport (acceptor + one
//! reader thread per connection + one writer thread per peer), everything
//! now happens on the caller's thread: a poll(2)-shaped readiness probe
//! (see [`crate::poll`]) finds sockets with work, per-connection ring
//! buffers ([`crate::ring`]) absorb partial frames and unflushed writes,
//! and the actor's callbacks run inline between I/O rounds, still through
//! [`ftm_runtime::step`] so the staged-effects discipline is identical to
//! the simulator's.
//!
//! Three properties the threaded transport lacked:
//!
//! * **Scales to thousands of clients** — a connection costs a slab slot
//!   and two ring buffers, not two OS threads.
//! * **Peer reconnect** — an outbound peer link that drops is redialed
//!   with capped exponential backoff + deterministic jitter
//!   ([`crate::backoff`]), re-validating the handshake, and frames staged
//!   while the link was down are queued (bounded) and flushed on
//!   reconnect. A restarted replica rejoins the mesh.
//! * **Backpressure** — a client that stops reading cannot grow the
//!   node's write buffer past a cap: the connection is dropped with a
//!   `backpressure-disconnect` note instead.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};

use ftm_crypto::prng::{derive_seed, Rng64, Xoshiro256PlusPlus};
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_runtime::{
    step, Actor, Duration, Payload, ProcessId, Runtime, StagedSend, TimerTag, VirtualTime,
};

use crate::backoff::Backoff;
use crate::clock::WallClock;
use crate::codec::{frame_into, Hello};
use crate::poll::{poll, PollFd, POLLIN};
use crate::ring::RingBuf;

/// How long a freshly accepted connection may sit without completing its
/// handshake before the loop evicts it (half-open defense).
const HANDSHAKE_TIMEOUT_MS: u64 = 3_000;

/// Write-ring cap for client connections: the backpressure boundary. A
/// client whose replies would exceed this is disconnected.
const CLIENT_WRITE_CAP: usize = 256 * 1024;

/// Write-ring cap for peer connections (peers are cooperative readers;
/// overflow spills to the reconnect queue).
const PEER_WRITE_CAP: usize = 4 << 20;

/// Byte cap on frames queued for a disconnected peer. Beyond it the
/// oldest queued frames are dropped — the link behaves crash-lossy, which
/// the protocol already tolerates.
const PEER_QUEUE_CAP: usize = 16 << 20;

/// Per-attempt bound on a blocking dial (the loop stalls at most this
/// long when a peer is dialable but slow to answer).
const DIAL_STEP_MS: u64 = 300;

/// Bound on the exit flush that drains staged writes before returning.
const EXIT_FLUSH_MS: u64 = 2_000;

/// Configuration for one transport node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's identity (index into [`peers`](NodeConfig::peers)).
    pub me: ProcessId,
    /// Total number of replicas `n`.
    pub n: usize,
    /// Cluster id checked during the connection handshake; connections
    /// from a different cluster are dropped.
    pub cluster: u64,
    /// Base seed for this node's pseudo-random stream (per-node stream is
    /// derived from it, so all replicas can share one base seed).
    pub seed: u64,
    /// Dial addresses of all `n` replicas, indexed by process id.
    pub peers: Vec<String>,
    /// Cap on a single inbound frame's payload bytes.
    pub max_frame: usize,
    /// Start-barrier deadline in ms (mesh formation). Peer links
    /// themselves are redialed forever (with backoff); this only bounds
    /// how long startup waits for a full mesh.
    pub connect_timeout_ms: u64,
    /// Hard wall-clock bound on the whole run, in ms (safety net; the
    /// node reports `halted: false` if it trips).
    pub run_timeout_ms: u64,
    /// Exit the event loop as soon as the actor halts (used by bounded
    /// test clusters; servers keep running to answer client requests).
    pub exit_on_halt: bool,
    /// Artificial per-hop delivery latency in ms (0 = deliver as fast as
    /// the socket allows). Inbound peer frames are held for this long
    /// before reaching the actor — the transport's `tc netem` equivalent,
    /// used by loopback tests to emulate a network whose hop time
    /// dominates thread-scheduling noise. Loopback self-sends are never
    /// delayed (they are part of the staged-effects semantics, not the
    /// network).
    pub delivery_delay_ms: u64,
    /// Hold `on_start` until the cluster is fully meshed and every peer
    /// has confirmed its own mesh (two-phase barrier, bounded by
    /// [`connect_timeout_ms`](NodeConfig::connect_timeout_ms)). Without
    /// it, fast replicas can decide early slots before a slow peer's
    /// connection is even accepted — which is harmless for safety but
    /// makes first-contact behavior (e.g. detection of a faulty peer's
    /// very first message) a startup race. On timeout the node starts
    /// anyway: a crashed peer must not block the cluster forever. A
    /// replica *rejoining* a running cluster disables this: its peers are
    /// already past their own barriers.
    pub start_barrier: bool,
}

impl NodeConfig {
    /// A config with default tunables: 1 MiB frame cap, 10 s barrier
    /// deadline, 120 s run bound, keep serving after halt.
    pub fn new(me: ProcessId, peers: Vec<String>, cluster: u64, seed: u64) -> Self {
        NodeConfig {
            me,
            n: peers.len(),
            cluster,
            seed,
            peers,
            max_frame: crate::codec::DEFAULT_MAX_FRAME,
            connect_timeout_ms: 10_000,
            run_timeout_ms: 120_000,
            exit_on_halt: false,
            delivery_delay_ms: 0,
            start_barrier: true,
        }
    }
}

/// Outcome of one node's run, mirroring the per-process slice of the
/// simulator's run report (minus the schedule-dependent trace).
#[derive(Debug, Clone)]
pub struct NetReport<D> {
    /// Which replica this is.
    pub me: ProcessId,
    /// The decision recorded, if any (first decision wins).
    pub decision: Option<D>,
    /// Whether the actor halted itself.
    pub halted: bool,
    /// Whether a second, different decision was attempted.
    pub contradicted: bool,
    /// All notes the actor emitted, in order (includes `detected=`
    /// convictions; see [`parse_convictions`]).
    pub notes: Vec<String>,
    /// Messages handed to the transport (loopback included).
    pub msgs_sent: u64,
    /// Messages delivered to the actor (loopback included).
    pub msgs_received: u64,
    /// Frame bytes written to peers plus loopback payload bytes.
    pub bytes_sent: u64,
    /// Frame bytes received from peers plus loopback payload bytes.
    pub bytes_received: u64,
    /// Node-local milliseconds from start to event-loop exit.
    pub end_time: VirtualTime,
}

/// Read-only snapshot of a node's state handed to the client-request
/// service callback.
#[derive(Debug)]
pub struct NodeView<'a, D> {
    /// Which replica this is.
    pub me: ProcessId,
    /// Node-local current time (milliseconds since start).
    pub now: VirtualTime,
    /// The decision recorded so far, if any.
    pub decision: Option<&'a D>,
    /// Whether the actor has halted.
    pub halted: bool,
    /// Whether a contradictory second decision was attempted.
    pub contradicted: bool,
    /// Notes emitted so far.
    pub notes: &'a [String],
    /// Messages handed to the transport so far.
    pub msgs_sent: u64,
    /// Messages delivered to the actor so far.
    pub msgs_received: u64,
    /// Bytes written so far.
    pub bytes_sent: u64,
    /// Bytes received so far.
    pub bytes_received: u64,
}

/// What the service callback returns for one client request.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// Frame payload written back to the client.
    pub frame: Vec<u8>,
    /// When `true`, the node exits its event loop after replying.
    pub shutdown: bool,
}

impl ServiceReply {
    /// A plain reply; the node keeps running.
    pub fn reply(frame: Vec<u8>) -> Self {
        ServiceReply {
            frame,
            shutdown: false,
        }
    }

    /// A final reply; the node exits after sending it.
    pub fn shutdown(frame: Vec<u8>) -> Self {
        ServiceReply {
            frame,
            shutdown: true,
        }
    }
}

/// Extracts `(culprit, class)` pairs from `detected=<p> class=<c> …` notes
/// (tolerating the replicated log's `s<slot>:` prefix), the transport-side
/// twin of `ftm-core`'s trace-based detection parser.
pub fn parse_convictions(notes: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for note in notes {
        if let Some(pos) = note.find("detected=") {
            let rest = &note[pos + "detected=".len()..];
            let mut toks = rest.split_whitespace();
            let culprit = toks.next().unwrap_or("").to_string();
            let class = toks
                .find_map(|t| t.strip_prefix("class="))
                .unwrap_or("")
                .to_string();
            out.push((culprit, class));
        }
    }
    out
}

/// The transport-side [`Runtime`]: sockets for delivery, a wall clock for
/// time, a scan-min vector for timers. Outbound frames land in per-peer
/// outboxes that the readiness loop drains into connection write rings
/// after every actor step.
struct NetDriver<M, D> {
    me: ProcessId,
    n: usize,
    clock: WallClock,
    rng: Xoshiro256PlusPlus,
    /// Outbound frame staging, indexed by peer id (unused at `me`).
    outbox: Vec<VecDeque<Vec<u8>>>,
    /// Self-sends, delivered after the current callback's effects apply.
    loopback: VecDeque<M>,
    /// Pending timers as `(deadline, seq, tag)`; `seq` breaks ties in
    /// scheduling order, matching the simulator's event queue.
    timers: Vec<(VirtualTime, u64, TimerTag)>,
    timer_seq: u64,
    notes: Vec<String>,
    decision: Option<D>,
    contradicted: bool,
    halted: bool,
    msgs_sent: u64,
    msgs_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
}

impl<M: Payload + CanonicalEncode, D: Clone + std::fmt::Debug + PartialEq> NetDriver<M, D> {
    fn new(cfg: &NodeConfig, clock: WallClock) -> Self {
        NetDriver {
            me: cfg.me,
            n: cfg.n,
            clock,
            rng: Xoshiro256PlusPlus::from_seed(derive_seed(cfg.seed, u64::from(cfg.me.0))),
            outbox: (0..cfg.n).map(|_| VecDeque::new()).collect(),
            loopback: VecDeque::new(),
            timers: Vec::new(),
            timer_seq: 0,
            notes: Vec::new(),
            decision: None,
            contradicted: false,
            halted: false,
            msgs_sent: 0,
            msgs_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Stages one encoded frame for a remote peer.
    fn send_bytes(&mut self, to: ProcessId, bytes: Vec<u8>) {
        self.msgs_sent += 1;
        self.bytes_sent += bytes.len() as u64 + 4;
        if let Some(q) = self.outbox.get_mut(to.index()) {
            q.push_back(bytes);
        }
    }

    /// Queues a self-send for delivery after the current effects apply.
    fn send_loopback(&mut self, msg: M) {
        self.msgs_sent += 1;
        self.bytes_sent += msg.size_bytes() as u64;
        self.loopback.push_back(msg);
    }

    /// Earliest pending timer deadline, if any.
    fn next_deadline(&self) -> Option<VirtualTime> {
        self.timers.iter().map(|&(at, _, _)| at).min()
    }

    /// Pops the due timer with the smallest `(deadline, seq)`, if any.
    fn pop_due(&mut self, now: VirtualTime) -> Option<TimerTag> {
        let idx = self
            .timers
            .iter()
            .enumerate()
            .filter(|(_, &(at, _, _))| at <= now)
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        Some(self.timers.swap_remove(idx).2)
    }
}

impl<M: Payload + CanonicalEncode, D: Clone + std::fmt::Debug + PartialEq> Runtime<M, D>
    for NetDriver<M, D>
{
    fn now(&self) -> VirtualTime {
        self.clock.now()
    }

    fn process_count(&self) -> usize {
        self.n
    }

    fn rng_draw(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn dispatch(&mut self, _from: ProcessId, send: StagedSend<M>) {
        match send {
            StagedSend::To(to, msg) => {
                if to == self.me {
                    self.send_loopback(msg);
                } else {
                    let bytes = msg.canonical_bytes();
                    self.send_bytes(to, bytes);
                }
            }
            StagedSend::ToAll(msg) => {
                // Encode once; each remote peer gets a byte-level clone of
                // the same canonical frame, the self-copy stays decoded.
                let bytes = msg.canonical_bytes();
                for p in 0..self.n as u32 {
                    let to = ProcessId(p);
                    if to == self.me {
                        self.send_loopback(msg.clone());
                    } else {
                        self.send_bytes(to, bytes.clone());
                    }
                }
            }
        }
    }

    fn schedule(&mut self, _at: ProcessId, delay: Duration, tag: TimerTag) {
        let deadline = self.clock.now() + delay;
        self.timers.push((deadline, self.timer_seq, tag));
        self.timer_seq += 1;
    }

    fn emit_note(&mut self, _at: ProcessId, text: String) {
        self.notes.push(text);
    }

    fn record_decision(&mut self, _at: ProcessId, value: D) {
        match &self.decision {
            None => self.decision = Some(value),
            Some(prev) if *prev != value => self.contradicted = true,
            Some(_) => {}
        }
    }

    fn record_halt(&mut self, _at: ProcessId) {
        self.halted = true;
        // A halted process receives no further callbacks.
        self.timers.clear();
        self.loopback.clear();
    }
}

/// What one slab slot's connection is for, decided by its handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    /// Accepted but handshake not yet received (evicted on timeout).
    Pending,
    /// Inbound connection from peer `id` (read-only: peers write on the
    /// connections *they* dial).
    PeerIn(u32),
    /// Outbound connection this node dialed to peer `id` (write-mostly;
    /// reads only observe EOF to trigger reconnect).
    PeerOut(u32),
    /// A client's request/reply connection.
    Client,
}

/// One connection in the slab: a non-blocking socket plus its read/write
/// ring buffers.
struct Conn {
    stream: TcpStream,
    rb: RingBuf,
    wb: RingBuf,
    kind: ConnKind,
    opened_ms: u64,
}

impl Conn {
    fn new(stream: TcpStream, kind: ConnKind, max_frame: usize, now_ms: u64) -> Self {
        let write_cap = match kind {
            ConnKind::PeerOut(_) => PEER_WRITE_CAP,
            _ => CLIENT_WRITE_CAP,
        };
        Conn {
            stream,
            rb: RingBuf::with_max(max_frame + 4),
            wb: RingBuf::with_max(write_cap),
            kind,
            opened_ms: now_ms,
        }
    }
}

/// The dial-side state of one peer link: where to reconnect, when the
/// backoff allows the next attempt, and the frames staged while the link
/// is down.
struct PeerLink {
    addr: String,
    resolved: Option<SocketAddr>,
    /// Slab index of the live outbound connection, if any.
    conn: Option<usize>,
    backoff: Backoff,
    /// Earliest node-local ms at which the next dial may happen.
    next_dial_ms: u64,
    /// Frames staged while disconnected (or while the write ring is
    /// full), flushed in order on reconnect. Bounded by
    /// [`PEER_QUEUE_CAP`]; overflow drops the oldest frame (crash-lossy).
    queue: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    dropped_note: bool,
}

impl PeerLink {
    fn enqueue(&mut self, frame: Vec<u8>) -> bool {
        let mut dropped = false;
        while self.queued_bytes + frame.len() + 4 > PEER_QUEUE_CAP {
            let Some(old) = self.queue.pop_front() else {
                break;
            };
            self.queued_bytes -= old.len() + 4;
            dropped = true;
        }
        self.queued_bytes += frame.len() + 4;
        self.queue.push_back(frame);
        dropped
    }
}

/// The two-phase start barrier as a loop mode (see
/// [`NodeConfig::start_barrier`]). Phase 1 (`Meshing`) waits for a full
/// local mesh, then announces readiness with an *empty* frame — protocol
/// messages are never zero-length, so the empty frame is free as a
/// transport sentinel. Phase 2 (`Announcing`) waits for every peer's
/// sentinel. Both phases share one deadline; on timeout the node starts
/// anyway (a crashed peer must not wedge the cluster) and notes the gap.
///
/// Sentinel receipt is recorded in [`NodeLoop::peer_ready`], not in the
/// phase itself: a fast peer's sentinel can land while this node is
/// still meshing, and dropping it would wedge the announcing phase until
/// its deadline.
enum BarrierState {
    Meshing { deadline_ms: u64 },
    Announcing { deadline_ms: u64 },
    Done,
}

/// Everything the readiness loop owns. One instance per [`run_node`]
/// call; no threads, no channels — all I/O and all actor callbacks happen
/// on the thread that runs [`NodeLoop::run`].
struct NodeLoop<'a, A: Actor, S> {
    cfg: &'a NodeConfig,
    clock: WallClock,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    links: Vec<Option<PeerLink>>,
    /// Which peers have ever completed an inbound handshake (barrier
    /// phase 1 bookkeeping; survives disconnects).
    inbound_seen: Vec<bool>,
    /// Which peers have announced start-barrier readiness (empty-frame
    /// sentinels; may arrive in any phase).
    peer_ready: Vec<bool>,
    driver: NetDriver<A::Msg, A::Decision>,
    actor: A,
    service: S,
    /// Inbound peer frames awaiting their delivery deadline, as
    /// `(due, from, frame)` — FIFO order is deadline order because the
    /// delay is constant.
    holdq: VecDeque<(VirtualTime, u32, Vec<u8>)>,
    barrier: BarrierState,
    shutdown: bool,
    /// Whether this iteration made progress (skip the idle sleep).
    busy: bool,
}

impl<'a, A, S> NodeLoop<'a, A, S>
where
    A: Actor,
    A::Msg: CanonicalEncode + CanonicalDecode,
    S: FnMut(&mut A, &NodeView<'_, A::Decision>, &[u8]) -> ServiceReply,
{
    fn now_ms(&self) -> u64 {
        self.clock.now().ticks()
    }

    /// Delivers every queued loopback message to the actor (unless
    /// halted), then stages any sends those callbacks produced.
    fn drain_loopback(&mut self) {
        loop {
            if self.driver.halted {
                return;
            }
            let Some(msg) = self.driver.loopback.pop_front() else {
                return;
            };
            self.driver.msgs_received += 1;
            self.driver.bytes_received += msg.size_bytes() as u64;
            let me = self.driver.me;
            let actor = &mut self.actor;
            step(&mut self.driver, me, |ctx| actor.on_message(me, &msg, ctx));
        }
    }

    /// Fires `on_start` (barrier cleared or disabled).
    fn start_actor(&mut self) {
        let me = self.driver.me;
        let actor = &mut self.actor;
        step(&mut self.driver, me, |ctx| actor.on_start(ctx));
        self.drain_loopback();
        self.pump();
    }

    /// Closes slab slot `i`; an outbound peer link schedules a redial.
    fn close_conn(&mut self, i: usize) {
        let Some(conn) = self.conns[i].take() else {
            return;
        };
        if let ConnKind::PeerOut(id) = conn.kind {
            // Whatever the write ring still held is lost with the socket;
            // the reconnect queue keeps only frames staged from now on.
            if let Some(link) = self.links.get_mut(id as usize).and_then(Option::as_mut) {
                if link.conn == Some(i) {
                    link.conn = None;
                    link.next_dial_ms = self.clock.now().ticks() + link.backoff.next_delay_ms();
                }
            }
        }
    }

    /// Accepts every pending inbound connection (non-blocking) and evicts
    /// half-open ones that out-sat the handshake timeout.
    fn accept_and_evict(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn =
                        Conn::new(stream, ConnKind::Pending, self.cfg.max_frame, self.now_ms());
                    let slot = self.conns.iter().position(Option::is_none);
                    match slot {
                        Some(i) => self.conns[i] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.busy = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        let now = self.now_ms();
        for i in 0..self.conns.len() {
            let stale = matches!(
                self.conns[i].as_ref(),
                Some(c) if c.kind == ConnKind::Pending && now.saturating_sub(c.opened_ms) > HANDSHAKE_TIMEOUT_MS
            );
            if stale {
                self.driver.notes.push("handshake-timeout evicted".into());
                self.close_conn(i);
            }
        }
    }

    /// Dials every disconnected peer link whose backoff window has
    /// elapsed; on success the handshake frame is staged and the
    /// reconnect queue is re-targeted at the new write ring.
    fn dial_due(&mut self) {
        for id in 0..self.cfg.n {
            let now = self.now_ms();
            let Some(link) = self.links[id].as_mut() else {
                continue;
            };
            if link.conn.is_some() || now < link.next_dial_ms {
                continue;
            }
            if link.resolved.is_none() {
                link.resolved = link
                    .addr
                    .to_socket_addrs()
                    .ok()
                    .and_then(|mut addrs| addrs.next());
            }
            let Some(addr) = link.resolved else {
                link.next_dial_ms = now + link.backoff.next_delay_ms();
                continue;
            };
            match TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(DIAL_STEP_MS))
            {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        link.next_dial_ms = now + link.backoff.next_delay_ms();
                        continue;
                    }
                    let mut conn = Conn::new(
                        stream,
                        ConnKind::PeerOut(id as u32),
                        self.cfg.max_frame,
                        now,
                    );
                    let hello = Hello::Peer {
                        id: self.cfg.me.0,
                        cluster: self.cfg.cluster,
                    };
                    // The write ring is empty, so the handshake always fits.
                    frame_into(&mut conn.wb, &hello.canonical_bytes());
                    link.backoff.reset();
                    let slot = self.conns.iter().position(Option::is_none);
                    let idx = match slot {
                        Some(i) => {
                            self.conns[i] = Some(conn);
                            i
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    if let Some(link) = self.links[id].as_mut() {
                        link.conn = Some(idx);
                    }
                    self.busy = true;
                }
                Err(_) => {
                    link.next_dial_ms = now + link.backoff.next_delay_ms();
                }
            }
        }
    }

    /// Moves staged outbox frames into peer write rings (or reconnect
    /// queues) and flushes every non-empty write ring once.
    fn pump(&mut self) {
        for id in 0..self.cfg.n {
            // First drain the reconnect queue, then fresh outbox frames,
            // preserving send order across a reconnect. Loop-local sends
            // to `me` never reach the outbox, so a missing link ends the
            // drain immediately.
            while let Some(link) = self.links[id].as_mut() {
                let conn_idx = link.conn;
                let from_queue = !link.queue.is_empty();
                let frame = if from_queue {
                    link.queue.front().cloned()
                } else {
                    self.driver.outbox[id].front().cloned()
                };
                let Some(frame) = frame else {
                    break;
                };
                let pushed = match conn_idx.and_then(|i| self.conns[i].as_mut()) {
                    Some(conn) => frame_into(&mut conn.wb, &frame),
                    None => false,
                };
                if pushed {
                    if from_queue {
                        link.queued_bytes -= frame.len() + 4;
                        link.queue.pop_front();
                    } else {
                        self.driver.outbox[id].pop_front();
                    }
                    self.busy = true;
                    continue;
                }
                // No live connection (or ring full): spill the fresh
                // frame to the bounded queue and stop for this peer.
                if !from_queue {
                    self.driver.outbox[id].pop_front();
                    if link.enqueue(frame) && !link.dropped_note {
                        link.dropped_note = true;
                        self.driver.notes.push(format!("peer-queue-overflow p{id}"));
                    }
                    continue;
                }
                break;
            }
        }
        // Flush every write ring; errors close the connection.
        for i in 0..self.conns.len() {
            let mut failed = false;
            if let Some(conn) = self.conns[i].as_mut() {
                while !conn.wb.is_empty() {
                    let Conn { stream, wb, .. } = conn;
                    match wb.write_to(&mut &*stream) {
                        Ok(0) => break,
                        Ok(_) => self.busy = true,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            if failed {
                self.close_conn(i);
            }
        }
    }

    /// Advances the start barrier; fires `on_start` when it clears.
    fn barrier_step(&mut self) {
        match &self.barrier {
            BarrierState::Done => {}
            BarrierState::Meshing { deadline_ms } => {
                let deadline = *deadline_ms;
                let meshed = self.links.iter().flatten().all(|link| link.conn.is_some())
                    && self
                        .inbound_seen
                        .iter()
                        .enumerate()
                        .all(|(i, &seen)| seen || i == self.cfg.me.index());
                if meshed || self.now_ms() >= deadline {
                    // Announce readiness to every peer with an empty
                    // sentinel frame (4 wire bytes, no payload).
                    for id in 0..self.cfg.n {
                        if self.links[id].is_some() {
                            self.driver.outbox[id].push_back(Vec::new());
                            self.driver.bytes_sent += 4;
                        }
                    }
                    self.peer_ready[self.cfg.me.index()] = true;
                    self.barrier = BarrierState::Announcing {
                        deadline_ms: deadline,
                    };
                    self.busy = true;
                }
            }
            BarrierState::Announcing { deadline_ms } => {
                if self.peer_ready.iter().all(|&r| r) {
                    self.barrier = BarrierState::Done;
                    self.start_actor();
                } else if self.now_ms() >= *deadline_ms {
                    let missing = self.peer_ready.iter().filter(|&&r| !r).count();
                    self.driver
                        .notes
                        .push(format!("mesh-incomplete missing={missing}"));
                    self.barrier = BarrierState::Done;
                    self.start_actor();
                }
            }
        }
    }

    /// Fires every due timer (oldest deadline first), interleaving the
    /// loopback deliveries each may stage.
    fn fire_timers(&mut self) {
        while !self.driver.halted {
            let now = self.clock.now();
            let Some(tag) = self.driver.pop_due(now) else {
                break;
            };
            let me = self.driver.me;
            let actor = &mut self.actor;
            step(&mut self.driver, me, |ctx| actor.on_timer(tag, ctx));
            self.drain_loopback();
            self.busy = true;
        }
    }

    /// Delivers every held peer frame whose delivery deadline has passed.
    fn deliver_due(&mut self) {
        loop {
            match self.holdq.front() {
                Some(&(due, _, _)) if due <= self.clock.now() => {}
                _ => break,
            }
            let Some((_, from, frame)) = self.holdq.pop_front() else {
                break;
            };
            self.busy = true;
            self.driver.bytes_received += frame.len() as u64 + 4;
            match A::Msg::from_canonical_bytes(&frame) {
                Ok(msg) => {
                    self.driver.msgs_received += 1;
                    if !self.driver.halted {
                        let me = self.driver.me;
                        let actor = &mut self.actor;
                        step(&mut self.driver, me, |ctx| {
                            actor.on_message(ProcessId(from), &msg, ctx);
                        });
                        self.drain_loopback();
                    }
                }
                Err(e) => {
                    // An undecodable frame is transport-level garbage;
                    // note it and drop it, never panic on peer input.
                    self.driver
                        .notes
                        .push(format!("decode-error from=p{from} err={e}"));
                }
            }
        }
    }

    /// Polls every live socket for readability (sleeping up to `wait`
    /// when idle), reads ready ones into their rings, then parses frames.
    fn read_and_parse(&mut self, wait: std::time::Duration) {
        let live: Vec<usize> = (0..self.conns.len())
            .filter(|&i| self.conns[i].is_some())
            .collect();
        let ready: Vec<usize> = {
            let mut fds: Vec<PollFd<'_>> = live
                .iter()
                .map(|&i| PollFd::new(&self.conns[i].as_ref().expect("live index").stream, POLLIN))
                .collect();
            if poll(&mut fds, wait) == 0 {
                Vec::new()
            } else {
                live.iter()
                    .zip(&fds)
                    .filter(|(_, fd)| fd.revents & POLLIN != 0)
                    .map(|(&i, _)| i)
                    .collect()
            }
        };
        for &i in &ready {
            let mut close = false;
            if let Some(conn) = self.conns[i].as_mut() {
                loop {
                    if conn.rb.free() == 0 {
                        break; // inbound backpressure: parse first
                    }
                    let Conn { stream, rb, .. } = conn;
                    match rb.read_from(&mut &*stream) {
                        Ok(0) => {
                            close = true; // EOF (free() > 0 rules out a full ring)
                            break;
                        }
                        Ok(_) => self.busy = true,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            close = true;
                            break;
                        }
                    }
                }
            }
            // Parse what we have even when the socket just closed: frames
            // already buffered must not be lost with the connection.
            self.parse_conn(i);
            if close {
                self.close_conn(i);
            }
        }
        // Connections whose rings were left full last round (inbound
        // backpressure) or whose parsing was deferred during the barrier
        // may have parseable bytes without fresh readiness.
        for &i in &live {
            if !ready.contains(&i) {
                self.parse_conn(i);
            }
        }
    }

    /// Extracts complete frames from slot `i`'s read ring and handles
    /// them according to the connection kind.
    fn parse_conn(&mut self, i: usize) {
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return;
            };
            let kind = conn.kind;
            // Client requests wait until the barrier clears: the actor is
            // not started yet, so a Status/Submit would observe a replica
            // that does not exist.
            if kind == ConnKind::Client && !matches!(self.barrier, BarrierState::Done) {
                return;
            }
            // Frame extraction: length prefix, bounds check, payload.
            let mut len_buf = [0u8; 4];
            if !conn.rb.copy_to(&mut len_buf, 4) {
                return;
            }
            let len = u32::from_be_bytes(len_buf) as usize;
            if len > self.cfg.max_frame {
                self.close_conn(i);
                return;
            }
            if conn.rb.len() < 4 + len {
                return;
            }
            conn.rb.consume(4);
            let mut frame = vec![0u8; len];
            conn.rb.copy_to(&mut frame, len);
            conn.rb.consume(len);
            match kind {
                ConnKind::Pending => {
                    if !self.handshake(i, &frame) {
                        self.close_conn(i);
                        return;
                    }
                }
                ConnKind::PeerIn(from) => self.handle_peer_frame(from, frame),
                ConnKind::PeerOut(_) => {
                    // Peers never send on connections they accepted; any
                    // payload here is garbage. Drop it.
                }
                ConnKind::Client => {
                    if !self.handle_client_frame(i, frame) {
                        return;
                    }
                }
            }
            self.busy = true;
        }
    }

    /// Validates a `Hello` on a pending connection, re-typing the slot.
    /// Returns `false` if the connection must be dropped.
    fn handshake(&mut self, i: usize, frame: &[u8]) -> bool {
        let Ok(hello) = Hello::from_canonical_bytes(frame) else {
            return false;
        };
        if hello.cluster() != self.cfg.cluster {
            return false;
        }
        match hello {
            Hello::Peer { id, .. } => {
                if id as usize >= self.cfg.n || id == self.cfg.me.0 {
                    return false;
                }
                // A reconnecting peer supersedes its old inbound
                // connection (whose EOF we may not have seen yet).
                for j in 0..self.conns.len() {
                    if j != i
                        && matches!(self.conns[j].as_ref(), Some(c) if c.kind == ConnKind::PeerIn(id))
                    {
                        self.close_conn(j);
                    }
                }
                self.inbound_seen[id as usize] = true;
                if let Some(conn) = self.conns[i].as_mut() {
                    conn.kind = ConnKind::PeerIn(id);
                }
            }
            Hello::Client { .. } => {
                if let Some(conn) = self.conns[i].as_mut() {
                    conn.kind = ConnKind::Client;
                }
            }
        }
        true
    }

    /// Routes one inbound peer frame: barrier sentinel or protocol data.
    fn handle_peer_frame(&mut self, from: u32, frame: Vec<u8>) {
        if frame.is_empty() {
            self.driver.bytes_received += 4;
            // A start-barrier sentinel. Recorded regardless of our own
            // phase: a fast peer announces while we are still meshing,
            // and the mark must survive until we reach announcing.
            if let Some(r) = self.peer_ready.get_mut(from as usize) {
                *r = true;
            }
            return;
        }
        let due = self.clock.now() + Duration::of(self.cfg.delivery_delay_ms);
        self.holdq.push_back((due, from, frame));
    }

    /// Services one client request inline. Returns `false` when the
    /// connection was closed (backpressure) and parsing must stop.
    fn handle_client_frame(&mut self, i: usize, frame: Vec<u8>) -> bool {
        let view = NodeView {
            me: self.driver.me,
            now: self.clock.now(),
            decision: self.driver.decision.as_ref(),
            halted: self.driver.halted,
            contradicted: self.driver.contradicted,
            notes: &self.driver.notes,
            msgs_sent: self.driver.msgs_sent,
            msgs_received: self.driver.msgs_received,
            bytes_sent: self.driver.bytes_sent,
            bytes_received: self.driver.bytes_received,
        };
        let out = (self.service)(&mut self.actor, &view, &frame);
        let Some(conn) = self.conns[i].as_mut() else {
            return false;
        };
        if !frame_into(&mut conn.wb, &out.frame) {
            // The client is not draining its replies: cap hit, drop it.
            self.driver
                .notes
                .push("backpressure-disconnect client".into());
            self.close_conn(i);
            return false;
        }
        if out.shutdown {
            self.shutdown = true;
        }
        true
    }

    /// How long the readiness poll may sleep this iteration.
    fn idle_wait(&self) -> std::time::Duration {
        if self.busy {
            return std::time::Duration::ZERO;
        }
        let mut wait = std::time::Duration::from_millis(50);
        match &self.barrier {
            BarrierState::Meshing { .. } => wait = wait.min(std::time::Duration::from_millis(1)),
            BarrierState::Announcing { .. } => {
                wait = wait.min(std::time::Duration::from_millis(5));
            }
            BarrierState::Done => {
                if let Some(deadline) = self.driver.next_deadline() {
                    wait = wait.min(self.clock.until(deadline));
                }
                if let Some(&(due, _, _)) = self.holdq.front() {
                    wait = wait.min(self.clock.until(due));
                }
            }
        }
        // Unflushed writes deserve a quick retry even when sockets are
        // quiet (the peer may drain its receive window at any time).
        let writes_pending = self.conns.iter().flatten().any(|conn| !conn.wb.is_empty());
        if writes_pending {
            wait = wait.min(std::time::Duration::from_millis(5));
        }
        for link in self.links.iter().flatten() {
            if link.conn.is_none() {
                wait = wait.min(self.clock.until(VirtualTime::at(link.next_dial_ms)));
            }
        }
        wait
    }

    /// The readiness loop: runs until the actor halts (with
    /// `exit_on_halt`), a client requests shutdown, the stop flag rises,
    /// or the run bound trips. Returns the final report.
    fn run(&mut self, stop: &AtomicBool) -> NetReport<A::Decision> {
        if matches!(self.barrier, BarrierState::Done) {
            self.start_actor();
        }
        loop {
            self.busy = false;
            if stop.load(Ordering::Relaxed) || self.shutdown {
                break;
            }
            if self.now_ms() >= self.cfg.run_timeout_ms {
                break;
            }
            if self.cfg.exit_on_halt
                && self.driver.halted
                && matches!(self.barrier, BarrierState::Done)
            {
                break;
            }
            self.accept_and_evict();
            self.dial_due();
            self.barrier_step();
            if matches!(self.barrier, BarrierState::Done) {
                self.fire_timers();
                self.deliver_due();
            }
            self.pump();
            let wait = self.idle_wait();
            self.read_and_parse(wait);
        }
        // Exit flush: everything staged before the halt/shutdown should
        // reach the wire, but a wedged peer must not hold the node
        // hostage — bound the flush.
        let flush_deadline = self.now_ms() + EXIT_FLUSH_MS;
        loop {
            self.pump();
            let outstanding = self.conns.iter().flatten().any(|c| !c.wb.is_empty())
                || self.driver.outbox.iter().any(|q| !q.is_empty());
            if !outstanding || self.now_ms() >= flush_deadline {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let end_time = self.clock.now();
        NetReport {
            me: self.driver.me,
            decision: self.driver.decision.clone(),
            halted: self.driver.halted,
            contradicted: self.driver.contradicted,
            notes: std::mem::take(&mut self.driver.notes),
            msgs_sent: self.driver.msgs_sent,
            msgs_received: self.driver.msgs_received,
            bytes_sent: self.driver.bytes_sent,
            bytes_received: self.driver.bytes_received,
            end_time,
        }
    }
}

/// Runs one replica's actor on the TCP transport until it halts (with
/// [`NodeConfig::exit_on_halt`]), a client requests shutdown, or the run
/// bound trips.
///
/// `listener` must already be bound to this node's address — binding is
/// the caller's job so test clusters can use ephemeral ports without a
/// dial race. `service` answers client request frames; it sees the actor
/// (mutably, for protocol-specific state like a log digest) and a
/// [`NodeView`] snapshot of the transport state.
///
/// # Errors
///
/// Only setup failures (listener configuration) surface as `Err`; peer
/// connection losses are absorbed — links are redialed with backoff,
/// matching the crash-recovery model.
pub fn run_node<A, S>(
    cfg: &NodeConfig,
    listener: TcpListener,
    actor: A,
    service: S,
) -> io::Result<NetReport<A::Decision>>
where
    A: Actor,
    A::Msg: CanonicalEncode + CanonicalDecode,
    S: FnMut(&mut A, &NodeView<'_, A::Decision>, &[u8]) -> ServiceReply,
{
    let stop = AtomicBool::new(false);
    run_node_controlled(cfg, listener, actor, service, &stop).map(|(report, _)| report)
}

/// [`run_node`] with an external stop flag, returning the actor alongside
/// the report so a controller can stop a node mid-run and later restart
/// it with its state intact — the transport-level crash/recovery harness
/// used by the chaos tests.
///
/// # Errors
///
/// Only setup failures (listener configuration) surface as `Err`.
pub fn run_node_controlled<A, S>(
    cfg: &NodeConfig,
    listener: TcpListener,
    actor: A,
    service: S,
    stop: &AtomicBool,
) -> io::Result<(NetReport<A::Decision>, A)>
where
    A: Actor,
    A::Msg: CanonicalEncode + CanonicalDecode,
    S: FnMut(&mut A, &NodeView<'_, A::Decision>, &[u8]) -> ServiceReply,
{
    assert_eq!(
        cfg.peers.len(),
        cfg.n,
        "peer list must have one address per replica"
    );
    assert!(cfg.me.index() < cfg.n, "me out of range");
    listener.set_nonblocking(true)?;
    let clock = WallClock::start();
    let links = (0..cfg.n)
        .map(|id| {
            if id == cfg.me.index() {
                None
            } else {
                Some(PeerLink {
                    addr: cfg.peers[id].clone(),
                    resolved: None,
                    conn: None,
                    backoff: Backoff::new(derive_seed(cfg.seed, u64::from(cfg.me.0)) ^ id as u64),
                    next_dial_ms: 0,
                    queue: VecDeque::new(),
                    queued_bytes: 0,
                    dropped_note: false,
                })
            }
        })
        .collect();
    let barrier = if cfg.start_barrier && cfg.n > 1 {
        BarrierState::Meshing {
            deadline_ms: cfg.connect_timeout_ms,
        }
    } else {
        BarrierState::Done
    };
    let mut node = NodeLoop {
        cfg,
        clock,
        listener,
        conns: Vec::new(),
        links,
        inbound_seen: vec![false; cfg.n],
        peer_ready: vec![false; cfg.n],
        driver: NetDriver::new(cfg, clock),
        actor,
        service,
        holdq: VecDeque::new(),
        barrier,
        shutdown: false,
        busy: false,
    };
    let report = node.run(stop);
    Ok((report, node.actor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_convictions_handles_prefixes_and_noise() {
        let notes = vec![
            "detected=p3 class=bad-certificate reason=x".to_string(),
            "s7: detected=p1 class=protocol-violation reason=y".to_string(),
            "round=2 opened".to_string(),
        ];
        assert_eq!(
            parse_convictions(&notes),
            vec![
                ("p3".to_string(), "bad-certificate".to_string()),
                ("p1".to_string(), "protocol-violation".to_string()),
            ]
        );
    }

    #[test]
    fn driver_timers_fire_in_deadline_then_seq_order() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["unused".into()], 0, 1);
        let clock = WallClock::start();
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, clock);
        d.schedule(ProcessId(0), Duration::of(0), 10);
        d.schedule(ProcessId(0), Duration::of(0), 11);
        let far = VirtualTime::MAX;
        assert_eq!(d.pop_due(far), Some(10));
        assert_eq!(d.pop_due(far), Some(11));
        assert_eq!(d.pop_due(far), None);
    }

    #[test]
    fn driver_contradiction_and_halt_semantics() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["unused".into()], 0, 1);
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, WallClock::start());
        d.record_decision(ProcessId(0), 5);
        d.record_decision(ProcessId(0), 5);
        assert!(!d.contradicted);
        d.record_decision(ProcessId(0), 6);
        assert!(d.contradicted);
        assert_eq!(d.decision, Some(5));
        d.schedule(ProcessId(0), Duration::of(1), 1);
        d.loopback.push_back(9);
        d.record_halt(ProcessId(0));
        assert!(d.halted && d.timers.is_empty() && d.loopback.is_empty());
    }

    #[test]
    fn loopback_dispatch_stays_decoded() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["a".into(), "b".into()], 0, 1);
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, WallClock::start());
        d.dispatch(ProcessId(0), StagedSend::ToAll(42));
        assert_eq!(d.loopback.pop_front(), Some(42));
        assert_eq!(d.msgs_sent, 2); // self copy + one remote frame
        assert_eq!(d.outbox[1].len(), 1);
    }

    #[test]
    fn outbox_send_counts_frame_overhead() {
        let cfg = NodeConfig::new(ProcessId(0), vec!["a".into(), "b".into()], 0, 1);
        let mut d: NetDriver<u64, u64> = NetDriver::new(&cfg, WallClock::start());
        d.send_bytes(ProcessId(1), vec![0u8; 10]);
        assert_eq!(d.bytes_sent, 14);
        assert_eq!(d.msgs_sent, 1);
    }

    #[test]
    fn peer_link_queue_drops_oldest_at_cap() {
        let mut link = PeerLink {
            addr: "unused".into(),
            resolved: None,
            conn: None,
            backoff: Backoff::new(1),
            next_dial_ms: 0,
            queue: VecDeque::new(),
            queued_bytes: 0,
            dropped_note: false,
        };
        let frame = vec![0u8; PEER_QUEUE_CAP / 4 - 4];
        for _ in 0..4 {
            assert!(!link.enqueue(frame.clone()), "under cap: nothing dropped");
        }
        assert!(link.enqueue(frame.clone()), "cap exceeded: oldest dropped");
        assert!(link.queued_bytes <= PEER_QUEUE_CAP);
    }
}
