//! Length-prefixed framing and the connection handshake.
//!
//! # Wire format
//!
//! Every frame on a connection is a big-endian `u32` length followed by
//! exactly that many payload bytes:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 (BE)  | payload: len bytes  |
//! +----------------+---------------------+
//! ```
//!
//! The payload of a peer frame is the *canonical encoding* of the protocol
//! message (the same [`ftm_crypto::wire`] bytes that signatures are
//! computed over), so a frame can be decoded without copying: the length
//! prefix delimits the message and the canonical decoder reads big-endian
//! fields in place. The current implementation reads each frame into one
//! `Vec<u8>` and decodes from that buffer; a zero-copy decoder would only
//! need to borrow the same slice.
//!
//! The first frame on every connection is a [`Hello`] identifying the
//! dialer; everything after is protocol (peer) or request/reply (client)
//! traffic. The `Hello` carries a magic number, a format version and a
//! cluster id so that cross-version or cross-cluster connections fail
//! loudly at the handshake instead of corrupting a run.

use std::io::{self, Read, Write};

use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode, DecodeError, Decoder, Encoder};

/// Frame/handshake magic: `"FTMN"` as a big-endian `u32`.
pub const MAGIC: u32 = 0x4654_4D4E;

/// Wire-format version; bumped on any incompatible change.
pub const VERSION: u32 = 1;

/// Default cap on a single frame's payload (1 MiB). A length prefix above
/// the cap is treated as corruption and rejected without allocating.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Writes one length-prefixed frame and flushes the writer.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads longer than `u32::MAX` as
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32::MAX"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame, enforcing `max_frame`.
///
/// # Errors
///
/// * [`io::ErrorKind::InvalidData`] if the length prefix exceeds
///   `max_frame` (corrupt or hostile peer);
/// * [`io::ErrorKind::UnexpectedEof`] if the connection closes mid-frame;
/// * any other I/O error from the underlying reader.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_frame}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Stages one length-prefixed frame into a write ring, atomically:
/// either the whole frame (prefix + payload) fits under the ring's cap
/// and `true` is returned, or the ring is left untouched and `false` is
/// returned — a partially staged frame would desync the stream.
pub fn frame_into(ring: &mut crate::ring::RingBuf, payload: &[u8]) -> bool {
    if ring.free() < payload.len() + 4 || payload.len() > u32::MAX as usize {
        return false;
    }
    let len = payload.len() as u32;
    ring.push(&len.to_be_bytes()) && ring.push(payload)
}

/// The first frame on every connection: who is dialing, and for which
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hello {
    /// A replica-to-replica connection; `id` is the dialer's process id.
    Peer {
        /// Dialer's process id (its index in the cluster).
        id: u32,
        /// Cluster identity; both ends must agree.
        cluster: u64,
    },
    /// A client connection (request/reply traffic).
    Client {
        /// Cluster identity the client expects to talk to.
        cluster: u64,
    },
}

impl Hello {
    /// Cluster id carried by either variant.
    pub fn cluster(&self) -> u64 {
        match self {
            Hello::Peer { cluster, .. } | Hello::Client { cluster } => *cluster,
        }
    }
}

impl CanonicalEncode for Hello {
    fn encode(&self, enc: &mut Encoder) {
        enc.u32(MAGIC);
        enc.u32(VERSION);
        match self {
            Hello::Peer { id, cluster } => {
                enc.tag(1);
                enc.u32(*id);
                enc.u64(*cluster);
            }
            Hello::Client { cluster } => {
                enc.tag(2);
                enc.u64(*cluster);
            }
        }
    }
}

impl CanonicalDecode for Hello {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let magic = dec.u32()?;
        if magic != MAGIC {
            return Err(DecodeError::BadLength(magic));
        }
        let version = dec.u32()?;
        if version != VERSION {
            return Err(DecodeError::BadLength(version));
        }
        match dec.tag()? {
            1 => Ok(Hello::Peer {
                id: dec.u32()?,
                cluster: dec.u64()?,
            }),
            2 => Ok(Hello::Client {
                cluster: dec.u64()?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read"),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).expect("read empty"),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(buf), 1024).expect_err("cap");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_eof_not_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut io::Cursor::new(buf), 1024).expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_into_is_atomic_at_the_cap() {
        let mut ring = crate::ring::RingBuf::with_max(4096);
        assert!(frame_into(&mut ring, b"hello"));
        assert_eq!(ring.len(), 9);
        let big = vec![0u8; 4096];
        assert!(!frame_into(&mut ring, &big), "must refuse, not truncate");
        assert_eq!(ring.len(), 9, "refused push leaves the ring untouched");
        let mut out = vec![0u8; 9];
        assert!(ring.copy_to(&mut out, 9));
        assert_eq!(&out[..4], &5u32.to_be_bytes());
        assert_eq!(&out[4..], b"hello");
    }

    #[test]
    fn hello_roundtrip_both_variants() {
        for hello in [
            Hello::Peer {
                id: 3,
                cluster: 0xDEAD,
            },
            Hello::Client { cluster: 0xBEEF },
        ] {
            let bytes = hello.canonical_bytes();
            assert_eq!(Hello::from_canonical_bytes(&bytes), Ok(hello));
        }
    }

    #[test]
    fn hello_rejects_wrong_magic_version_and_tag() {
        let good = Hello::Client { cluster: 1 }.canonical_bytes();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Hello::from_canonical_bytes(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[7] = 99;
        assert!(Hello::from_canonical_bytes(&bad_version).is_err());
        let mut bad_tag = good;
        bad_tag[8] = 9;
        assert_eq!(
            Hello::from_canonical_bytes(&bad_tag),
            Err(DecodeError::BadTag(9))
        );
    }
}
