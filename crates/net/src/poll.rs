//! A poll(2)-shaped readiness probe over non-blocking sockets, built
//! entirely from safe `std` (the workspace forbids `unsafe`, so the raw
//! `poll`/`epoll` syscalls are out of reach).
//!
//! The shape mirrors `struct pollfd`: callers hand in a slice of
//! [`PollFd`] entries with an *interest* mask and get back per-entry
//! *revents* plus a ready count. Semantics are level-triggered:
//!
//! * **Read** readiness is probed with [`TcpStream::peek`] on a one-byte
//!   scratch buffer — `Ok(n > 0)` means payload is waiting, `Ok(0)` means
//!   EOF (a read will observe the close), `WouldBlock` means not ready,
//!   and any other error is reported as ready-with-error so the owner
//!   discovers it at the read site.
//! * **Write** readiness is optimistic: a connected TCP socket is almost
//!   always writable, so entries asking for [`POLLOUT`] are reported
//!   ready and the owner learns the truth from `WouldBlock` at the write
//!   site. This matches how the readiness loop uses it — `POLLOUT`
//!   interest is only registered while a write ring has bytes queued.
//!
//! When no entry is ready the probe sleeps in ~1 ms slices up to the
//! caller's timeout, so an idle node burns negligible CPU while a busy
//! one never sleeps at all. Deadlines are read through
//! [`WallClock`] — `ftm-lint` D3 confines the
//! raw clock to `clock.rs`, and this module stays on the sanctioned API.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use crate::clock::WallClock;

/// Interest/readiness bit: data to read (or EOF/error pending).
pub const POLLIN: u8 = 0b01;
/// Interest/readiness bit: socket writable (reported optimistically).
pub const POLLOUT: u8 = 0b10;

/// One registered socket: interest mask in, readiness mask out.
#[derive(Debug)]
pub struct PollFd<'a> {
    /// The non-blocking socket to probe.
    pub stream: &'a TcpStream,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: u8,
    /// Returned events; cleared on entry to [`poll`].
    pub revents: u8,
}

impl<'a> PollFd<'a> {
    /// An entry asking for `events` on `stream`.
    pub fn new(stream: &'a TcpStream, events: u8) -> Self {
        PollFd {
            stream,
            events,
            revents: 0,
        }
    }
}

/// Probes read readiness of one socket without consuming bytes.
fn read_ready(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(_) => true, // payload waiting, or Ok(0) EOF — both readable
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
        Err(_) => true, // surface the error at the owner's read site
    }
}

/// One readiness scan over `fds`, filling `revents` and returning the
/// number of ready entries. Does not sleep.
fn scan(fds: &mut [PollFd<'_>]) -> usize {
    let mut ready = 0;
    for fd in fds.iter_mut() {
        fd.revents = 0;
        if fd.events & POLLIN != 0 && read_ready(fd.stream) {
            fd.revents |= POLLIN;
        }
        if fd.events & POLLOUT != 0 {
            fd.revents |= POLLOUT;
        }
        if fd.revents != 0 {
            ready += 1;
        }
    }
    ready
}

/// Level-triggered readiness poll: fills each entry's `revents` and
/// returns how many entries are ready, sleeping in ~1 ms slices up to
/// `timeout` while nothing is.
pub fn poll(fds: &mut [PollFd<'_>], timeout: Duration) -> usize {
    let clock = WallClock::start();
    let timeout_us = u64::try_from(timeout.as_micros()).unwrap_or(u64::MAX);
    loop {
        let ready = scan(fds);
        if ready > 0 || clock.micros() >= timeout_us {
            return ready;
        }
        std::thread::sleep(Duration::from_millis(1).min(timeout));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        (a, b)
    }

    #[test]
    fn quiet_socket_is_not_read_ready_and_times_out() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(&a, POLLIN)];
        let clock = WallClock::start();
        assert_eq!(poll(&mut fds, Duration::from_millis(20)), 0);
        assert!(clock.micros() >= 20_000, "poll returned before its timeout");
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn payload_and_eof_both_trigger_pollin() {
        let (a, mut b) = pair();
        b.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(&a, POLLIN)];
        assert_eq!(poll(&mut fds, Duration::from_secs(1)), 1);
        assert_eq!(fds[0].revents & POLLIN, POLLIN);
        drop(b);
        // Peer closed: still read-ready (read will observe EOF), and the
        // probe must not consume the buffered byte.
        let mut fds = [PollFd::new(&a, POLLIN)];
        assert_eq!(poll(&mut fds, Duration::from_secs(1)), 1);
    }

    #[test]
    fn pollout_is_reported_optimistically() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(&a, POLLOUT)];
        assert_eq!(poll(&mut fds, Duration::from_millis(5)), 1);
        assert_eq!(fds[0].revents, POLLOUT);
    }
}
