//! Minimal markdown table builder for experiment output.

use std::fmt;

/// A markdown table under construction.
///
/// # Example
///
/// ```
/// use ftm_bench::Table;
/// let mut t = Table::new(["n", "rounds"]);
/// t.row(["4", "1.0"]);
/// let s = t.to_string();
/// assert!(s.contains("| n | rounds |"));
/// assert!(s.contains("| 4 | 1.0 |"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.header.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage with one decimal, in pure integer
/// arithmetic (round-half-up in tenths of a percent): the experiment
/// tables obey the same no-float policy as the sweep reports.
pub fn pct(hits: usize, total: usize) -> String {
    match (hits * 1000 + total / 2).checked_div(total) {
        None => "n/a".to_string(),
        Some(tenths) => format!("{}.{}%", tenths / 10, tenths % 10),
    }
}

/// Formats the mean of integer samples with one decimal (integer
/// arithmetic, round-half-up in tenths).
pub fn mean(values: &[u64]) -> String {
    if values.is_empty() {
        "n/a".to_string()
    } else {
        let sum: u64 = values.iter().sum();
        let n = values.len() as u64;
        let tenths = (sum * 10 + n / 2) / n;
        format!("{}.{}", tenths / 10, tenths % 10)
    }
}

/// Formats the ratio `num / den` with one decimal (integer arithmetic,
/// round-half-up in tenths); `n/a` for an empty denominator.
pub fn ratio(num: u64, den: u64) -> String {
    match (num * 10 + den / 2).checked_div(den) {
        None => "n/a".to_string(),
        Some(tenths) => format!("{}.{}", tenths / 10, tenths % 10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        let s = t.to_string();
        assert!(s.starts_with("| a | b |\n|---|---|\n"));
        assert!(s.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(1, 2), "50.0%");
        assert_eq!(pct(2, 3), "66.7%");
        assert_eq!(pct(0, 0), "n/a");
        assert_eq!(mean(&[1, 2]), "1.5");
        assert_eq!(mean(&[]), "n/a");
        assert_eq!(ratio(45, 10), "4.5");
        assert_eq!(ratio(1, 0), "n/a");
    }
}
