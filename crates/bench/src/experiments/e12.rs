//! E12 — Hot-path cost program: certificate checkpointing and signature
//! amortization.
//!
//! Two optimizations landed together and this experiment quantifies both
//! with deterministic integers (every number below reproduces bit-for-bit
//! on any machine; the machine-dependent wall-clock medians live in the
//! committed `BENCH_<n>.json` baseline that `ftm-bench --compare` gates).
//!
//! * **Certificate checkpointing** (`Retention::Checkpoint`): once a log
//!   slot decides, the replica compacts the slot's decide-vote quorum
//!   into one signed checkpoint envelope and drops the accumulated
//!   per-slot certificates. Retained evidence bytes go from linear in
//!   the slot count to flat — the first table. Compaction is purely
//!   local (zero wire traffic), so decisions, virtual end-times and
//!   conviction splits are unchanged (asserted here and in
//!   `tests/fault_matrix.rs`).
//! * **Signature amortization**: the key directory memoizes signature
//!   verdicts per `(signer, digest, signature)` triple, and
//!   `verify_envelopes_batched` verifies a round's *distinct* signed
//!   cores exactly once — fanned over the sweep harness's work-stealing
//!   workers — before assembling per-envelope verdicts from the memo.
//!   The second table counts RSA computations saved. Verdicts are
//!   asserted byte-identical across 1/2/8 worker threads before the
//!   section renders.

use ftm_certify::verify_envelopes_batched;
use ftm_core::byzantine::log::Retention;
use ftm_crypto::keydir::KeyDirectory;
use ftm_faults::AttackRun;
use ftm_sim::trace::TraceEvent;

use crate::report::Table;
use crate::suite::round_burst;

const SEED: u64 = 0xE12;

/// Replica 0's retained-evidence byte series under `retention` for an
/// honest fixed-seed `(4, 1)` log run of `slots` slots.
fn retained_series(retention: Retention, slots: u64) -> Vec<u64> {
    let prefix = match retention {
        Retention::Full => "evidence slot=",
        Retention::Checkpoint => "checkpoint slot=",
    };
    let report = AttackRun::new(4, 1, SEED, 0)
        .retention(retention)
        .run_log(slots, |_| None);
    report
        .trace
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Note { process, text } if process.0 == 0 && text.starts_with(prefix) => {
                text.rsplit_once("bytes=").and_then(|(_, b)| b.parse().ok())
            }
            _ => None,
        })
        .collect()
}

fn retention_table() -> Table {
    let mut t = Table::new([
        "slots",
        "full retention (B)",
        "checkpointed (B)",
        "full/checkpoint",
    ]);
    for slots in [1u64, 2, 4, 8] {
        let full = retained_series(Retention::Full, slots);
        let flat = retained_series(Retention::Checkpoint, slots);
        assert_eq!(full.len() as u64, slots, "full run lost a slot");
        assert_eq!(flat.len() as u64, slots, "a slot was never compacted");
        let full_end = *full.last().unwrap();
        let flat_max = *flat.iter().max().unwrap();
        assert!(
            slots == 1 || full_end > flat_max,
            "compaction failed to undercut full retention"
        );
        t.row([
            slots.to_string(),
            full_end.to_string(),
            flat_max.to_string(),
            format!(
                "{}.{:02}x",
                full_end / flat_max,
                (full_end * 100 / flat_max) % 100
            ),
        ]);
    }
    t
}

fn amortization_table() -> Table {
    let mut t = Table::new([
        "round burst",
        "signature checks",
        "RSA computations",
        "memo answers",
        "saved",
    ]);
    for n in [4usize, 7] {
        let (keys, envs) = round_burst(n);
        let dir = KeyDirectory::new(keys.iter().map(|kp| kp.public().clone()).collect());

        // Verdicts must not depend on the worker count.
        let baseline: Vec<bool> = verify_envelopes_batched(&dir, &envs, 1)
            .iter()
            .map(Result::is_ok)
            .collect();
        for threads in [2usize, 8] {
            let fresh = KeyDirectory::new(keys.iter().map(|kp| kp.public().clone()).collect());
            let verdicts: Vec<bool> = verify_envelopes_batched(&fresh, &envs, threads)
                .iter()
                .map(Result::is_ok)
                .collect();
            assert_eq!(baseline, verdicts, "thread count changed a verdict");
        }
        assert!(baseline.iter().all(|&ok| ok), "honest burst rejected");

        // Counted on a fresh directory: misses = RSA computations (one
        // per distinct signed core), hits = memo answers.
        let counted = KeyDirectory::new(keys.iter().map(|kp| kp.public().clone()).collect());
        let _ = verify_envelopes_batched(&counted, &envs, 4);
        let misses = counted.cache_misses();
        let hits = counted.cache_hits();
        let checks: u64 = envs.iter().map(|e| 1 + e.cert.len() as u64).sum();
        // The burst has n distinct INITs + n distinct CURRENT heads; every
        // one of the n*(n+1) per-envelope checks is then a memo answer.
        assert_eq!(misses, 2 * n as u64, "unexpected distinct-signature count");
        assert_eq!(hits, checks, "assembly should be answered from the memo");
        t.row([
            format!("n={n} (CURRENT + INIT certs)"),
            checks.to_string(),
            misses.to_string(),
            hits.to_string(),
            format!("{}%", (checks - misses) * 100 / checks),
        ]);
    }
    t
}

/// Renders the E12 section.
pub fn run() -> String {
    let retention = retention_table();
    let amortization = amortization_table();
    let mut s = String::new();
    s.push_str(
        "## E12 — Hot-path costs: certificate checkpointing and signature \
         amortization\n\n\
         Retained certificate evidence at one replica of an honest \
         `(n, F) = (4, 1)` replicated-log run (fixed seed): under full \
         retention the per-slot decide certificates accumulate, so the \
         end-of-run figure grows linearly with the slot count; under \
         `Retention::Checkpoint` every decided slot is compacted into one \
         quorum-signed checkpoint envelope and the figure is flat (the \
         small per-slot jitter is quorum composition, not growth). \
         Compaction is local — the same seeds decide the same values at \
         the same virtual times, with identical conviction splits \
         (asserted in `tests/fault_matrix.rs` and before this table \
         renders).\n\n",
    );
    s.push_str(&retention.to_string());
    s.push_str(
        "\nSignature amortization on one round burst (every process's \
         CURRENT carrying all n signed INITs): a naive receive path runs \
         one RSA verification per signature *appearance*; the directory \
         memo plus `verify_envelopes_batched` computes each *distinct* \
         `(signer, digest, signature)` once — in parallel over the sweep \
         harness's work-stealing workers — and answers the rest from the \
         memo. Verdicts are asserted byte-identical across 1/2/8 worker \
         threads before this section renders.\n\n",
    );
    s.push_str(&amortization.to_string());
    s.push_str(
        "\nWall-clock medians for the same workloads are machine-dependent \
         and therefore live outside this file, in the committed \
         `BENCH_<n>.json` baseline (generated by `FTM_BENCH_JSON=1 \
         ftm-bench`, gated by `ftm-bench --compare` in CI — bytes-per-op \
         hard, wall-clock warn-only at +25%). Representative figures from \
         the baseline machine: a cold signature verification ~4.3 µs, a \
         memo answer ~65 ns (~66x less), a 4-process round batch 62 µs \
         versus 74 µs naive.\n\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_renders_with_flat_checkpoint_column() {
        let section = run();
        assert!(section.contains("## E12"));
        assert!(section.contains("full/checkpoint"));
        assert!(section.contains("saved"));
    }
}
