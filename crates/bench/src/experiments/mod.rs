//! One module per experiment in the DESIGN.md index.

pub mod common;
pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

/// All experiment ids in order.
pub const ALL: [&str; 12] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
];

/// Runs one experiment by id, returning its markdown section.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run(id: &str) -> String {
    match id {
        "e1" => e1::run(),
        "e2" => e2::run(),
        "e3" => e3::run(),
        "e4" => e4::run(),
        "e5" => e5::run(),
        "e6" => e6::run(),
        "e7" => e7::run(),
        "e8" => e8::run(),
        "e9" => e9::run(),
        "e10" => e10::run(),
        "e11" => e11::run(),
        "e12" => e12::run(),
        other => panic!("unknown experiment id {other:?} (expected e1..e12)"),
    }
}
