//! Shared run helpers for the experiment harness.

use ftm_certify::{Value, ValueVector};
use ftm_core::byzantine::ByzantineConsensus;
use ftm_core::config::{ProtocolConfig, ProtocolSetup};
use ftm_core::crash::CrashConsensus;
use ftm_core::spec::Resilience;
use ftm_core::validator::{check_crash_consensus, check_vector_consensus, max_round, Verdict};
use ftm_faults::{ByzantineWrapper, Tamper};
use ftm_fd::TimeoutDetector;
use ftm_sim::runner::BoxedActor;
use ftm_sim::{Duration, ProcessId, RunReport, SimConfig, Simulation, VirtualTime};

/// Standard proposal vector: `p_i` proposes `100 + i`.
pub fn proposals(n: usize) -> Vec<Value> {
    (0..n as u64).map(|i| 100 + i).collect()
}

/// Aggregate outcome of one run, shared by several experiment tables.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Validator verdict.
    pub verdict: Verdict,
    /// Highest round any process opened.
    pub rounds: usize,
    /// Virtual time of the run's end.
    pub latency: u64,
    /// Messages handed to the network.
    pub messages: u64,
    /// Payload bytes handed to the network.
    pub bytes: u64,
}

/// Runs the crash-model protocol; `crashes` are `(process, time)` pairs.
pub fn run_crash(n: usize, seed: u64, crashes: &[(usize, u64)]) -> (RunReport<Value>, Outcome) {
    let mut cfg = SimConfig::new(n).seed(seed);
    for &(p, t) in crashes {
        cfg = cfg.crash(p, VirtualTime::at(t));
    }
    let res = Resilience::new(n, ftm_core::quorum::max_faults(n));
    let report = Simulation::build(cfg, |id| {
        CrashConsensus::new(
            res,
            id,
            100 + id.0 as u64,
            TimeoutDetector::new(n, Duration::of(150)),
            Duration::of(25),
            Some(Duration::of(40)),
        )
    })
    .run();
    let verdict = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
    let outcome = Outcome {
        rounds: max_round(&report.trace, n),
        latency: report.end_time.ticks(),
        messages: report.metrics.messages_sent,
        bytes: report.metrics.bytes_sent,
        verdict,
    };
    (report, outcome)
}

/// Runs the transformed protocol with optional crashes and at most one
/// Byzantine attacker.
pub fn run_byz(
    n: usize,
    f: usize,
    seed: u64,
    crashes: &[(usize, u64)],
    attacker: Option<(u32, Box<dyn Tamper>)>,
) -> (RunReport<ValueVector>, Outcome) {
    run_byz_with_config(
        ProtocolConfig::new(n, f).seed(seed),
        seed,
        crashes,
        attacker,
    )
}

/// Like [`run_byz`] with an explicit protocol configuration (ablation,
/// timeout sweeps).
pub fn run_byz_with_config(
    config: ProtocolConfig,
    seed: u64,
    crashes: &[(usize, u64)],
    attacker: Option<(u32, Box<dyn Tamper>)>,
) -> (RunReport<ValueVector>, Outcome) {
    let mut cfg = SimConfig::new(config.n).seed(seed);
    for &(p, t) in crashes {
        cfg = cfg.crash(p, VirtualTime::at(t));
    }
    run_byz_sim(config, cfg, attacker)
}

/// Most general byzantine-run helper: explicit protocol and simulator
/// configurations (network-condition sweeps).
pub fn run_byz_sim(
    config: ProtocolConfig,
    cfg: SimConfig,
    attacker: Option<(u32, Box<dyn Tamper>)>,
) -> (RunReport<ValueVector>, Outcome) {
    let n = config.n;
    let f = config.f;
    let setup: ProtocolSetup = config.setup();
    let props = proposals(n);
    let attacker_id = attacker.as_ref().map(|(a, _)| *a as usize);
    let mut attacker = attacker;
    let report = Simulation::build_boxed(cfg, |id| {
        let honest = ByzantineConsensus::new(&setup, id, props[id.index()]);
        match &mut attacker {
            Some((a, _)) if *a == id.0 => {
                let (a, tamper) = attacker.take().expect("just matched");
                Box::new(ByzantineWrapper::new(
                    honest,
                    tamper,
                    setup.keys[a as usize].clone(),
                    Duration::of(10),
                )) as BoxedActor<_, ValueVector>
            }
            _ => Box::new(honest),
        }
    })
    .run();

    // Crashed processes are excluded via report.crashed; mark the
    // Byzantine attacker explicitly.
    let mut faulty = vec![false; n];
    if let Some(a) = attacker_id {
        faulty[a] = true;
    }
    let verdict = check_vector_consensus(&report, &proposals(n), &faulty, f);
    let outcome = Outcome {
        rounds: max_round(&report.trace, n),
        latency: report.end_time.ticks(),
        messages: report.metrics.messages_sent,
        bytes: report.metrics.bytes_sent,
        verdict,
    };
    (report, outcome)
}

/// Re-judges a finished transformed-protocol run with an explicit faulty
/// mask (used when an attacker was injected).
pub fn verdict_with_faulty(
    report: &RunReport<ValueVector>,
    n: usize,
    f: usize,
    faulty: &[usize],
) -> Verdict {
    let mut mask = vec![false; n];
    for &i in faulty {
        mask[i] = true;
    }
    check_vector_consensus(report, &proposals(n), &mask, f)
}

/// Re-judges a finished crash-protocol run with an explicit faulty mask.
pub fn crash_verdict_with_faulty(report: &RunReport<Value>, n: usize, faulty: &[usize]) -> Verdict {
    let mut mask = vec![false; n];
    for &i in faulty {
        mask[i] = true;
    }
    check_crash_consensus(report, &proposals(n), &mask)
}

/// Convenience: all-honest byzantine run.
pub fn run_byz_honest(n: usize, f: usize, seed: u64) -> (RunReport<ValueVector>, Outcome) {
    run_byz(n, f, seed, &[], None)
}

/// First detection note time, if any conviction happened.
pub fn first_detection(report: &RunReport<ValueVector>) -> Option<u64> {
    ftm_core::validator::detections(&report.trace)
        .iter()
        .map(|d| d.at.ticks())
        .min()
}

/// Number of distinct correct observers that convicted `culprit`.
pub fn observers_convicting(report: &RunReport<ValueVector>, culprit: u32) -> usize {
    use std::collections::HashSet;
    let name = format!("p{culprit}");
    ftm_core::validator::detections(&report.trace)
        .iter()
        .filter(|d| d.culprit == name && d.observer != ProcessId(culprit))
        .map(|d| d.observer)
        .collect::<HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_helper_produces_clean_outcome() {
        let (_, o) = run_crash(4, 1, &[]);
        assert!(o.verdict.ok());
        assert_eq!(o.rounds, 1);
        assert!(o.messages > 0 && o.bytes > 0 && o.latency > 0);
    }

    #[test]
    fn byz_helper_produces_clean_outcome() {
        let (_, o) = run_byz_honest(4, 1, 1);
        assert!(o.verdict.ok(), "{:?}", o.verdict.violations);
    }

    #[test]
    fn verdict_with_faulty_excludes_attacker() {
        let (report, _) = run_byz_honest(4, 1, 2);
        let v = verdict_with_faulty(&report, 4, 1, &[3]);
        assert!(v.ok(), "{:?}", v.violations);
    }
}
