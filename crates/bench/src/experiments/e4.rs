//! E4 — Fig. 4: detection coverage and latency per fault class.

use ftm_core::validator::detections;
use ftm_faults::attacks::MuteAfter;
use ftm_faults::attacks::{
    DecideForger, IdentityThief, RoundJumper, SpuriousCurrent, VectorCorruptor, VoteDuplicator,
    WrongKeySigner,
};
use ftm_faults::Tamper;
use ftm_sim::{ProcessId, VirtualTime};

use crate::experiments::common::{run_byz, verdict_with_faulty};
use crate::report::{mean, pct, Table};

const SEEDS: u64 = 15;

struct Case {
    name: &'static str,
    expected_class: &'static str,
    attacker: u32,
    /// Crash p0 at t=0 to force NEXT traffic (for vote-pattern attacks).
    kill_coordinator: bool,
    mk: fn(usize) -> Box<dyn Tamper>,
}

/// Runs E4 and renders its markdown section.
pub fn run() -> String {
    let cases = [
        Case {
            name: "vector corruption (coordinator)",
            expected_class: "bad-certificate",
            attacker: 0,
            kill_coordinator: false,
            mk: |n| {
                Box::new(VectorCorruptor {
                    entry: n - 2,
                    poison: 666,
                })
            },
        },
        Case {
            name: "forged DECIDE",
            expected_class: "bad-certificate",
            attacker: 3,
            kill_coordinator: false,
            mk: |n| Box::new(DecideForger::new(VirtualTime::at(1), n, 999)),
        },
        Case {
            name: "spurious CURRENT",
            expected_class: "bad-certificate",
            attacker: 3,
            kill_coordinator: false,
            mk: |n| Box::new(SpuriousCurrent::new(VirtualTime::at(1), n)),
        },
        Case {
            name: "wrong signing key",
            expected_class: "bad-signature",
            attacker: 3,
            kill_coordinator: false,
            mk: |_| {
                let mut rng = ftm_crypto::rng_from_seed(0xBAD);
                Box::new(WrongKeySigner {
                    wrong: ftm_crypto::rsa::KeyPair::generate(&mut rng, 128),
                })
            },
        },
        Case {
            name: "identity theft",
            expected_class: "bad-signature",
            attacker: 3,
            kill_coordinator: false,
            mk: |_| {
                Box::new(IdentityThief {
                    victim: ProcessId(1),
                })
            },
        },
        Case {
            name: "round jumping (+5)",
            expected_class: "out-of-order",
            attacker: 4,
            kill_coordinator: true,
            mk: |_| Box::new(RoundJumper { jump: 5 }),
        },
        Case {
            name: "vote duplication",
            expected_class: "out-of-order",
            attacker: 4,
            kill_coordinator: true,
            mk: |_| Box::new(VoteDuplicator),
        },
    ];

    let mut out = String::from(
        "## E4 — Non-muteness detection coverage and latency (paper Fig. 4)\n\n\
         15 seeds per row. `coverage` = fraction of runs in which at least one\n\
         correct process convicted the attacker with the expected class;\n\
         `observers` = mean number of distinct correct convictors per detecting\n\
         run (processes that decide before the faulty message arrives never see\n\
         it); `latency` = mean virtual time of the first conviction. Vote-pattern\n\
         attacks run with the round-1 coordinator crashed so NEXT votes flow\n\
         (n = 5, F = 2); the rest use n = 4, F = 1. Properties held in every\n\
         run of every row.\n\n",
    );
    let mut t = Table::new([
        "fault class injected",
        "expected class",
        "coverage",
        "observers",
        "latency",
        "properties",
    ]);

    for case in &cases {
        let (n, f, crashes): (usize, usize, Vec<(usize, u64)>) = if case.kill_coordinator {
            (5, 2, vec![(0, 0)])
        } else {
            (4, 1, vec![])
        };
        let mut covered = 0;
        let mut all_ok = 0;
        let mut observers = Vec::new();
        let mut latencies = Vec::new();
        for seed in 0..SEEDS {
            let (report, _) = run_byz(n, f, seed, &crashes, Some((case.attacker, (case.mk)(n))));
            let mut faulty: Vec<usize> = crashes.iter().map(|&(p, _)| p).collect();
            faulty.push(case.attacker as usize);
            if verdict_with_faulty(&report, n, f, &faulty).ok() {
                all_ok += 1;
            }
            let det = detections(&report.trace);
            let culprit = format!("p{}", case.attacker);
            let matching: Vec<_> = det
                .iter()
                .filter(|d| {
                    d.culprit == culprit
                        && d.class == case.expected_class
                        && d.observer != ProcessId(case.attacker)
                })
                .collect();
            if !matching.is_empty() {
                covered += 1;
                let distinct: std::collections::HashSet<_> =
                    matching.iter().map(|d| d.observer).collect();
                observers.push(distinct.len() as f64);
                latencies.push(matching.iter().map(|d| d.at.ticks()).min().unwrap() as f64);
            }
        }
        t.row([
            case.name.to_string(),
            case.expected_class.to_string(),
            pct(covered, SEEDS as usize),
            mean(&observers),
            mean(&latencies),
            pct(all_ok, SEEDS as usize),
        ]);
    }

    out.push_str(&t.to_string());

    // Muteness: detected by the ◇M module (suspicion), not by conviction.
    out.push_str(
        "\n### Muteness (the ◇M module's half of the detection work)\n\n\
         The mute process is p0, the round-1 coordinator, silenced at t = 5\n\
         (after its honest INIT, before its CURRENT). Muteness produces *suspicion*, not\n\
         conviction — the table reports the first `suspect=p0` event at a\n\
         correct process and the fraction of runs that then decided without\n\
         p0. The suspicion latency is dominated by the ◇M initial timeout\n\
         (150) plus the poll interval (25), exactly as configured. Coverage\n\
         below 100% is the seeds in which p0's CURRENT beat the t = 5 gag\n\
         out the door — the round then completes and nothing needs detecting.\n\n",
    );
    let mut t = Table::new([
        "runs",
        "suspicion coverage",
        "mean suspicion latency",
        "properties",
    ]);
    let mut covered = 0;
    let mut ok = 0;
    let mut latencies = Vec::new();
    for seed in 0..SEEDS {
        let (report, _) = run_byz(
            4,
            1,
            seed,
            &[],
            Some((
                0,
                Box::new(MuteAfter {
                    after: VirtualTime::at(5),
                }),
            )),
        );
        if verdict_with_faulty(&report, 4, 1, &[0]).ok() {
            ok += 1;
        }
        let first_suspicion = report
            .trace
            .entries()
            .iter()
            .filter_map(|e| match &e.event {
                ftm_sim::trace::TraceEvent::Note { process, text }
                    if process.0 != 0 && text.starts_with("suspect=p0") =>
                {
                    Some(e.at.ticks())
                }
                _ => None,
            })
            .min();
        if let Some(at) = first_suspicion {
            covered += 1;
            latencies.push(at as f64);
        }
    }
    t.row([
        SEEDS.to_string(),
        pct(covered, SEEDS as usize),
        mean(&latencies),
        pct(ok, SEEDS as usize),
    ]);
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
