//! E4 — Fig. 4: detection coverage and latency per fault class.
//!
//! Every fault class is a [`Scenario`] cell run through the deterministic
//! parallel sweep harness ([`ftm_faults::scenario::sweep_scenarios`]); the
//! coverage/observers/latency columns come from the harness's
//! attacker-conviction counters (`convicted-<class>`,
//! `conviction-at-<class>`) instead of a bespoke per-seed loop.

use ftm_faults::{sweep_scenarios, FaultBehavior, Scenario};
use ftm_sim::harness::RunRecord;

use crate::report::{mean, pct, Table};

const SEEDS: usize = 15;
const BASE_SEED: u64 = 0xE4;
const THREADS: usize = 4;

struct Case {
    name: &'static str,
    expected_class: &'static str,
    scenario: Scenario,
}

/// Runs E4 and renders its markdown section.
pub fn run() -> String {
    // Vote-pattern attacks (round jumping, duplication) only show up in
    // NEXT traffic, so those cells crash the round-1 coordinator at t = 0
    // (`extra_crashes(1)`) in a (5, 2) system; the rest use (4, 1).
    let cases = [
        Case {
            name: "vector corruption",
            expected_class: "bad-certificate",
            scenario: Scenario::new(4, 1, FaultBehavior::VectorCorrupt),
        },
        Case {
            name: "forged DECIDE",
            expected_class: "bad-certificate",
            scenario: Scenario::new(4, 1, FaultBehavior::ForgeDecide),
        },
        Case {
            name: "spurious CURRENT",
            expected_class: "bad-certificate",
            scenario: Scenario::new(4, 1, FaultBehavior::SpuriousCurrent),
        },
        Case {
            name: "wrong signing key",
            expected_class: "bad-signature",
            scenario: Scenario::new(4, 1, FaultBehavior::WrongKey),
        },
        Case {
            name: "identity theft",
            expected_class: "bad-signature",
            scenario: Scenario::new(4, 1, FaultBehavior::StealIdentity),
        },
        Case {
            name: "round jumping (+5)",
            expected_class: "out-of-order",
            scenario: Scenario::new(5, 2, FaultBehavior::RoundJump).extra_crashes(1),
        },
        Case {
            name: "vote duplication",
            expected_class: "out-of-order",
            scenario: Scenario::new(5, 2, FaultBehavior::DuplicateVotes).extra_crashes(1),
        },
    ];

    let scenarios: Vec<Scenario> = cases.iter().map(|c| c.scenario.clone()).collect();
    let report = sweep_scenarios(&scenarios, SEEDS, BASE_SEED, THREADS);

    let mut out = String::from(
        "## E4 — Non-muteness detection coverage and latency (paper Fig. 4)\n\n\
         15 seeded runs per row via the parallel sweep harness (base seed\n\
         0xE4). Each row is a single-attacker cell at the default\n\
         placement (the top-numbered process); E11 sweeps coalitions.\n\
         `coverage` = fraction of runs in which at least one correct process\n\
         convicted the attacker with the expected class; `observers` = mean\n\
         number of distinct correct convictors per detecting run (processes\n\
         that decide before the faulty message arrives never see it);\n\
         `latency` = mean virtual time of the first conviction. Properties\n\
         held in every run of every row.\n\n",
    );
    let mut t = Table::new([
        "fault class injected",
        "expected class",
        "coverage",
        "observers",
        "latency",
        "properties",
    ]);

    for case in &cases {
        let cell = case.scenario.cell();
        let recs: Vec<&RunRecord> = report.records.iter().filter(|r| r.cell == cell).collect();
        let convicted = format!("convicted-{}", case.expected_class);
        let at = format!("conviction-at-{}", case.expected_class);
        let mut covered = 0;
        let mut observers = Vec::new();
        let mut latencies = Vec::new();
        for rec in &recs {
            if rec.get(&convicted) > 0 {
                covered += 1;
                observers.push(rec.get(&convicted));
                latencies.push(rec.get(&at));
            }
        }
        let all_ok = recs.iter().filter(|r| r.ok).count();
        t.row([
            case.name.to_string(),
            case.expected_class.to_string(),
            pct(covered, recs.len()),
            mean(&observers),
            mean(&latencies),
            pct(all_ok, recs.len()),
        ]);
    }

    out.push_str(&t.to_string());

    // Muteness: detected by the ◇M module (suspicion), not by conviction.
    out.push_str(
        "\n### Muteness (the ◇M module's half of the detection work)\n\n\
         The mute process is p0, the round-1 coordinator, crashed at t = 0 —\n\
         muteness by the simplest means (§2), injected via the harness's\n\
         `extra_crashes` axis. Muteness produces *suspicion*, not\n\
         conviction — the table reports the first `suspect=` event raised by\n\
         a correct process and the fraction of runs that then decided\n\
         without p0. The suspicion latency is dominated by the ◇M initial\n\
         timeout (150) plus the poll interval (25), exactly as configured.\n\n",
    );
    let mute = Scenario::new(4, 1, FaultBehavior::Honest).extra_crashes(1);
    let mute_report = sweep_scenarios(&[mute], SEEDS, 0x4E4, THREADS);
    let mut t = Table::new([
        "runs",
        "suspicion coverage",
        "mean suspicion latency",
        "properties",
    ]);
    let mut covered = 0;
    let mut ok = 0;
    let mut latencies = Vec::new();
    for rec in &mute_report.records {
        if rec.ok {
            ok += 1;
        }
        if rec.get("suspicion-covered") == 1 {
            covered += 1;
            latencies.push(rec.get("suspicion-first-at"));
        }
    }
    t.row([
        SEEDS.to_string(),
        pct(covered, SEEDS),
        mean(&latencies),
        pct(ok, SEEDS),
    ]);
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
