//! E7 — muteness-detector quality: the completeness/accuracy trade-off of
//! the ◇M implementation vs. the fixed-timeout quiet detector.

use ftm_fd::properties::replay_quality;
use ftm_fd::{QuietDetector, TimeoutDetector};
use ftm_sim::{Duration, ProcessId, VirtualTime};

use crate::report::Table;

/// Runs E7 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E7 — Muteness detector quality (◇M reconstruction vs. ◇S(bz))\n\n\
         Replay harness: peer A sends a protocol message every 25 ticks and\n\
         falls mute at t = 1000; peer B sends every 60 ticks forever. Horizon\n\
         t = 12000, suspicion queried every 5 ticks. `detection` = latency from\n\
         A's silence onset to its permanent suspicion; `mistakes` = wrongful\n\
         suspicions of the correct peer B. The adaptive detector doubles a\n\
         peer's timeout on every mistake (Doudou et al.'s scheme); the quiet\n\
         detector (Malkhi–Reiter) never adapts — its mistakes scale with the\n\
         message count, which is why the paper moves to ◇M.\n\n",
    );
    let mute: Vec<VirtualTime> = (1..=40).map(|i| VirtualTime::at(i * 25)).collect();
    let slow: Vec<VirtualTime> = (1..=200).map(|i| VirtualTime::at(i * 60)).collect();
    let horizon = VirtualTime::at(12_000);
    let q = Duration::of(5);
    let peer = ProcessId(0);

    let mut t = Table::new([
        "timeout Δ",
        "adaptive: detection",
        "adaptive: mistakes on B",
        "quiet: detection",
        "quiet: mistakes on B",
    ]);
    for timeout in [10u64, 25, 50, 100, 200, 400, 800] {
        let mut a1 = TimeoutDetector::new(1, Duration::of(timeout));
        let da = replay_quality(
            &mut a1,
            peer,
            &mute,
            Some(VirtualTime::at(1_000)),
            horizon,
            q,
        );
        let mut a2 = TimeoutDetector::new(1, Duration::of(timeout));
        let ma = replay_quality(&mut a2, peer, &slow, None, horizon, q);
        let mut q1 = QuietDetector::new(1, Duration::of(timeout));
        let dq = replay_quality(
            &mut q1,
            peer,
            &mute,
            Some(VirtualTime::at(1_000)),
            horizon,
            q,
        );
        let mut q2 = QuietDetector::new(1, Duration::of(timeout));
        let mq = replay_quality(&mut q2, peer, &slow, None, horizon, q);
        let fmt = |d: Option<Duration>| d.map_or_else(|| "missed".into(), |x| format!("{x}"));
        t.row([
            format!("{timeout}"),
            fmt(da.detection_time),
            ma.mistakes.to_string(),
            fmt(dq.detection_time),
            mq.mistakes.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
