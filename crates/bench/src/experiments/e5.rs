//! E5 — Vector Validity: the ψ = n − 2F bound and Propositions 1–2.

use ftm_faults::attacks::InitEquivocator;
use ftm_faults::Tamper;

use crate::experiments::common::{run_byz, verdict_with_faulty};
use crate::report::{pct, Table};

const SEEDS: u64 = 20;

/// (label, crash schedule, optional Byzantine attacker).
type Scenario = (String, Vec<(usize, u64)>, Option<u32>);

/// Runs E5 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E5 — Vector Validity: ψ = n − 2F correct entries (paper §1/§5)\n\n\
         20 seeds per row. `min correct entries` is the minimum, across all\n\
         runs and all deciders, of decided-vector entries belonging to correct\n\
         processes — it must be ≥ ψ. `agreement` doubles as Proposition 2 at\n\
         decision time: no two correct deciders ever hold different certified\n\
         vectors. The adversary rows crash F processes at t = 0 or run an INIT\n\
         equivocator (two-faced proposals — the exact attack Vector Consensus\n\
         was introduced to blunt).\n\n",
    );
    let mut t = Table::new([
        "n",
        "F",
        "ψ",
        "scenario",
        "min correct entries",
        "agreement",
        "all ok",
    ]);

    for (n, f) in [(3usize, 1usize), (4, 1), (5, 2), (7, 3)] {
        let psi = ftm_core::quorum::vector_validity_floor(n, f);
        let scenarios: Vec<Scenario> = vec![
            ("all honest".into(), vec![], None),
            (
                format!("{f} crash @ t=0"),
                (0..f).map(|i| (i, 0)).collect(),
                None,
            ),
            ("1 equivocator".into(), vec![], Some((n - 1) as u32)),
        ];
        for (label, crashes, byz) in scenarios {
            let mut min_correct = usize::MAX;
            let mut agree = 0;
            let mut ok = 0;
            for seed in 0..SEEDS {
                let attacker = byz.map(|a| {
                    (
                        a,
                        Box::new(InitEquivocator { alt: 1313 }) as Box<dyn Tamper>,
                    )
                });
                let (report, _) = run_byz(n, f, seed, &crashes, attacker);
                let mut faulty: Vec<usize> = crashes.iter().map(|&(p, _)| p).collect();
                if let Some(a) = byz {
                    faulty.push(a as usize);
                }
                let v = verdict_with_faulty(&report, n, f, &faulty);
                if v.agreement {
                    agree += 1;
                }
                if v.ok() {
                    ok += 1;
                }
                for d in report.decisions.iter().flatten() {
                    let correct_entries = d.iter_set().filter(|(k, _)| !faulty.contains(k)).count();
                    min_correct = min_correct.min(correct_entries);
                }
            }
            t.row([
                n.to_string(),
                f.to_string(),
                psi.to_string(),
                label,
                if min_correct == usize::MAX {
                    "n/a".to_string()
                } else {
                    min_correct.to_string()
                },
                pct(agree, SEEDS as usize),
                pct(ok, SEEDS as usize),
            ]);
        }
    }

    out.push_str(&t.to_string());
    out.push('\n');
    out
}
