//! E10 — The scenario sweep: the full fault taxonomy crossed with system
//! sizes, run through the parallel harness, with per-module-layer cost
//! breakdowns aggregated per cell.
//!
//! This is the harness-native remake of E3/E4: instead of bespoke loops,
//! the matrix is enumerated, fanned across worker threads, and every run
//! flattened into structured counters. The output is deterministic — a
//! pure function of `(matrix, base seed)`, independent of thread count.

use ftm_faults::{sweep_matrix_repeated, FaultBehavior, ScenarioMatrix};

use crate::report::Table;

const BASE_SEED: u64 = 0xE10;
const REPEATS: usize = 5;
const THREADS: usize = 4;

/// Runs E10 and renders its markdown section.
pub fn run() -> String {
    let matrix = ScenarioMatrix::new(
        vec![(4, 1), (5, 2), (7, 3)],
        vec![
            FaultBehavior::Honest,
            FaultBehavior::Crash,
            FaultBehavior::VectorCorrupt,
            FaultBehavior::ForgeDecide,
            FaultBehavior::WrongKey,
            FaultBehavior::StripCertificates,
        ],
    );
    let report = sweep_matrix_repeated(&matrix, REPEATS, BASE_SEED, THREADS);

    let mut out = String::from(
        "## E10 — Scenario sweep: per-layer cost across the fault matrix\n\n\
         5 seeded runs per cell via the parallel sweep harness (base seed\n\
         0xE10). Byte columns are medians, split by module layer: the\n\
         signature module, the certification module (carried evidence) and\n\
         the protocol core. `detect` is the median conviction count; `ok`\n\
         counts runs where Agreement, Termination and Vector Validity all\n\
         held for the correct processes.\n\n",
    );

    let mut t = Table::new([
        "cell",
        "ok",
        "p50 rounds",
        "p50 msgs",
        "p50 sig B",
        "p50 cert B",
        "p50 core B",
        "p50 detect",
    ]);
    for (cell, stats) in report.cells() {
        let p50 = |name: &str| {
            stats
                .stats
                .get(name)
                .map_or_else(|| "0".into(), |s| s.p50.to_string())
        };
        t.row([
            cell.clone(),
            format!("{}/{}", stats.ok_runs, stats.runs),
            p50("rounds"),
            p50("messages-sent"),
            p50("bytes-signature"),
            p50("bytes-certificate"),
            p50("bytes-protocol"),
            p50("detections"),
        ]);
    }
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
