//! E10 — The scenario sweep: the full fault taxonomy crossed with system
//! sizes, run through the parallel harness, with per-module-layer cost
//! breakdowns aggregated per cell.
//!
//! This is the harness-native remake of E3/E4: instead of bespoke loops,
//! the matrix is enumerated, fanned across worker threads, and every run
//! flattened into structured counters. The output is deterministic — a
//! pure function of `(matrix, base seed)`, independent of thread count.

use ftm_faults::{sweep_matrix_repeated, FaultBehavior, ScenarioMatrix};

use crate::report::Table;

const BASE_SEED: u64 = 0xE10;
const REPEATS: usize = 5;
const THREADS: usize = 4;

/// Runs E10 and renders its markdown section.
pub fn run() -> String {
    let matrix = ScenarioMatrix::new(
        ScenarioMatrix::default_systems(),
        vec![
            FaultBehavior::Honest,
            FaultBehavior::Crash,
            FaultBehavior::VectorCorrupt,
            FaultBehavior::ForgeDecide,
            FaultBehavior::WrongKey,
            FaultBehavior::StripCertificates,
        ],
    )
    .cross_protocols();
    let report = sweep_matrix_repeated(&matrix, REPEATS, BASE_SEED, THREADS);

    let mut out = String::from(
        "## E10 — Scenario sweep: per-layer cost across the fault matrix\n\n\
         5 seeded runs per cell via the parallel sweep harness (base seed\n\
         0xE10), over the default system ladder up to n = 31 and both\n\
         transformed protocol instances (`hr` = Hurfin–Raynal, `ct` =\n\
         Chandra–Toueg). Byte columns are medians, split by module layer:\n\
         the signature module, the certification module (carried evidence)\n\
         and the protocol core. `detect` is the median conviction count;\n\
         `ok` counts runs where Agreement, Termination and Vector Validity\n\
         all held for the correct processes.\n\n",
    );

    let mut t = Table::new([
        "cell",
        "ok",
        "p50 rounds",
        "p50 msgs",
        "p50 sig B",
        "p50 cert B",
        "p50 core B",
        "p50 detect",
    ]);
    for (cell, stats) in report.cells() {
        let p50 = |name: &str| {
            stats
                .stats
                .get(name)
                .map_or_else(|| "0".into(), |s| s.p50.to_string())
        };
        t.row([
            cell.clone(),
            format!("{}/{}", stats.ok_runs, stats.runs),
            p50("rounds"),
            p50("messages-sent"),
            p50("bytes-signature"),
            p50("bytes-certificate"),
            p50("bytes-protocol"),
            p50("detections"),
        ]);
    }
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
