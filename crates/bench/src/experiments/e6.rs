//! E6 — the price of arbitrary-fault tolerance: crash vs. transformed.

use ftm_core::config::ProtocolConfig;
use ftm_sim::Duration;

use ftm_sim::SimConfig;

use crate::experiments::common::{run_byz_honest, run_byz_sim, run_crash, Outcome};
use crate::report::{mean, ratio, Table};

const SEEDS: u64 = 10;

fn means(outcomes: &[Outcome]) -> (String, String, String, String) {
    let msgs: Vec<u64> = outcomes.iter().map(|o| o.messages).collect();
    let bytes: Vec<u64> = outcomes.iter().map(|o| o.bytes).collect();
    let lat: Vec<u64> = outcomes.iter().map(|o| o.latency).collect();
    // bytes/msg as the ratio of totals — the same integer-ratio figure the
    // bench JSON reports, no per-run float division.
    let per = ratio(bytes.iter().sum(), msgs.iter().sum());
    (mean(&msgs), mean(&bytes), per, mean(&lat))
}

/// Runs E6 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E6 — The price of the transformation (overhead table)\n\n\
         All-honest runs, 10 seeds per row, identical network conditions.\n\
         The transformed protocol pays for (i) the INIT exchange, (ii) RSA\n\
         signatures on every message, and (iii) certificates (sets of signed\n\
         cores) attached to every vote. The crash protocol's messages are\n\
         9–17 bytes; heartbeats are included in its totals.\n\n",
    );
    let mut t = Table::new([
        "n",
        "protocol",
        "mean msgs",
        "mean bytes",
        "bytes/msg",
        "mean decision time",
    ]);
    for n in [4usize, 5, 7, 9] {
        let crash: Vec<Outcome> = (0..SEEDS).map(|s| run_crash(n, s, &[]).1).collect();
        let (m, b, per, lat) = means(&crash);
        t.row([n.to_string(), "crash (Fig. 2)".into(), m, b, per, lat]);

        let byz: Vec<Outcome> = (0..SEEDS)
            .map(|s| run_byz_honest(n, ftm_core::quorum::max_faults(n), s).1)
            .collect();
        let (m, b, per, lat) = means(&byz);
        t.row([n.to_string(), "transformed (Fig. 3)".into(), m, b, per, lat]);
    }
    out.push_str(&t.to_string());

    out.push_str(
        "\n### Certificate growth under round churn\n\n\
         Message delays drawn from [20, 60] with an increasingly aggressive\n\
         muteness timeout: wrongful suspicions force extra rounds, and\n\
         certificates carry the per-round vote sets — bytes/message grows\n\
         with contention but stays bounded (signed cores never nest; see the\n\
         design note in `ftm-certify`).\n\n",
    );
    let mut t = Table::new(["muteness timeout", "mean rounds", "mean msgs", "bytes/msg"]);
    for timeout in [400u64, 150, 60, 30] {
        let outcomes: Vec<Outcome> = (0..SEEDS)
            .map(|s| {
                run_byz_sim(
                    ProtocolConfig::new(4, 1)
                        .seed(s)
                        .muteness_timeout(Duration::of(timeout))
                        .poll_interval(Duration::of(10)),
                    SimConfig::new(4)
                        .seed(s)
                        .delay_range(Duration::of(20), Duration::of(60))
                        .gst(ftm_sim::VirtualTime::at(8_000), Duration::of(30)),
                    None,
                )
                .1
            })
            .collect();
        let rounds: Vec<u64> = outcomes.iter().map(|o| o.rounds as u64).collect();
        let (m, _b, per, _lat) = means(&outcomes);
        t.row([format!("Δ={timeout}"), mean(&rounds), m, per]);
    }
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
