//! E3 — Fig. 3: the transformed protocol across fault budgets, up to and
//! beyond the resilience bound F ≤ min(⌊(n−1)/2⌋, C).
//!
//! The rows are [`Scenario`] cells run through the deterministic parallel
//! sweep harness ([`ftm_faults::scenario::sweep_scenarios`]) — the same
//! machinery as E10 and the fault-matrix tests — rather than a bespoke
//! seed loop. Multi-crash budgets use [`Scenario::extra_crashes`], which
//! crashes low-numbered processes at t = 0 on top of the attacker's own
//! behavior.

use ftm_faults::{sweep_scenarios, FaultBehavior, Scenario};
use ftm_sim::harness::RunRecord;

use crate::report::{mean, pct, Table};

const SEEDS: usize = 15;
const BASE_SEED: u64 = 0xE3;
const THREADS: usize = 4;

/// Runs E3 and renders its markdown section.
pub fn run() -> String {
    // One table row per scenario cell: (row label, scenario).
    let mut rows: Vec<(String, Scenario)> = Vec::new();
    for (n, f) in [(4usize, 1usize), (5, 2), (7, 3)] {
        rows.push((
            "all honest".into(),
            Scenario::new(n, f, FaultBehavior::Honest),
        ));
        rows.push((
            format!("{f} crash"),
            Scenario::new(n, f, FaultBehavior::Crash).extra_crashes(f - 1),
        ));
        rows.push((
            format!("1 byz + {} crash", f - 1),
            Scenario::new(n, f, FaultBehavior::VectorCorrupt).extra_crashes(f - 1),
        ));
    }
    // Beyond the bound: F + 1 processes crash in an (n, F) system.
    for (n, f) in [(4usize, 1usize), (5, 2)] {
        rows.push((
            format!("{} crash (beyond bound)", f + 1),
            Scenario::new(n, f, FaultBehavior::Crash).extra_crashes(f),
        ));
    }

    let scenarios: Vec<Scenario> = rows.iter().map(|(_, sc)| sc.clone()).collect();
    let report = sweep_scenarios(&scenarios, SEEDS, BASE_SEED, THREADS);

    let mut out = String::from(
        "## E3 — Transformed vector consensus under faults (paper Fig. 3)\n\n\
         15 seeded runs per row via the parallel sweep harness (base seed\n\
         0xE3). `byz` marks a Byzantine process running the vector-corruption\n\
         strategy; crashes happen at t = 0 (low-numbered processes plus, in\n\
         the pure-crash rows, the attacker slot). The final rows exceed the\n\
         bound F ≤ ⌊(n−1)/2⌋ on purpose: safety must still hold, but\n\
         termination is forfeited (the run times out) because n − F correct\n\
         processes no longer exist.\n\n",
    );
    let mut t = Table::new([
        "n",
        "F",
        "scenario",
        "termination",
        "agreement+validity",
        "mean rounds",
    ]);

    for (label, sc) in rows {
        let cell = sc.cell();
        let recs: Vec<&RunRecord> = report.records.iter().filter(|r| r.cell == cell).collect();
        let term = recs
            .iter()
            .filter(|r| r.get("prop-termination") == 1)
            .count();
        let safe = recs
            .iter()
            .filter(|r| r.get("prop-agreement") == 1 && r.get("prop-validity") == 1)
            .count();
        let rounds: Vec<u64> = recs.iter().map(|r| r.get("rounds")).collect();
        let beyond_bound = sc.extra_crashes + 1 > sc.f;
        t.row([
            sc.n.to_string(),
            sc.f.to_string(),
            label,
            pct(term, recs.len()),
            pct(safe, recs.len()),
            if beyond_bound {
                "-".to_string()
            } else {
                mean(&rounds)
            },
        ]);
    }

    out.push_str(&t.to_string());
    out.push('\n');
    out
}
