//! E3 — Fig. 3: the transformed protocol across fault budgets, up to and
//! beyond the resilience bound F ≤ min(⌊(n−1)/2⌋, C).

use ftm_faults::attacks::VectorCorruptor;
use ftm_sim::VirtualTime;

use crate::experiments::common::{proposals, run_byz, verdict_with_faulty};
use crate::report::{mean, pct, Table};

const SEEDS: u64 = 15;

/// (label, crash schedule, optional Byzantine attacker).
type Scenario = (String, Vec<(usize, u64)>, Option<u32>);

/// Runs E3 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E3 — Transformed vector consensus under faults (paper Fig. 3)\n\n\
         15 seeds per row. `byz` marks a Byzantine process running the\n\
         vector-corruption strategy; crashes happen at t = 0. The final rows\n\
         exceed the bound F ≤ ⌊(n−1)/2⌋ on purpose: safety must still hold, but\n\
         termination is forfeited (the run times out) because n − F correct\n\
         processes no longer exist.\n\n",
    );
    let mut t = Table::new([
        "n",
        "F",
        "scenario",
        "termination",
        "agreement+validity",
        "mean rounds",
    ]);

    for (n, f) in [(4usize, 1usize), (5, 2), (7, 3)] {
        let scenarios: Vec<Scenario> = vec![
            ("all honest".into(), vec![], None),
            (format!("{f} crash"), (0..f).map(|i| (i, 0)).collect(), None),
            (
                format!("1 byz + {} crash", f - 1),
                (1..f).map(|i| (i, 0)).collect(),
                Some(0),
            ),
        ];
        for (label, crashes, byz) in scenarios {
            let mut term = 0;
            let mut safe = 0;
            let mut rounds = Vec::new();
            for seed in 0..SEEDS {
                let attacker = byz.map(|a| {
                    (
                        a,
                        Box::new(VectorCorruptor {
                            entry: n - 1,
                            poison: 666,
                        }) as Box<dyn ftm_faults::Tamper>,
                    )
                });
                let (report, outcome) = run_byz(n, f, seed, &crashes, attacker);
                let mut faulty: Vec<usize> = crashes.iter().map(|&(p, _)| p).collect();
                if let Some(a) = byz {
                    faulty.push(a as usize);
                }
                let v = verdict_with_faulty(&report, n, f, &faulty);
                if v.termination {
                    term += 1;
                }
                if v.agreement && v.validity {
                    safe += 1;
                }
                rounds.push(outcome.rounds as f64);
            }
            t.row([
                n.to_string(),
                f.to_string(),
                label,
                pct(term, SEEDS as usize),
                pct(safe, SEEDS as usize),
                mean(&rounds),
            ]);
        }
    }

    // Beyond the bound: F+1 processes crash in an (n, F) system.
    for (n, f) in [(4usize, 1usize), (5, 2)] {
        let crashes: Vec<(usize, u64)> = (0..=f).map(|i| (i, 0)).collect();
        let mut term = 0;
        let mut safe = 0;
        for seed in 0..SEEDS {
            let (report, _) = run_byz(n, f, seed, &crashes, None);
            let faulty: Vec<usize> = crashes.iter().map(|&(p, _)| p).collect();
            let v = verdict_with_faulty(&report, n, f, &faulty);
            // Exclude the trivially-true case: nobody decided is fine for
            // agreement/validity, so count safety as "no bad decision".
            if v.termination {
                term += 1;
            }
            if v.agreement && v.validity {
                safe += 1;
            }
            let _ = proposals(n);
            let _ = VirtualTime::ZERO;
        }
        t.row([
            n.to_string(),
            f.to_string(),
            format!("{} crash (beyond bound)", f + 1),
            pct(term, SEEDS as usize),
            pct(safe, SEEDS as usize),
            "-".to_string(),
        ]);
    }

    out.push_str(&t.to_string());
    out.push('\n');
    out
}
