//! E8 — ablation: disable one module of the Fig. 1 stack at a time and
//! show which attack then breaks which property.

use ftm_core::config::ProtocolConfig;
use ftm_core::validator::detections;
use ftm_detect::observer::Checks;
use ftm_faults::attacks::{IdentityThief, VectorCorruptor, VoteDuplicator};
use ftm_faults::Tamper;
use ftm_sim::ProcessId;

use crate::experiments::common::{run_byz_with_config, verdict_with_faulty};
use crate::report::{pct, Table};

const N: usize = 4;
const SEEDS: u64 = 15;

fn checks(name: &str) -> Checks {
    match name {
        "full stack" => Checks::default(),
        "no signatures" => Checks {
            signatures: false,
            ..Checks::default()
        },
        "no certificates" => Checks {
            certificates: false,
            ..Checks::default()
        },
        "no state machines" => Checks {
            timing: false,
            ..Checks::default()
        },
        other => panic!("unknown stack configuration {other:?}"),
    }
}

fn attack(name: &str) -> Box<dyn Tamper> {
    match name {
        "vector corruption" => Box::new(VectorCorruptor {
            entry: 2,
            poison: 666,
        }),
        "identity theft" => Box::new(IdentityThief {
            victim: ProcessId(1),
        }),
        "vote duplication" => Box::new(VoteDuplicator),
        other => panic!("unknown attack {other:?}"),
    }
}

fn attacker_for(attack_name: &str) -> u32 {
    match attack_name {
        // The corruptor coordinates round 1; the others act from the side.
        "vector corruption" => 0,
        _ => 3,
    }
}

/// Runs E8 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E8 — Module ablation: every module is load-bearing\n\n\
         15 seeds per cell. Each cell reports how often all properties held\n\
         with the given module removed while the given attack runs. `framed`\n\
         counts runs in which an *innocent* process was convicted — the failure\n\
         mode the signature module exists to prevent. (Vote duplication runs\n\
         with the round-1 coordinator crashed, n = 5, F = 2, so NEXT votes\n\
         flow.)\n\n",
    );
    let mut t = Table::new(["stack", "attack", "all properties", "honest framed"]);

    for stack_name in [
        "full stack",
        "no signatures",
        "no certificates",
        "no state machines",
    ] {
        for attack_name in ["vector corruption", "identity theft", "vote duplication"] {
            let attacker = attacker_for(attack_name);
            let mut ok = 0;
            let mut framed = 0;
            for seed in 0..SEEDS {
                let (n, f, crashes, att): (usize, usize, Vec<(usize, u64)>, u32) =
                    if attack_name == "vote duplication" {
                        (5, 2, vec![(0, 0)], 4)
                    } else {
                        (N, 1, vec![], attacker)
                    };
                let config = ProtocolConfig::new(n, f)
                    .seed(seed)
                    .checks(checks(stack_name));
                let (report, _) =
                    run_byz_with_config(config, seed, &crashes, Some((att, attack(attack_name))));
                let mut faulty: Vec<usize> = crashes.iter().map(|&(p, _)| p).collect();
                faulty.push(att as usize);
                if verdict_with_faulty(&report, n, f, &faulty).ok() {
                    ok += 1;
                }
                let culprit = format!("p{att}");
                if detections(&report.trace)
                    .iter()
                    .any(|d| d.culprit != culprit)
                {
                    framed += 1;
                }
            }
            t.row([
                stack_name.to_string(),
                attack_name.to_string(),
                pct(ok, SEEDS as usize),
                pct(framed, SEEDS as usize),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out.push('\n');
    out
}
