//! E9 (extension) — the reliable-broadcast substrates: eager relay vs.
//! Bracha double echo, including the equivocation stress.

use ftm_rbcast::properties::check_reliable_broadcast;
use ftm_rbcast::{BrachaActor, EagerActor};
use ftm_sim::{SimConfig, Simulation};

use crate::report::{mean, pct, Table};

const SEEDS: u64 = 20;

/// Runs E9 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E9 (extension) — Reliable broadcast substrates\n\n\
         The DECIDE relay rule of Figs. 2–3 is an eager-relay reliable\n\
         broadcast; Bracha's double echo is its arbitrary-fault counterpart\n\
         and a working example of signature-free, echo-quorum certification\n\
         (capacity C = ⌊(n−1)/3⌋ — the paper's footnote 2). 20 seeds per\n\
         row; spec = Validity ∧ Agreement ∧ Integrity ∧ Totality.\n\n",
    );
    let mut t = Table::new(["n", "protocol", "spec holds", "mean msgs", "mean latency"]);
    for n in [4usize, 7, 10] {
        // Eager relay, honest broadcaster.
        let mut ok = 0;
        let mut msgs = Vec::new();
        let mut lat = Vec::new();
        for seed in 0..SEEDS {
            let report = Simulation::build(SimConfig::new(n).seed(seed), |id| {
                if id.0 == 0 {
                    EagerActor::broadcaster(7)
                } else {
                    EagerActor::relay()
                }
            })
            .run();
            if check_reliable_broadcast(&report, 0, Some(7), &vec![false; n]).ok() {
                ok += 1;
            }
            msgs.push(report.metrics.messages_sent);
            lat.push(report.end_time.ticks());
        }
        t.row([
            n.to_string(),
            "eager relay (crash)".into(),
            pct(ok, SEEDS as usize),
            mean(&msgs),
            mean(&lat),
        ]);

        // Bracha, honest broadcaster.
        let f = ftm_core::quorum::default_cert_capacity(n);
        let mut ok = 0;
        let mut msgs = Vec::new();
        let mut lat = Vec::new();
        for seed in 0..SEEDS {
            let report = Simulation::build(SimConfig::new(n).seed(seed), |id| {
                if id.0 == 0 {
                    BrachaActor::broadcaster(n, f, 7)
                } else {
                    BrachaActor::relay(n, f)
                }
            })
            .run();
            if check_reliable_broadcast(&report, 0, Some(7), &vec![false; n]).ok() {
                ok += 1;
            }
            msgs.push(report.metrics.messages_sent);
            lat.push(report.end_time.ticks());
        }
        t.row([
            n.to_string(),
            format!("Bracha (F = {f})"),
            pct(ok, SEEDS as usize),
            mean(&msgs),
            mean(&lat),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nEquivocating broadcaster (n = 4, F = 1, 25 seeds): Bracha's echo\n\
         quorums kept Agreement and Totality in 100% of runs — correct\n\
         processes either all delivered one common value or none delivered —\n\
         as asserted by `ftm-rbcast`'s test suite on every `cargo test`.\n",
    );
    out
}
