//! E11 — Byzantine coalitions up to F (and the F + 1 breakage row),
//! crossed with network-adversity profiles.
//!
//! The paper's resilience claim is a *budget*: the transformation
//! tolerates any combination of up to F arbitrary-faulty processes, under
//! any network that eventually behaves (some GST exists). This experiment
//! sweeps both halves of that sentence at once. The coalition axis grows
//! heterogeneous attacker coalitions one member at a time — cycling
//! through a palette of behaviors caught by *different* modules — from a
//! single attacker up to F + 1, one past the budget. The network axis
//! runs every coalition under the calm profile (the historical defaults),
//! an adverse profile (10× delay spread, late GST) and a no-GST profile
//! (pure asynchrony, terminated by a round cap instead of a decision).
//!
//! The invariants the table demonstrates, and which this experiment
//! *asserts* before rendering (generation fails loudly if they break):
//!
//! * **within the budget, safety holds under every profile** —
//!   Agreement and Vector Validity hold among honest processes in every
//!   coalition ≤ F cell, even without GST;
//! * **within the budget, termination needs only a GST** — every
//!   coalition ≤ F cell under a profile with a GST terminates;
//! * **past the budget, nothing is promised** — the `coalition=F+1`
//!   rows are *reported, not asserted*: they document the observed
//!   breakage, which is not just lost termination — a vector corrupter
//!   backed by enough accomplices can get a poisoned entry decided,
//!   breaking validity itself.
//!
//! A second table isolates the detector axis: the generic adaptive ◇M
//! versus the round-aware variant, under calm and adverse networks, on
//! the honest-with-crashed-coordinator cell that forces suspicion
//! traffic. `fd-mistakes` counts wrongful-suspicion corrections
//! (premature timeouts later contradicted by a message); `honest-mist.`
//! restricts that to peers never convicted — mistakes against processes
//! that deserved the benefit of the doubt. The observed trade-off:
//! adaptive doubling converges after a correction or two even under
//! adverse delays, while the round-aware linear allowance undershoots
//! heavy-tailed delays and corrects more often.

use ftm_faults::{
    sweep_scenarios, DetectorKind, FaultBehavior, NetworkProfile, Scenario, ScenarioMatrix,
};

use crate::report::Table;

const BASE_SEED: u64 = 0xE11;
const REPEATS: usize = 3;
const THREADS: usize = 4;

/// Behavior palette for growing coalitions: member `i` takes entry
/// `i mod 4`, so every coalition of size ≥ 2 is heterogeneous and every
/// module layer (certification, ◇M, automaton, spurious-message checks)
/// sees an attacker as the coalition grows.
const PALETTE: [FaultBehavior; 4] = [
    FaultBehavior::VectorCorrupt,
    FaultBehavior::Mute,
    FaultBehavior::DuplicateVotes,
    FaultBehavior::ForgeDecide,
];

fn coalition_scenarios() -> Vec<Scenario> {
    let systems = [(4usize, 1usize), (5, 2), (7, 3)];
    let networks = [
        NetworkProfile::calm(),
        NetworkProfile::adverse(),
        NetworkProfile::no_gst(),
    ];
    let mut out = Vec::new();
    for protocol in ftm_certify::ProtocolId::all() {
        for &network in &networks {
            for &(n, f) in &systems {
                for size in 1..=(f + 1).min(n - 1) {
                    let behaviors: Vec<FaultBehavior> =
                        (0..size).map(|i| PALETTE[i % PALETTE.len()]).collect();
                    out.push(
                        Scenario::coalition_of(n, f, &behaviors)
                            .protocol(protocol)
                            .network(network),
                    );
                }
            }
        }
    }
    out
}

/// Runs E11 and renders its markdown section.
///
/// # Panics
///
/// Panics if a within-budget coalition violates safety (agreement or
/// vector validity among honest processes) under any profile, or fails
/// to terminate under a profile with a GST — the paper's resilience
/// claim. F + 1 rows are reported, never asserted.
pub fn run() -> String {
    let scenarios = coalition_scenarios();
    let report = sweep_scenarios(&scenarios, REPEATS, BASE_SEED, THREADS);

    // Per-cell property tallies (term, agree, valid, runs), plus the
    // hard invariants for within-budget cells.
    type Tally = (u64, u64, u64, u64);
    let mut tallies: std::collections::BTreeMap<&str, Tally> = std::collections::BTreeMap::new();
    for rec in &report.records {
        let f: u64 = rec
            .cell
            .split_whitespace()
            .find_map(|t| t.strip_prefix("f="))
            .and_then(|v| v.parse().ok())
            .expect("cell key carries f=");
        let within_budget = rec.get("coalition-size") <= f;
        let has_gst = !rec.cell.contains("net=no-gst");
        if within_budget {
            assert_eq!(
                rec.get("prop-agreement"),
                1,
                "agreement violated within the budget in {} (seed {:#x})",
                rec.cell,
                rec.seed
            );
            assert_eq!(
                rec.get("prop-validity"),
                1,
                "vector validity violated within the budget in {} (seed {:#x})",
                rec.cell,
                rec.seed
            );
            if has_gst {
                assert_eq!(
                    rec.get("prop-termination"),
                    1,
                    "within-budget coalition failed to terminate in {} (seed {:#x})",
                    rec.cell,
                    rec.seed
                );
            }
        }
        let e = tallies.entry(rec.cell.as_str()).or_insert((0, 0, 0, 0));
        e.0 += rec.get("prop-termination");
        e.1 += rec.get("prop-agreement");
        e.2 += rec.get("prop-validity");
        e.3 += 1;
    }

    let mut out = String::from(
        "## E11 — Coalitions up to F and beyond, across network profiles\n\n\
         3 seeded runs per cell via the parallel sweep harness (base seed\n\
         0xE11), both protocols (`hr` default, `ct` marked). Coalitions\n\
         grow one member at a time through a heterogeneous behavior\n\
         palette (vector-corrupt, mute, duplicate-votes, forge-decide),\n\
         from one attacker to F + 1 — one past the paper's budget. Each\n\
         coalition runs under the calm profile (delays 1..10, GST 2000),\n\
         an adverse one (delays 1..250, GST 2500) and a no-GST profile\n\
         (pure asynchrony, capped at 12 rounds). `term`/`agree`/`valid`\n\
         count runs where each property held. Generation *asserts* the\n\
         paper's claim: in every coalition ≤ F row, `agree` and `valid`\n\
         are full under every profile, and `term` is full whenever a GST\n\
         exists. The F + 1 rows are reported, not asserted — they\n\
         document the breakage past the budget, which is not just lost\n\
         termination (quorum n − F unreachable once F + 1 members go\n\
         mute or are quarantined) and capped rounds under no GST: with\n\
         enough accomplices a vector corrupter can get a poisoned entry\n\
         decided, and `valid` drops below full. `quar` is the median\n\
         count of envelopes dropped without inspection because their\n\
         sender was already convicted.\n\n",
    );

    let mut t = Table::new([
        "cell",
        "term",
        "agree",
        "valid",
        "p50 rounds",
        "p50 end-time",
        "p50 detect",
        "p50 quar",
    ]);
    for (cell, stats) in report.cells() {
        let p50 = |name: &str| {
            stats
                .stats
                .get(name)
                .map_or_else(|| "0".into(), |s| s.p50.to_string())
        };
        let (term_ok, agree_ok, valid_ok, runs) = tallies[cell.as_str()];
        t.row([
            cell.clone(),
            format!("{term_ok}/{runs}"),
            format!("{agree_ok}/{runs}"),
            format!("{valid_ok}/{runs}"),
            p50("rounds"),
            p50("end-time"),
            p50("detections"),
            p50("stack-quarantined"),
        ]);
    }
    out.push_str(&t.to_string());
    out.push('\n');

    out.push_str(
        "### Detector mistake rates: adaptive vs round-aware \u{25c7}M\n\n\
         Honest runs with the round-1 coordinator crashed (the cell that\n\
         forces suspicion traffic before progress), under the calm and\n\
         adverse profiles, 3 seeds per cell. `mistakes` = wrongful\n\
         suspicions later corrected by a message from the suspect;\n\
         `honest-mist.` = the subset against peers never convicted. The\n\
         adaptive detector doubles a peer's allowance after one mistake,\n\
         so even under the adverse profile it converges after a\n\
         correction or two; the round-aware allowance grows only\n\
         linearly with the round (Δ₀ + r·δ), so under heavy-tailed\n\
         delays it undershoots and re-suspects more often — the price\n\
         of the tighter bound that convicts genuinely mute processes\n\
         sooner in late rounds.\n\n",
    );

    let mut detector_scenarios = Vec::new();
    for &detector in &[DetectorKind::Adaptive, DetectorKind::RoundAware] {
        for &network in &[NetworkProfile::calm(), NetworkProfile::adverse()] {
            for &(n, f) in &[(5usize, 2usize), (7, 3)] {
                detector_scenarios.push(
                    Scenario::new(n, f, FaultBehavior::Honest)
                        .extra_crashes(1)
                        .detector(detector)
                        .network(network),
                );
            }
        }
    }
    let detector_report = sweep_scenarios(&detector_scenarios, REPEATS, 0x4E11, THREADS);
    let mut t = Table::new([
        "cell",
        "ok",
        "p50 suspicions",
        "p50 mistakes",
        "p50 honest-mist.",
        "p50 end-time",
    ]);
    for (cell, stats) in detector_report.cells() {
        let p50 = |name: &str| {
            stats
                .stats
                .get(name)
                .map_or_else(|| "0".into(), |s| s.p50.to_string())
        };
        t.row([
            cell.clone(),
            format!("{}/{}", stats.ok_runs, stats.runs),
            p50("suspicions"),
            p50("stack-fd-mistakes"),
            p50("stack-fd-honest-mistakes"),
            p50("end-time"),
        ]);
    }
    out.push_str(&t.to_string());
    out.push('\n');

    // Keep the default grid honest too: the matrix axes exist so ad-hoc
    // sweeps stay cheap, and E11's hand-built list must stay a subset of
    // what `cross_coalitions().cross_networks()` can enumerate.
    debug_assert!(
        ScenarioMatrix::new(vec![(4, 1)], vec![FaultBehavior::Mute])
            .cross_coalitions()
            .cross_networks()
            .enumerate()
            .len()
            == 8
    );
    out
}
