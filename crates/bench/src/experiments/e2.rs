//! E2 — the paper's motivation: the crash protocol is not Byzantine-
//! tolerant; the transformed protocol is, under the same attacks.

use ftm_certify::Value;
use ftm_core::crash::{CrashConsensus, CrashMsg};
use ftm_core::spec::Resilience;
use ftm_faults::attacks::{DecideForger, VectorCorruptor};
use ftm_faults::crash_attacks::{CrashAttack, CrashSaboteur};
use ftm_fd::TimeoutDetector;
use ftm_sim::runner::BoxedActor;
use ftm_sim::{Duration, SimConfig, Simulation, VirtualTime};

use crate::experiments::common::{crash_verdict_with_faulty, run_byz, verdict_with_faulty};
use crate::report::{pct, Table};

const N: usize = 4;
const SEEDS: u64 = 20;

fn run_crash_attacked(seed: u64, attacker: u32, attack: CrashAttack) -> bool {
    let report = Simulation::build_boxed(SimConfig::new(N).seed(seed), |id| {
        let honest = CrashConsensus::new(
            Resilience::new(N, 1),
            id,
            100 + id.0 as u64,
            TimeoutDetector::new(N, Duration::of(150)),
            Duration::of(25),
            Some(Duration::of(40)),
        );
        if id.0 == attacker {
            Box::new(CrashSaboteur::new(honest, attack.clone())) as BoxedActor<CrashMsg, Value>
        } else {
            Box::new(honest)
        }
    })
    .run();
    crash_verdict_with_faulty(&report, N, &[attacker as usize]).ok()
}

/// Runs E2 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E2 — The same Byzantine process, before and after the transformation\n\n\
         n = 4, one attacker, 20 seeds per row. A row counts the runs in which\n\
         all three properties survived. The crash-model protocol (Fig. 2) trusts\n\
         every byte; the transformed protocol (Fig. 3) filters it through the\n\
         module stack.\n\n",
    );
    let mut t = Table::new(["attack", "attacker", "crash protocol ok", "transformed ok"]);

    // Estimate/vector corruption by the round-1 coordinator.
    let crash_ok = (0..SEEDS)
        .filter(|&s| run_crash_attacked(s, 0, CrashAttack::CorruptEstimate { poison: 31337 }))
        .count();
    let byz_ok = (0..SEEDS)
        .filter(|&s| {
            let (report, _) = run_byz(
                N,
                1,
                s,
                &[],
                Some((
                    0,
                    Box::new(VectorCorruptor {
                        entry: 2,
                        poison: 31337,
                    }),
                )),
            );
            verdict_with_faulty(&report, N, 1, &[0]).ok()
        })
        .count();
    t.row([
        "value corruption".to_string(),
        "p0 (coordinator)".to_string(),
        pct(crash_ok, SEEDS as usize),
        pct(byz_ok, SEEDS as usize),
    ]);

    // Forged decision by a non-coordinator.
    let crash_ok = (0..SEEDS)
        .filter(|&s| {
            run_crash_attacked(
                s,
                3,
                CrashAttack::ForgeDecide {
                    at: VirtualTime::at(1),
                    poison: 999,
                },
            )
        })
        .count();
    let byz_ok = (0..SEEDS)
        .filter(|&s| {
            let (report, _) = run_byz(
                N,
                1,
                s,
                &[],
                Some((3, Box::new(DecideForger::new(VirtualTime::at(1), N, 999)))),
            );
            verdict_with_faulty(&report, N, 1, &[3]).ok()
        })
        .count();
    t.row([
        "forged DECIDE".to_string(),
        "p3".to_string(),
        pct(crash_ok, SEEDS as usize),
        pct(byz_ok, SEEDS as usize),
    ]);

    out.push_str(&t.to_string());
    out.push('\n');
    out
}
