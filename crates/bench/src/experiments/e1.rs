//! E1 — Fig. 2: the crash-model protocol across sizes and crash patterns.

use ftm_core::crash::ChandraToueg;
use ftm_core::spec::Resilience;
use ftm_core::validator::{check_crash_consensus, max_round};
use ftm_fd::TimeoutDetector;
use ftm_sim::{Duration, SimConfig, Simulation, VirtualTime};

use crate::experiments::common::{proposals, run_crash, Outcome};
use crate::report::{mean, pct, Table};

const SEEDS: u64 = 20;

fn aggregate(outcomes: &[Outcome]) -> (String, String, String, String, String) {
    let total = outcomes.len();
    let ok = outcomes.iter().filter(|o| o.verdict.ok()).count();
    let rounds: Vec<u64> = outcomes.iter().map(|o| o.rounds as u64).collect();
    let latency: Vec<u64> = outcomes.iter().map(|o| o.latency).collect();
    let msgs: Vec<u64> = outcomes.iter().map(|o| o.messages).collect();
    (
        pct(ok, total),
        mean(&rounds),
        latency.iter().copied().max().unwrap_or(0).to_string(),
        mean(&latency),
        mean(&msgs),
    )
}

/// Runs E1 and renders its markdown section.
pub fn run() -> String {
    let mut out = String::from(
        "## E1 — Crash-model Hurfin–Raynal consensus (paper Fig. 2)\n\n\
         20 seeds per row; `all ok` = Termination ∧ Agreement ∧ Validity for\n\
         every correct process in every run. Crash schedules: `k early` crashes\n\
         the coordinators of the first k rounds at t = 0; `1 late` crashes p0 at\n\
         t = 60 (after its CURRENT broadcast is typically in flight).\n\n",
    );
    let mut t = Table::new([
        "n",
        "crashes",
        "all ok",
        "mean rounds",
        "max latency",
        "mean latency",
        "mean msgs",
    ]);
    for n in [3usize, 4, 5, 7, 9, 13] {
        let fmax = ftm_core::quorum::max_faults(n);
        let mut schedules: Vec<(String, Vec<(usize, u64)>)> =
            vec![("none".into(), vec![]), ("1 early".into(), vec![(0, 0)])];
        if fmax > 1 {
            schedules.push((format!("{fmax} early"), (0..fmax).map(|i| (i, 0)).collect()));
        }
        schedules.push(("1 late".into(), vec![(0, 60)]));
        for (label, crashes) in schedules {
            let outcomes: Vec<Outcome> = (0..SEEDS)
                .map(|seed| run_crash(n, seed, &crashes).1)
                .collect();
            let (ok, rounds, maxlat, lat, msgs) = aggregate(&outcomes);
            t.row([n.to_string(), label, ok, rounds, maxlat, lat, msgs]);
        }
    }
    out.push_str(&t.to_string());

    // ------------------------------------------------------------------
    // Extension: a second member of the regular round-based class.
    // ------------------------------------------------------------------
    out.push_str(
        "\n### Extension: Hurfin–Raynal vs. Chandra–Toueg (both ◇S, crash model)\n\n\
         The paper's methodology targets any *regular round-based* protocol;\n\
         the classic Chandra–Toueg ◇S protocol is a second member of that\n\
         class, included to make the class concrete. HR broadcasts every vote\n\
         (O(n²) messages/round, decides in one message exchange when the\n\
         coordinator is correct); CT's phases 1 and 3 are point-to-point to\n\
         the coordinator (O(n) per phase, but more exchanges end-to-end).\n\n",
    );
    let mut t = Table::new([
        "n",
        "crashes",
        "protocol",
        "all ok",
        "mean rounds",
        "mean latency",
        "mean msgs",
    ]);
    for n in [4usize, 7, 9] {
        for (label, crashes) in [("none", vec![]), ("1 early", vec![(0usize, 0u64)])] {
            let hr: Vec<Outcome> = (0..SEEDS).map(|s| run_crash(n, s, &crashes).1).collect();
            let (ok, rounds, _maxlat, lat, msgs) = aggregate(&hr);
            t.row([
                n.to_string(),
                label.to_string(),
                "Hurfin–Raynal".into(),
                ok,
                rounds,
                lat,
                msgs,
            ]);

            let ct: Vec<Outcome> = (0..SEEDS).map(|s| run_ct(n, s, &crashes)).collect();
            let (ok, rounds, _maxlat, lat, msgs) = aggregate(&ct);
            t.row([
                n.to_string(),
                label.to_string(),
                "Chandra–Toueg".into(),
                ok,
                rounds,
                lat,
                msgs,
            ]);
        }
    }
    out.push_str(&t.to_string());
    out.push('\n');
    out
}

fn run_ct(n: usize, seed: u64, crashes: &[(usize, u64)]) -> Outcome {
    let mut cfg = SimConfig::new(n).seed(seed);
    for &(p, t) in crashes {
        cfg = cfg.crash(p, VirtualTime::at(t));
    }
    let res = Resilience::new(n, ftm_core::quorum::max_faults(n));
    let report = Simulation::build(cfg, |id| {
        ChandraToueg::new(
            res,
            id,
            100 + id.0 as u64,
            TimeoutDetector::new(n, Duration::of(150)),
            Duration::of(25),
            Some(Duration::of(40)),
        )
    })
    .run();
    let verdict = check_crash_consensus(&report, &proposals(n), &vec![false; n]);
    Outcome {
        rounds: max_round(&report.trace, n),
        latency: report.end_time.ticks(),
        messages: report.metrics.messages_sent,
        bytes: report.metrics.bytes_sent,
        verdict,
    }
}
