//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no external crates (the toolchain image is
//! offline), so the `benches/` targets cannot use a benchmarking
//! framework. This module is the replacement: calibrated inner-loop
//! timing with [`std::time::Instant`], reporting the median and best of a
//! handful of samples. It is deliberately simple — good enough to compare
//! orders of magnitude across commits on the same machine, which is all
//! the experiment write-ups need.
//!
//! # Machine-readable output
//!
//! Setting `FTM_BENCH_JSON=1` switches every bench target from the
//! aligned-text lines to one no-float JSON document per target (the same
//! [`ftm_sim::report::Json`] model the sweep harness and `ftm-verify`
//! emit), so downstream tooling can diff timings across commits:
//!
//! ```text
//! FTM_BENCH_JSON=1 cargo bench --bench sha256
//! ```
//!
//! Results accumulate in a process-wide registry; each target's `main`
//! ends with [`emit`], which prints the document and is a no-op in text
//! mode.

use std::sync::Mutex;
use std::time::Instant;

use ftm_sim::report::Json;

/// Re-exported so bench targets keep the familiar optimization barrier.
pub use std::hint::black_box;

/// Wall-clock budget per sample: long enough to drown out timer noise.
const TARGET_SAMPLE_NANOS: u64 = 20_000_000;

/// Samples per benchmark; the median is robust to a couple of outliers.
const SAMPLES: usize = 7;

/// One finished measurement, in integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Group the benchmark ran under.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median of the per-op samples.
    pub median_ns: u64,
    /// Best (smallest) per-op sample.
    pub best_ns: u64,
    /// Inner-loop iterations per sample.
    pub iters: u64,
    /// Number of samples taken.
    pub samples: u64,
}

/// Process-wide registry of finished measurements, for [`emit`].
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// `true` when `FTM_BENCH_JSON` is set: suppress text lines, emit JSON.
pub fn json_mode() -> bool {
    std::env::var_os("FTM_BENCH_JSON").is_some()
}

/// Renders measurements as the no-float JSON document [`emit`] prints.
pub fn results_to_json(results: &[BenchResult]) -> Json {
    Json::Obj(vec![(
        "benchmarks".into(),
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("group".into(), Json::Str(r.group.clone())),
                        ("name".into(), Json::Str(r.name.clone())),
                        ("median-ns".into(), Json::U64(r.median_ns)),
                        ("best-ns".into(), Json::U64(r.best_ns)),
                        ("iters".into(), Json::U64(r.iters)),
                        ("samples".into(), Json::U64(r.samples)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// In JSON mode, prints every recorded measurement as one document and
/// clears the registry; in text mode, a no-op (the lines already printed).
/// Bench targets call this at the end of `main`.
pub fn emit() {
    if !json_mode() {
        return;
    }
    let results: Vec<BenchResult> = std::mem::take(&mut *RESULTS.lock().unwrap());
    println!("{}", results_to_json(&results).render());
}

/// A named group of benchmarks printing aligned `ns/op` lines (or, under
/// `FTM_BENCH_JSON`, silently recording for [`emit`]).
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        if !json_mode() {
            println!("\n== {name} ==");
        }
        Group { name: name.into() }
    }

    /// Benchmarks `f` by inner-loop batching: the per-op cost is the
    /// sample time divided by the iteration count, so per-call timer
    /// overhead vanishes. Use for operations without per-iteration setup.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let started = Instant::now();
        black_box(f());
        let once = (started.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000);

        let mut samples = [0u64; SAMPLES];
        for s in &mut samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = t.elapsed().as_nanos() as u64 / iters;
        }
        self.report(name, &mut samples, iters);
    }

    /// Benchmarks `f` with a fresh `setup()` value per call, timing only
    /// `f`. Each call is timed individually, so the per-op figure carries
    /// ~tens of nanoseconds of timer overhead — negligible for the
    /// microsecond-and-up operations this is used on.
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let input = setup();
        let started = Instant::now();
        black_box(f(input));
        let once = (started.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);

        let mut samples = [0u64; SAMPLES];
        for s in &mut samples {
            let mut total = 0u64;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(f(input));
                total += t.elapsed().as_nanos() as u64;
            }
            *s = total / iters;
        }
        self.report(name, &mut samples, iters);
    }

    fn report(&self, name: &str, samples: &mut [u64], iters: u64) {
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        RESULTS.lock().unwrap().push(BenchResult {
            group: self.name.clone(),
            name: name.into(),
            median_ns: median,
            best_ns: best,
            iters,
            samples: samples.len() as u64,
        });
        if !json_mode() {
            println!(
                "{:<30} {:>12} ns/op   (best {:>12}, {iters} iters x {SAMPLES} samples)",
                format!("{}/{name}", self.name),
                median,
                best,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_render_as_integer_only_json() {
        let results = vec![BenchResult {
            group: "g".into(),
            name: "op".into(),
            median_ns: 1234,
            best_ns: 1100,
            iters: 64,
            samples: 7,
        }];
        let doc = results_to_json(&results).render();
        for key in ["benchmarks", "median-ns", "best-ns", "iters", "samples"] {
            assert!(doc.contains(key), "document lost {key}:\n{doc}");
        }
        assert!(doc.contains("1234"));
        assert!(!doc.contains('.'), "no-float model leaked a dot:\n{doc}");
    }

    #[test]
    fn bench_records_into_the_registry() {
        let before = RESULTS.lock().unwrap().len();
        let mut g = Group::new("registry-test");
        g.bench("noop", || black_box(1u64 + 1));
        let results = RESULTS.lock().unwrap();
        assert!(results.len() > before);
        let r = results.last().unwrap();
        assert_eq!(r.group, "registry-test");
        assert_eq!(r.name, "noop");
        assert_eq!(r.samples, SAMPLES as u64);
    }
}
