//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no external crates (the toolchain image is
//! offline), so the `benches/` targets cannot use a benchmarking
//! framework. This module is the replacement: calibrated inner-loop
//! timing with [`std::time::Instant`], reporting the median and best of a
//! handful of samples. It is deliberately simple — good enough to compare
//! orders of magnitude across commits on the same machine, which is all
//! the experiment write-ups need.
//!
//! # Machine-readable output
//!
//! Setting `FTM_BENCH_JSON=1` switches every bench target from the
//! aligned-text lines to one no-float JSON document per target (the same
//! [`ftm_sim::report::Json`] model the sweep harness and `ftm-verify`
//! emit), so downstream tooling can diff timings across commits:
//!
//! ```text
//! FTM_BENCH_JSON=1 cargo bench --bench sha256
//! ```
//!
//! Results accumulate in a process-wide registry; each target's `main`
//! ends with [`emit`], which prints the document and is a no-op in text
//! mode.

use std::sync::Mutex;
use std::time::Instant;

use ftm_sim::report::Json;

/// Re-exported so bench targets keep the familiar optimization barrier.
pub use std::hint::black_box;

/// Wall-clock budget per sample: long enough to drown out timer noise.
const TARGET_SAMPLE_NANOS: u64 = 20_000_000;

/// Samples per benchmark; the median is robust to a couple of outliers.
const SAMPLES: usize = 7;

/// One finished measurement, in integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Group the benchmark ran under.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median of the per-op samples.
    pub median_ns: u64,
    /// Best (smallest) per-op sample.
    pub best_ns: u64,
    /// Inner-loop iterations per sample.
    pub iters: u64,
    /// Number of samples taken.
    pub samples: u64,
    /// Bytes each operation processes, when the benchmark declared it
    /// (via [`Group::bench_bytes`]); drives the throughput columns.
    pub bytes_per_op: Option<u64>,
}

impl BenchResult {
    /// Median throughput in bytes per second, as an exact integer ratio
    /// `bytes · 10⁹ / median_ns` (widened through `u128`, so no float
    /// enters the report). `None` when the benchmark declared no size.
    pub fn bytes_per_sec(&self) -> Option<u64> {
        self.bytes_per_op
            .map(|b| (u128::from(b) * 1_000_000_000 / u128::from(self.median_ns.max(1))) as u64)
    }
}

/// Process-wide registry of finished measurements, for [`emit`].
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// `true` when `FTM_BENCH_JSON` is set: suppress text lines, emit JSON.
pub fn json_mode() -> bool {
    std::env::var_os("FTM_BENCH_JSON").is_some()
}

/// Renders measurements as the no-float JSON document [`emit`] prints.
pub fn results_to_json(results: &[BenchResult]) -> Json {
    Json::Obj(vec![(
        "benchmarks".into(),
        Json::Arr(
            results
                .iter()
                .map(|r| {
                    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
                    Json::Obj(vec![
                        ("group".into(), Json::Str(r.group.clone())),
                        ("name".into(), Json::Str(r.name.clone())),
                        ("median-ns".into(), Json::U64(r.median_ns)),
                        ("best-ns".into(), Json::U64(r.best_ns)),
                        ("iters".into(), Json::U64(r.iters)),
                        ("samples".into(), Json::U64(r.samples)),
                        ("bytes-per-op".into(), opt(r.bytes_per_op)),
                        ("bytes-per-sec".into(), opt(r.bytes_per_sec())),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Drains the process-wide registry, returning every measurement recorded
/// since the last drain. The `ftm-bench` gate binary uses this to compare
/// a fresh run against a committed baseline without round-tripping through
/// stdout.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

/// In JSON mode, prints every recorded measurement as one document and
/// clears the registry; in text mode, a no-op (the lines already printed).
/// Bench targets call this at the end of `main`.
pub fn emit() {
    if !json_mode() {
        return;
    }
    let results: Vec<BenchResult> = std::mem::take(&mut *RESULTS.lock().unwrap());
    println!("{}", results_to_json(&results).render());
}

/// A named group of benchmarks printing aligned `ns/op` lines (or, under
/// `FTM_BENCH_JSON`, silently recording for [`emit`]).
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        if !json_mode() {
            println!("\n== {name} ==");
        }
        Group { name: name.into() }
    }

    /// Benchmarks `f` by inner-loop batching: the per-op cost is the
    /// sample time divided by the iteration count, so per-call timer
    /// overhead vanishes. Use for operations without per-iteration setup.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.bench_sized(name, None, f);
    }

    /// Like [`bench`](Self::bench), declaring that each call of `f`
    /// processes `bytes` bytes. The result then carries `bytes-per-op` and
    /// the derived integer-ratio `bytes-per-sec` throughput column.
    pub fn bench_bytes<T>(&mut self, name: &str, bytes: u64, f: impl FnMut() -> T) {
        self.bench_sized(name, Some(bytes), f);
    }

    fn bench_sized<T>(&mut self, name: &str, bytes: Option<u64>, mut f: impl FnMut() -> T) {
        let started = Instant::now();
        black_box(f());
        let once = (started.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000);

        let mut samples = [0u64; SAMPLES];
        for s in &mut samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = t.elapsed().as_nanos() as u64 / iters;
        }
        self.report(name, &mut samples, iters, bytes);
    }

    /// Records one externally timed measurement: `ops` operations took
    /// `elapsed_ms` wall-clock milliseconds. The per-op figure is the
    /// integer ratio `elapsed_ms · 10⁶ / ops` ns/op with one sample —
    /// for end-to-end workloads (a whole cluster run) where the
    /// calibrated inner loop of [`bench`](Self::bench) would repeat a
    /// multi-second job seven times. Wall-clock only, so the gate treats
    /// it like every other median: soft (warn beyond +25 %).
    pub fn record_ops(&mut self, name: &str, ops: u64, elapsed_ms: u64) {
        let per_op = elapsed_ms.saturating_mul(1_000_000) / ops.max(1);
        let mut samples = [per_op.max(1)];
        self.report(name, &mut samples, 1, None);
    }

    /// Benchmarks `f` with a fresh `setup()` value per call, timing only
    /// `f`. Each call is timed individually, so the per-op figure carries
    /// ~tens of nanoseconds of timer overhead — negligible for the
    /// microsecond-and-up operations this is used on.
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let input = setup();
        let started = Instant::now();
        black_box(f(input));
        let once = (started.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);

        let mut samples = [0u64; SAMPLES];
        for s in &mut samples {
            let mut total = 0u64;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(f(input));
                total += t.elapsed().as_nanos() as u64;
            }
            *s = total / iters;
        }
        self.report(name, &mut samples, iters, None);
    }

    fn report(&self, name: &str, samples: &mut [u64], iters: u64, bytes: Option<u64>) {
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        let result = BenchResult {
            group: self.name.clone(),
            name: name.into(),
            median_ns: median,
            best_ns: best,
            iters,
            samples: samples.len() as u64,
            bytes_per_op: bytes,
        };
        if !json_mode() {
            let throughput = result
                .bytes_per_sec()
                .map_or(String::new(), |bps| format!("   {bps} B/s"));
            println!(
                "{:<30} {:>12} ns/op   (best {:>12}, {iters} iters x {} samples){throughput}",
                format!("{}/{name}", self.name),
                median,
                best,
                result.samples,
            );
        }
        RESULTS.lock().unwrap().push(result);
    }
}

/// A coarse wall-clock stopwatch for progress logging (the experiment
/// driver's per-section timings). This module is the only sanctioned home
/// of `Instant` in the workspace — the `ftm-lint` D3 rule flags any other
/// use — so callers that want elapsed time borrow it from here.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Whole milliseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_render_as_integer_only_json() {
        let results = vec![BenchResult {
            group: "g".into(),
            name: "op".into(),
            median_ns: 1234,
            best_ns: 1100,
            iters: 64,
            samples: 7,
            bytes_per_op: None,
        }];
        let doc = results_to_json(&results).render();
        for key in [
            "benchmarks",
            "median-ns",
            "best-ns",
            "iters",
            "samples",
            "bytes-per-op",
            "bytes-per-sec",
        ] {
            assert!(doc.contains(key), "document lost {key}:\n{doc}");
        }
        assert!(doc.contains("1234"));
        assert!(!doc.contains('.'), "no-float model leaked a dot:\n{doc}");
    }

    #[test]
    fn throughput_is_an_exact_integer_ratio() {
        let mut r = BenchResult {
            group: "g".into(),
            name: "op".into(),
            median_ns: 2_000,
            best_ns: 1_900,
            iters: 64,
            samples: 7,
            bytes_per_op: Some(1024),
        };
        // 1024 B / 2 µs = 512 MB/s, computed without floats.
        assert_eq!(r.bytes_per_sec(), Some(512_000_000));
        r.bytes_per_op = None;
        assert_eq!(r.bytes_per_sec(), None);
        // Large sizes must not overflow the widened intermediate.
        r.bytes_per_op = Some(u64::MAX / 2);
        r.median_ns = 1;
        assert!(r.bytes_per_sec().is_some());
    }

    #[test]
    fn bench_bytes_records_the_declared_size() {
        let mut g = Group::new("throughput-test");
        g.bench_bytes("digest", 4096, || black_box(1u64 + 1));
        let results = RESULTS.lock().unwrap();
        let r = results
            .iter()
            .rev()
            .find(|r| r.group == "throughput-test")
            .unwrap();
        assert_eq!(r.bytes_per_op, Some(4096));
        assert!(r.bytes_per_sec().unwrap() > 0);
    }

    #[test]
    fn record_ops_is_an_integer_ratio_single_sample() {
        let mut g = Group::new("record-test");
        g.record_ops("cluster", 500, 2_000); // 500 ops in 2 s = 4 ms/op
        let results = RESULTS.lock().unwrap();
        let r = results
            .iter()
            .rev()
            .find(|r| r.group == "record-test")
            .unwrap();
        assert_eq!(r.median_ns, 4_000_000);
        assert_eq!(r.samples, 1);
        assert_eq!(r.iters, 1);
        assert_eq!(r.bytes_per_op, None);
    }

    #[test]
    fn bench_records_into_the_registry() {
        let before = RESULTS.lock().unwrap().len();
        let mut g = Group::new("registry-test");
        g.bench("noop", || black_box(1u64 + 1));
        let results = RESULTS.lock().unwrap();
        assert!(results.len() > before);
        let r = results.last().unwrap();
        assert_eq!(r.group, "registry-test");
        assert_eq!(r.name, "noop");
        assert_eq!(r.samples, SAMPLES as u64);
    }
}
