//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no external crates (the toolchain image is
//! offline), so the `benches/` targets cannot use a benchmarking
//! framework. This module is the replacement: calibrated inner-loop
//! timing with [`std::time::Instant`], reporting the median and best of a
//! handful of samples. It is deliberately simple — good enough to compare
//! orders of magnitude across commits on the same machine, which is all
//! the experiment write-ups need.

use std::time::Instant;

/// Re-exported so bench targets keep the familiar optimization barrier.
pub use std::hint::black_box;

/// Wall-clock budget per sample: long enough to drown out timer noise.
const TARGET_SAMPLE_NANOS: u64 = 20_000_000;

/// Samples per benchmark; the median is robust to a couple of outliers.
const SAMPLES: usize = 7;

/// A named group of benchmarks printing aligned `ns/op` lines.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Group { name: name.into() }
    }

    /// Benchmarks `f` by inner-loop batching: the per-op cost is the
    /// sample time divided by the iteration count, so per-call timer
    /// overhead vanishes. Use for operations without per-iteration setup.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let started = Instant::now();
        black_box(f());
        let once = (started.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000);

        let mut samples = [0u64; SAMPLES];
        for s in samples.iter_mut() {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = t.elapsed().as_nanos() as u64 / iters;
        }
        self.report(name, &mut samples, iters);
    }

    /// Benchmarks `f` with a fresh `setup()` value per call, timing only
    /// `f`. Each call is timed individually, so the per-op figure carries
    /// ~tens of nanoseconds of timer overhead — negligible for the
    /// microsecond-and-up operations this is used on.
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        let input = setup();
        let started = Instant::now();
        black_box(f(input));
        let once = (started.elapsed().as_nanos() as u64).max(1);
        let iters = (TARGET_SAMPLE_NANOS / once).clamp(1, 10_000);

        let mut samples = [0u64; SAMPLES];
        for s in samples.iter_mut() {
            let mut total = 0u64;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                black_box(f(input));
                total += t.elapsed().as_nanos() as u64;
            }
            *s = total / iters;
        }
        self.report(name, &mut samples, iters);
    }

    fn report(&self, name: &str, samples: &mut [u64], iters: u64) {
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{:<30} {:>12} ns/op   (best {:>12}, {iters} iters x {SAMPLES} samples)",
            format!("{}/{name}", self.name),
            median,
            best,
        );
    }
}
