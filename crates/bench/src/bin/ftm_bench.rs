//! The gated hot-path bench runner.
//!
//! ```text
//! cargo run --release -p ftm-bench --bin ftm-bench              # run suite
//! FTM_BENCH_JSON=1 cargo run --release -p ftm-bench --bin ftm-bench > BENCH_n.json
//! cargo run --release -p ftm-bench --bin ftm-bench -- --compare BENCH_n.json
//! ```
//!
//! Exit codes in `--compare` mode: `0` clean, `1` hard regression (any
//! bytes-per-op growth, or a baseline benchmark missing from this run),
//! `2` usage or parse error, `3` wall-clock-only regression (median beyond
//! +25 % — machine-dependent, CI maps it to a warning).

use std::process::ExitCode;

use ftm_bench::compare::{compare, parse_baseline};
use ftm_bench::suite::run_suite;
use ftm_bench::timing::{emit, json_mode, take_results};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            run_suite();
            emit(); // JSON document under FTM_BENCH_JSON, no-op otherwise
            ExitCode::SUCCESS
        }
        [flag, path] if flag == "--compare" => run_compare(path),
        _ => {
            eprintln!("usage: ftm-bench [--compare <baseline.json>]");
            ExitCode::from(2)
        }
    }
}

fn run_compare(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("ftm-bench: cannot read baseline `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match parse_baseline(&text) {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("ftm-bench: baseline `{path}` is malformed: {e}");
            return ExitCode::from(2);
        }
    };

    run_suite();
    if json_mode() {
        eprintln!("ftm-bench: note: FTM_BENCH_JSON is ignored in --compare mode");
    }
    let current = take_results();
    let cmp = compare(&baseline, &current);

    for line in &cmp.notes {
        println!("note: {line}");
    }
    for line in &cmp.soft {
        println!("wall-clock regression: {line}");
    }
    for line in &cmp.hard {
        println!("REGRESSION: {line}");
    }
    match cmp.exit_code() {
        0 => {
            println!(
                "ftm-bench: OK — {} benchmarks within baseline `{path}`",
                current.len()
            );
            ExitCode::SUCCESS
        }
        code => {
            println!("ftm-bench: comparison against `{path}` failed (exit {code})");
            ExitCode::from(code as u8)
        }
    }
}
