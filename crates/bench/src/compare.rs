//! Baseline comparison for the `ftm-bench` gate: parse a committed
//! `BENCH_<n>.json`, diff a fresh suite run against it, decide the exit
//! code.
//!
//! The workspace has no JSON dependency, so this module carries a minimal
//! recursive-descent parser for exactly the dialect
//! [`crate::timing::results_to_json`] renders: objects, arrays, strings
//! (with the renderer's escapes), unsigned integers, booleans, `null`.
//! Floats are rejected — the bench model is integer-only by design.
//!
//! # Gate policy
//!
//! * **bytes-per-op** is deterministic, so *any* increase over the
//!   baseline — or a baseline benchmark missing from the current run — is
//!   a hard failure (exit 1);
//! * **wall-clock** is machine-dependent, so only a median regression
//!   beyond 25 % is reported, and as a soft failure (exit 3) that CI maps
//!   to a warning;
//! * exit 0 when clean; exit 2 is reserved for usage/parse errors.

use std::collections::BTreeMap;

use crate::timing::BenchResult;

/// A parsed JSON value (just enough for bench documents).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the no-float model's only number).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object-field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
        return Err(format!(
            "non-integer number at byte {start} (the bench model is integer-only)"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let s = std::str::from_utf8(&bytes[*pos..*pos + ch_len])
                    .map_err(|_| format!("bad utf-8 at byte {pos}"))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

/// One baseline benchmark, keyed by `group/name`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Committed median wall-clock (soft gate).
    pub median_ns: u64,
    /// Committed deterministic bytes-per-op, when declared (hard gate).
    pub bytes_per_op: Option<u64>,
}

/// Extracts the `group/name → entry` map from a bench JSON document.
///
/// # Errors
///
/// Reports a malformed document or a benchmark record missing its
/// mandatory fields.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, BaselineEntry>, String> {
    let doc = parse_json(text)?;
    let benches = doc
        .get("benchmarks")
        .and_then(|b| match b {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or("document has no `benchmarks` array")?;
    let mut map = BTreeMap::new();
    for (i, bench) in benches.iter().enumerate() {
        let field_str = |key: &str| {
            bench
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or(format!("benchmark {i} lacks string `{key}`"))
        };
        let key = format!("{}/{}", field_str("group")?, field_str("name")?);
        let median_ns = bench
            .get("median-ns")
            .and_then(JsonValue::as_u64)
            .ok_or(format!("benchmark {i} lacks `median-ns`"))?;
        let bytes_per_op = bench.get("bytes-per-op").and_then(JsonValue::as_u64);
        map.insert(
            key,
            BaselineEntry {
                median_ns,
                bytes_per_op,
            },
        );
    }
    Ok(map)
}

/// Result of diffing a fresh run against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Comparison {
    /// Hard failures: bytes-per-op grew, or a baseline benchmark vanished.
    pub hard: Vec<String>,
    /// Soft failures: wall-clock medians beyond the 25 % allowance.
    pub soft: Vec<String>,
    /// Informational lines (improvements, new benchmarks).
    pub notes: Vec<String>,
}

impl Comparison {
    /// The gate's exit code: 1 on any hard failure, 3 on soft-only
    /// regressions, 0 when clean.
    pub fn exit_code(&self) -> i32 {
        if !self.hard.is_empty() {
            1
        } else if !self.soft.is_empty() {
            3
        } else {
            0
        }
    }
}

/// Wall-clock allowance: a current median beyond `baseline + 25 %` is a
/// (soft) regression. Integer arithmetic: `cur * 4 > base * 5`.
fn wallclock_regressed(baseline: u64, current: u64) -> bool {
    u128::from(current) * 4 > u128::from(baseline) * 5
}

/// Diffs `current` (a fresh suite run) against `baseline`.
pub fn compare(baseline: &BTreeMap<String, BaselineEntry>, current: &[BenchResult]) -> Comparison {
    let mut cmp = Comparison::default();
    let current_by_key: BTreeMap<String, &BenchResult> = current
        .iter()
        .map(|r| (format!("{}/{}", r.group, r.name), r))
        .collect();

    for (key, base) in baseline {
        let Some(cur) = current_by_key.get(key) else {
            cmp.hard
                .push(format!("{key}: present in baseline, missing from this run"));
            continue;
        };
        match (base.bytes_per_op, cur.bytes_per_op) {
            (Some(b), Some(c)) if c > b => cmp
                .hard
                .push(format!("{key}: bytes-per-op grew {b} -> {c}")),
            (Some(b), Some(c)) if c < b => cmp.notes.push(format!(
                "{key}: bytes-per-op improved {b} -> {c} (refresh the baseline)"
            )),
            (Some(b), None) => cmp
                .hard
                .push(format!("{key}: bytes-per-op ({b}) no longer reported")),
            _ => {}
        }
        if wallclock_regressed(base.median_ns, cur.median_ns) {
            cmp.soft.push(format!(
                "{key}: median {} ns -> {} ns (> +25%)",
                base.median_ns, cur.median_ns
            ));
        }
    }
    for key in current_by_key.keys() {
        if !baseline.contains_key(key) {
            cmp.notes
                .push(format!("{key}: new benchmark, not in baseline"));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::results_to_json;

    fn result(group: &str, name: &str, median: u64, bytes: Option<u64>) -> BenchResult {
        BenchResult {
            group: group.into(),
            name: name.into(),
            median_ns: median,
            best_ns: median,
            iters: 1,
            samples: 7,
            bytes_per_op: bytes,
        }
    }

    #[test]
    fn baseline_roundtrips_through_the_renderer() {
        let results = vec![
            result("retention", "full", 5_000, Some(4096)),
            result("signatures", "cached", 120, None),
        ];
        let doc = results_to_json(&results).render();
        let baseline = parse_baseline(&doc).expect("parse our own rendering");
        assert_eq!(baseline.len(), 2);
        assert_eq!(
            baseline["retention/full"],
            BaselineEntry {
                median_ns: 5_000,
                bytes_per_op: Some(4096)
            }
        );
        assert_eq!(baseline["signatures/cached"].bytes_per_op, None);
    }

    #[test]
    fn identical_run_passes() {
        let results = vec![result("g", "a", 1_000, Some(100))];
        let baseline = parse_baseline(&results_to_json(&results).render()).unwrap();
        let cmp = compare(&baseline, &results);
        assert_eq!(cmp.exit_code(), 0, "{cmp:?}");
    }

    #[test]
    fn byte_growth_is_a_hard_failure() {
        let baseline =
            parse_baseline(&results_to_json(&[result("g", "a", 1_000, Some(100))]).render())
                .unwrap();
        let cmp = compare(&baseline, &[result("g", "a", 1_000, Some(101))]);
        assert_eq!(cmp.exit_code(), 1);
        assert!(cmp.hard[0].contains("bytes-per-op grew 100 -> 101"));
        // A byte *improvement* is informational, not a failure.
        let better = compare(&baseline, &[result("g", "a", 1_000, Some(99))]);
        assert_eq!(better.exit_code(), 0);
        assert!(better.notes[0].contains("improved"));
    }

    #[test]
    fn missing_benchmark_is_a_hard_failure() {
        let baseline =
            parse_baseline(&results_to_json(&[result("g", "a", 1_000, None)]).render()).unwrap();
        let cmp = compare(&baseline, &[]);
        assert_eq!(cmp.exit_code(), 1);
        assert!(cmp.hard[0].contains("missing"));
    }

    #[test]
    fn wallclock_beyond_25_percent_is_soft_only() {
        let baseline =
            parse_baseline(&results_to_json(&[result("g", "a", 1_000, Some(50))]).render())
                .unwrap();
        // +25% exactly is allowed; +26% is a soft failure.
        assert_eq!(
            compare(&baseline, &[result("g", "a", 1_250, Some(50))]).exit_code(),
            0
        );
        let cmp = compare(&baseline, &[result("g", "a", 1_260, Some(50))]);
        assert_eq!(cmp.exit_code(), 3);
        assert!(cmp.soft[0].contains("+25%"));
    }

    #[test]
    fn parser_rejects_floats_and_garbage() {
        assert!(parse_json("{\"a\": 1.5}").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} x").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"k": ["a\"b", null, true, {"n": 7}]}"#).unwrap();
        let arr = doc.get("k").unwrap();
        match arr {
            JsonValue::Arr(items) => {
                assert_eq!(items[0], JsonValue::Str("a\"b".into()));
                assert_eq!(items[1], JsonValue::Null);
                assert_eq!(items[3].get("n").and_then(JsonValue::as_u64), Some(7));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
