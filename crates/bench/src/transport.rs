//! Gated end-to-end transport benchmarks: in-process loopback clusters
//! of the transformed Byzantine replicated log, driven by the
//! single-threaded many-client load loop (DESIGN.md §15).
//!
//! Three rows, all wall-clock-only (`bytes-per-op` stays `null` — real
//! sockets make byte counts schedule-dependent, so the hard byte gate
//! does not apply; the medians ride the soft +25 % gate like every other
//! timing):
//!
//! * `transport/batch-1-512cmds` — 512 client commands, one per slot;
//! * `transport/batch-16-512cmds` — the same 512 commands packed up to
//!   16 per slot (the amortization `--batch` buys; the acceptance bar is
//!   ≥ 3×, and the ratio grows with workload size because each consensus
//!   slot costs the same regardless of how many commands ride it);
//! * `transport/many-client-1000x6` — 1000 concurrent client
//!   connections, six requests each, against four replicas. The row
//!   doubles as a functional gate: the run panics unless every one of
//!   the 6000 submissions completes and commits.
//!
//! The per-op figure is nanoseconds per *committed command* — elapsed
//! wall-clock of the whole run (submission + consensus + commit
//! settlement) divided by commands committed. Replica threads go through
//! [`ftm_net::spawn_node`] (the D4-sanctioned harness) and all timing
//! through [`crate::timing::Stopwatch`] (the D3-sanctioned clock).

use std::sync::{Arc, Mutex};

use ftm_core::byzantine::log::ReplicatedLog;
use ftm_core::byzantine::ByzantineConsensus;
use ftm_core::config::ProtocolConfig;
use ftm_crypto::wire::{CanonicalDecode, CanonicalEncode};
use ftm_net::{
    bind_cluster, run_load, spawn_node, ClientConn, LoadConfig, NodeConfig, NodeHandle,
    ServiceReply,
};
use ftm_runtime::ProcessId;
use ftm_serve::api::{Reply, Request, Status};
use ftm_serve::batch::BatchState;

use crate::timing::{Group, Stopwatch};

/// Cluster shape for every transport row (the loopback-smoke shape).
const N: usize = 4;
const F: usize = 1;

/// Fixed seed: key material and backoff jitter are reproducible; the
/// wall-clock medians of course are not (and are soft-gated).
const SEED: u64 = 17;

/// Shape of one measured cluster run.
struct Workload {
    /// Concurrent client connections in the load loop.
    clients: usize,
    /// Submissions per client.
    requests_per_client: u64,
    /// Max commands a replica packs into one slot.
    batch: u64,
    /// Cluster id (distinct per row so stray sockets cannot cross-talk).
    cluster: u64,
}

/// Outcome of one run: total committed commands and the wall-clock the
/// whole thing took.
struct Outcome {
    committed: u64,
    elapsed_ms: u64,
}

/// Runs the gated transport rows.
pub fn transport_benches() {
    let mut g = Group::new("transport");
    let rows: [(&str, Workload); 3] = [
        (
            "batch-1-512cmds",
            Workload {
                clients: 16,
                requests_per_client: 32,
                batch: 1,
                cluster: 0xBE01,
            },
        ),
        (
            "batch-16-512cmds",
            Workload {
                clients: 16,
                requests_per_client: 32,
                batch: 16,
                cluster: 0xBE16,
            },
        ),
        (
            "many-client-1000x6",
            Workload {
                clients: 1000,
                requests_per_client: 6,
                batch: 8,
                cluster: 0xBEC1,
            },
        ),
    ];
    for (name, workload) in rows {
        let outcome = run_cluster(&workload);
        g.record_ops(name, outcome.committed, outcome.elapsed_ms.max(1));
    }
}

/// Boots an in-process loopback cluster, pushes the workload through the
/// many-client load loop, waits until every submitted command committed,
/// then shuts the cluster down. Panics on any shortfall — a transport
/// that drops commands must fail the bench gate, not report a number.
fn run_cluster(w: &Workload) -> Outcome {
    let total = w.clients as u64 * w.requests_per_client;
    // The log is free-running: slots that open while the queue is empty
    // carry filler, so no fixed log length can promise capacity for the
    // whole workload (the filler fraction depends on the submission/
    // consensus race). Instead the budget is effectively unbounded and
    // the run ends on the client `Shutdown` once everything committed.
    let slots = 1_000_000;

    let setup = ProtocolConfig::new(N, F).seed(SEED).setup();
    let (listeners, addrs) = bind_cluster(N).expect("bind loopback cluster");
    let mut handles: Vec<NodeHandle<Vec<ftm_certify::ValueVector>>> = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        // The same three-way ledger split as ftm-serve's main: command
        // source, slot-seal settlement, client service.
        let ledger: Arc<Mutex<BatchState>> = Arc::new(Mutex::new(BatchState::new(w.batch)));
        let source = Arc::clone(&ledger);
        let settle = Arc::clone(&ledger);
        let actor = ReplicatedLog::<ByzantineConsensus>::new(&setup, me, slots, move |slot, p| {
            source
                .lock()
                .ok()
                .and_then(|mut q| q.propose(slot))
                .unwrap_or(1_000_000 * (slot + 1) + u64::from(p))
        })
        .with_slot_hook(move |slot, vector| {
            if let Ok(mut q) = settle.lock() {
                q.on_sealed(slot, vector.get(me.index()));
            }
        });
        let mut cfg = NodeConfig::new(me, addrs.clone(), w.cluster, SEED);
        cfg.run_timeout_ms = 120_000;
        let batch = w.batch;
        handles.push(spawn_node(
            cfg,
            listener,
            Box::new(actor),
            move |_, view, frame| match Request::from_canonical_bytes(frame) {
                Ok(Request::Submit { value }) => {
                    let queued = ledger.lock().map_or(0, |mut q| q.submit(value));
                    ServiceReply::reply(Reply::Submitted { queued }.canonical_bytes())
                }
                Ok(Request::Status) => {
                    let status = Status {
                        me: me.0,
                        now_ms: view.now.ticks(),
                        decided_slots: 0, // tracked via the slot hook instead
                        halted: view.halted,
                        contradicted: view.contradicted,
                        log_digest: Vec::new(),
                        convicted: Vec::new(),
                        queued: ledger.lock().map_or(0, |q| q.queued()),
                        msgs_sent: view.msgs_sent,
                        msgs_received: view.msgs_received,
                        bytes_sent: view.bytes_sent,
                        bytes_received: view.bytes_received,
                        batch,
                        submitted: ledger.lock().map_or(0, |q| q.submitted()),
                        committed: ledger.lock().map_or(0, |q| q.committed()),
                        inflight: ledger.lock().map_or(0, |q| q.inflight()),
                        committed_digest: Vec::new(),
                    };
                    ServiceReply::reply(Reply::Status(status).canonical_bytes())
                }
                Ok(Request::Shutdown) => {
                    ServiceReply::shutdown(Reply::ShuttingDown.canonical_bytes())
                }
                Err(e) => ServiceReply::reply(Reply::BadRequest(format!("{e}")).canonical_bytes()),
            },
        ));
    }

    let clock = Stopwatch::start();
    let lcfg = LoadConfig {
        clients: w.clients,
        targets: addrs.clone(),
        cluster: w.cluster,
        requests_per_client: w.requests_per_client,
        seed: SEED,
        timeout_ms: 120_000,
    };
    let outcome = run_load(
        &lcfg,
        |i, k| {
            let value = 0xBE_0000_0000 + (i as u64) * w.requests_per_client + k;
            Request::Submit { value }.canonical_bytes()
        },
        |_, frame| {
            matches!(
                Reply::from_canonical_bytes(frame),
                Ok(Reply::Submitted { .. })
            )
        },
    )
    .expect("load loop");
    assert_eq!(
        outcome.completed, total,
        "load loop finished {} of {total} submissions ({} rejected, {} reconnects)",
        outcome.completed, outcome.rejected, outcome.reconnects
    );

    // Settlement: poll each replica until its whole queue committed.
    let mut committed = 0u64;
    for (i, addr) in addrs.iter().enumerate() {
        let mut conn = ClientConn::connect(addr, w.cluster).expect("status connection");
        loop {
            let s = status(&mut conn);
            assert_eq!(
                s.submitted,
                s.queued + s.inflight + s.committed,
                "replica {i} broke ledger conservation"
            );
            assert!(!s.contradicted, "replica {i} contradicted itself");
            if s.queued == 0 && s.inflight == 0 {
                committed += s.committed;
                break;
            }
            assert!(
                clock.elapsed_ms() < 110_000,
                "replica {i} stuck at {} of {} commands ({} queued, {} inflight)",
                s.committed,
                s.submitted,
                s.queued,
                s.inflight
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    let elapsed_ms = clock.elapsed_ms();
    assert_eq!(committed, total, "cluster committed {committed} of {total}");

    for addr in &addrs {
        if let Ok(mut conn) = ClientConn::connect(addr, w.cluster) {
            let _ = conn.request(&Request::Shutdown.canonical_bytes());
        }
    }
    for handle in handles {
        handle.kill().expect("node thread");
    }
    Outcome {
        committed,
        elapsed_ms,
    }
}

fn status(conn: &mut ClientConn) -> Status {
    let frame = conn
        .request(&Request::Status.canonical_bytes())
        .expect("status request");
    match Reply::from_canonical_bytes(&frame) {
        Ok(Reply::Status(s)) => s,
        other => panic!("unexpected status reply: {other:?}"),
    }
}
