//! The curated hot-path suite behind the `ftm-bench` gate binary.
//!
//! Unlike the exploratory `benches/` targets, this suite is small, fast
//! and *gated*: CI runs it on every push and compares the result against
//! the committed `BENCH_<n>.json` baseline (see `ftm-bench --compare`).
//! Every benchmark that declares `bytes-per-op` does so with a
//! **deterministic integer** — retained-evidence bytes of a fixed-seed
//! run, canonical envelope bytes of a fixed-seed round — so the bytes
//! column is machine-independent and can be hard-gated; wall-clock
//! columns are machine-dependent and only warn.

use ftm_certify::certificate::Certificate;
use ftm_certify::{verify_envelopes_batched, Core, Envelope, MessageCore, SignedCore, ValueVector};
use ftm_core::byzantine::log::Retention;
use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::rsa::KeyPair;
use ftm_sim::trace::TraceEvent;
use ftm_sim::{Payload, ProcessId, RunReport};

use crate::timing::Group;

/// Fixed seed for every suite workload: the bytes columns must reproduce
/// bit-for-bit on any machine.
const SEED: u64 = 11;

/// Replicated-log shape for the retention benchmarks.
const N: usize = 4;
const F: usize = 1;
const SLOTS: u64 = 3;

/// Runs the gated suite, recording into the process-wide registry (drain
/// with [`crate::timing::take_results`] or print via
/// [`crate::timing::emit`]).
pub fn run_suite() {
    retention_benches();
    signature_benches();
    crate::transport::transport_benches();
}

/// The retained-evidence bytes a fixed-seed log run reports at replica 0:
/// the *last* value of the `{prefix} slot=k bytes=B` series under `Full`
/// (the linear endpoint), the *max* under `Checkpoint` (the flat bound).
fn retained_bytes(report: &RunReport<Vec<ValueVector>>, prefix: &str, last: bool) -> u64 {
    let series: Vec<u64> = report
        .trace
        .entries()
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Note { process, text } if process.0 == 0 && text.starts_with(prefix) => {
                text.rsplit_once("bytes=").and_then(|(_, b)| b.parse().ok())
            }
            _ => None,
        })
        .collect();
    assert!(!series.is_empty(), "run emitted no `{prefix}` notes");
    if last {
        *series.last().unwrap()
    } else {
        *series.iter().max().unwrap()
    }
}

fn run_log(retention: Retention) -> RunReport<Vec<ValueVector>> {
    ftm_faults::AttackRun::new(N, F, SEED, 0)
        .retention(retention)
        .run_log(SLOTS, |_| None)
}

fn retention_benches() {
    let mut g = Group::new("retention");
    let full_bytes = retained_bytes(&run_log(Retention::Full), "evidence slot=", true);
    g.bench_bytes("full-log-3slots", full_bytes, || run_log(Retention::Full));
    let flat_bytes = retained_bytes(&run_log(Retention::Checkpoint), "checkpoint slot=", false);
    g.bench_bytes("checkpoint-log-3slots", flat_bytes, || {
        run_log(Retention::Checkpoint)
    });
}

/// A fixed-seed round burst: `n` CURRENT envelopes whose certificates all
/// carry the same `n` signed INITs (the overlap batching exploits).
/// Shared with experiment E12, which reports the amortization counts the
/// suite times.
pub fn round_burst(n: usize) -> (Vec<KeyPair>, Vec<Envelope>) {
    let mut rng = ftm_crypto::rng_from_seed(SEED);
    let (_, keys) = KeyDirectory::generate(&mut rng, n, 128);
    let inits: Vec<SignedCore> = keys
        .iter()
        .enumerate()
        .map(|(i, kp)| {
            SignedCore::sign(
                MessageCore::new(ProcessId(i as u32), Core::Init { value: i as u64 }),
                kp,
            )
        })
        .collect();
    let envs = keys
        .iter()
        .enumerate()
        .map(|(i, kp)| {
            Envelope::make(
                ProcessId(i as u32),
                Core::Current {
                    round: 1,
                    vector: ValueVector::from_entries(vec![Some(1); n]),
                },
                Certificate::from_items(inits.clone()),
                kp,
            )
        })
        .collect();
    (keys, envs)
}

fn signature_benches() {
    let mut g = Group::new("signatures");
    let (keys, envs) = round_burst(N);
    let pubs: Vec<_> = keys.iter().map(|kp| kp.public().clone()).collect();
    let sc = &envs[0].signed;

    // Cold path: a fresh directory (fresh memo) per verification.
    g.bench_batched(
        "verify-uncached",
        || KeyDirectory::new(pubs.clone()),
        |dir| sc.verify(&dir).is_ok(),
    );

    // Warm path: the shared memo answers every verification after the
    // first — the cost every re-checking layer actually pays.
    let warm = KeyDirectory::new(pubs.clone());
    let _ = sc.verify(&warm);
    g.bench("verify-cached", || sc.verify(&warm).is_ok());

    // Whole-round batches, cold directory each call, at one and at eight
    // work-stealing threads; bytes-per-op is the round's wire volume.
    let round_bytes: u64 = envs.iter().map(|e| e.size_bytes() as u64).sum();

    // The "before" row: every signed core of the round verified through
    // the raw public key, once per appearance — the cost the stack paid
    // before the verdict memo and the batch existed.
    {
        let pubs = pubs.clone();
        let envs = envs.clone();
        g.bench_bytes("naive-verify-round", round_bytes, move || {
            envs.iter()
                .flat_map(|env| std::iter::once(&env.signed).chain(env.cert.iter()))
                .all(|sc| {
                    let sig = ftm_crypto::rsa::Signature::from_bytes(&sc.signature_bytes());
                    pubs[sc.sender().0 as usize].verify_digest(&sc.digest(), &sig)
                })
        });
    }
    for threads in [1usize, 8] {
        let pubs = pubs.clone();
        let envs = envs.clone();
        g.bench_bytes(
            &format!("batch-verify-round-{threads}t"),
            round_bytes,
            move || {
                let dir = KeyDirectory::new(pubs.clone());
                verify_envelopes_batched(&dir, &envs, threads)
                    .iter()
                    .all(Result::is_ok)
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retained_bytes_are_deterministic_and_compaction_undercuts_full() {
        let full_a = retained_bytes(&run_log(Retention::Full), "evidence slot=", true);
        let full_b = retained_bytes(&run_log(Retention::Full), "evidence slot=", true);
        assert_eq!(full_a, full_b, "bytes column must be reproducible");
        let flat = retained_bytes(&run_log(Retention::Checkpoint), "checkpoint slot=", false);
        assert!(
            flat < full_a,
            "checkpointing must undercut full retention ({flat} vs {full_a})"
        );
    }

    #[test]
    fn round_burst_batch_verifies_clean() {
        let (keys, envs) = round_burst(N);
        let dir = KeyDirectory::new(keys.iter().map(|kp| kp.public().clone()).collect());
        assert!(verify_envelopes_batched(&dir, &envs, 2)
            .iter()
            .all(Result::is_ok));
    }
}
