//! Experiment harness: regenerates every table in `EXPERIMENTS.md`.
//!
//! The paper is a methodology paper without a quantitative evaluation
//! section, so reproduction means (i) running every protocol figure,
//! (ii) validating every stated claim, and (iii) measuring the costs the
//! paper implies but never reports. Each `eN` module below regenerates one
//! experiment of the index in `DESIGN.md` §4; the `experiments` binary
//! prints them as markdown.
//!
//! All experiments are deterministic: fixed seed ranges, fixed
//! configurations — rerunning the binary reproduces `EXPERIMENTS.md`
//! exactly.

pub mod compare;
pub mod experiments;
pub mod report;
pub mod suite;
pub mod timing;
pub mod transport;

pub use report::Table;
