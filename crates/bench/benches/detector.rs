//! Receive-pipeline throughput: how fast the module stack (signature →
//! muteness → state machine → certificates) admits one valid message.

use ftm_bench::timing::{black_box, Group};
use ftm_certify::analyzer::CertChecker;
use ftm_certify::{Certificate, Core, Envelope};
use ftm_core::transform::ModuleStack;
use ftm_crypto::keydir::KeyDirectory;
use ftm_sim::{Duration, ProcessId, VirtualTime};

fn main() {
    let n = 4;
    let mut rng = ftm_crypto::rng_from_seed(3);
    let (dir, keys) = KeyDirectory::generate(&mut rng, n, 128);
    let checker = CertChecker::new(n, 1, dir);
    let env = Envelope::make(
        ProcessId(1),
        Core::Init { value: 7 },
        Certificate::new(),
        &keys[1],
    );

    let mut group = Group::new("detector");
    group.bench_batched(
        "admit_valid_init",
        || ModuleStack::new(checker.clone(), Duration::of(100)),
        |mut stack| stack.admit(ProcessId(1), black_box(&env), VirtualTime::ZERO),
    );

    // A forged envelope: rejected at the signature step.
    let forged = Envelope::make(
        ProcessId(1),
        Core::Init { value: 7 },
        Certificate::new(),
        &keys[2],
    );
    group.bench_batched(
        "reject_forged_init",
        || ModuleStack::new(checker.clone(), Duration::of(100)),
        |mut stack| stack.admit(ProcessId(1), black_box(&forged), VirtualTime::ZERO),
    );
    ftm_bench::timing::emit();
}
