//! Receive-pipeline throughput: how fast the module stack (signature →
//! muteness → state machine → certificates) admits one valid message.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use ftm_certify::analyzer::CertChecker;
use ftm_certify::{Certificate, Core, Envelope};
use ftm_core::transform::ModuleStack;
use ftm_crypto::keydir::KeyDirectory;
use ftm_sim::{Duration, ProcessId, VirtualTime};

fn bench_stack(c: &mut Criterion) {
    let n = 4;
    let mut rng = ftm_crypto::rng_from_seed(3);
    let (dir, keys) = KeyDirectory::generate(&mut rng, n, 128);
    let checker = CertChecker::new(n, 1, dir);
    let env = Envelope::make(
        ProcessId(1),
        Core::Init { value: 7 },
        Certificate::new(),
        &keys[1],
    );

    let mut group = c.benchmark_group("detector");
    group.bench_function("admit_valid_init", |b| {
        b.iter_batched(
            || ModuleStack::new(checker.clone(), Duration::of(100)),
            |mut stack| stack.admit(ProcessId(1), black_box(&env), VirtualTime::ZERO),
            BatchSize::SmallInput,
        )
    });

    // A forged envelope: rejected at the signature step.
    let forged = Envelope::make(
        ProcessId(1),
        Core::Init { value: 7 },
        Certificate::new(),
        &keys[2],
    );
    group.bench_function("reject_forged_init", |b| {
        b.iter_batched(
            || ModuleStack::new(checker.clone(), Duration::of(100)),
            |mut stack| stack.admit(ProcessId(1), black_box(&forged), VirtualTime::ZERO),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_stack);
criterion_main!(benches);
