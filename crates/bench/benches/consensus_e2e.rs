//! End-to-end consensus runs: the crash protocol vs. the transformed
//! protocol at equal n — the headline overhead numbers of experiment E6.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftm_bench::experiments::common::{run_byz_honest, run_crash};

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_e2e");
    group.sample_size(10);
    for n in [4usize, 7] {
        group.bench_function(format!("crash_n{n}"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| run_crash(n, s, &[]),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("byzantine_n{n}"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| run_byz_honest(n, (n - 1) / 2, s),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consensus);
criterion_main!(benches);
