//! End-to-end consensus runs: the crash protocol vs. the transformed
//! protocol at equal n — the headline overhead numbers of experiment E6.

use ftm_bench::experiments::common::{run_byz_honest, run_crash};
use ftm_bench::timing::Group;

fn main() {
    let mut group = Group::new("consensus_e2e");
    for n in [4usize, 7] {
        let mut seed = 0u64;
        group.bench_batched(
            &format!("crash_n{n}"),
            || {
                seed += 1;
                seed
            },
            |s| run_crash(n, s, &[]),
        );
        let mut seed = 0u64;
        group.bench_batched(
            &format!("byzantine_n{n}"),
            || {
                seed += 1;
                seed
            },
            |s| run_byz_honest(n, ftm_core::quorum::max_faults(n), s),
        );
    }
    ftm_bench::timing::emit();
}
