//! RSA key generation, signing and verification cost per modulus width —
//! the per-message cryptographic overhead of the transformed protocol.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ftm_crypto::rsa::KeyPair;
use ftm_crypto::sha256::Sha256;

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsa");
    for bits in [128usize, 256] {
        let mut rng = ftm_crypto::rng_from_seed(1);
        let keys = KeyPair::generate(&mut rng, bits);
        let digest = Sha256::digest(b"CURRENT(r=3, vect)");
        let sig = keys.sign_digest(&digest);

        group.bench_function(format!("sign_{bits}b"), |b| {
            b.iter(|| keys.sign_digest(black_box(&digest)))
        });
        group.bench_function(format!("verify_{bits}b"), |b| {
            b.iter(|| keys.public().verify_digest(black_box(&digest), black_box(&sig)))
        });
        group.bench_function(format!("keygen_{bits}b"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = ftm_crypto::rng_from_seed(seed);
                KeyPair::generate(&mut rng, bits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rsa);
criterion_main!(benches);
