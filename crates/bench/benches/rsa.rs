//! RSA key generation, signing and verification cost per modulus width —
//! the per-message cryptographic overhead of the transformed protocol.

use ftm_bench::timing::{black_box, Group};
use ftm_crypto::rsa::KeyPair;
use ftm_crypto::sha256::Sha256;

fn main() {
    let mut group = Group::new("rsa");
    for bits in [128usize, 256] {
        let mut rng = ftm_crypto::rng_from_seed(1);
        let keys = KeyPair::generate(&mut rng, bits);
        let digest = Sha256::digest(b"CURRENT(r=3, vect)");
        let sig = keys.sign_digest(&digest);

        group.bench(&format!("sign_{bits}b"), || {
            keys.sign_digest(black_box(&digest))
        });
        group.bench(&format!("verify_{bits}b"), || {
            keys.public()
                .verify_digest(black_box(&digest), black_box(&sig))
        });
        let mut seed = 0u64;
        group.bench(&format!("keygen_{bits}b"), || {
            seed += 1;
            let mut rng = ftm_crypto::rng_from_seed(seed);
            KeyPair::generate(&mut rng, bits)
        });
    }
    ftm_bench::timing::emit();
}
