//! Reliable-broadcast end-to-end cost: eager relay (crash model) vs.
//! Bracha double echo (arbitrary-fault model) at equal n.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftm_rbcast::{BrachaActor, EagerActor};
use ftm_sim::{SimConfig, Simulation};

fn bench_rbcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbcast");
    group.sample_size(20);
    for n in [4usize, 7, 10] {
        group.bench_function(format!("eager_n{n}"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| {
                    Simulation::build(SimConfig::new(n).seed(s), |id| {
                        if id.0 == 0 {
                            EagerActor::broadcaster(7)
                        } else {
                            EagerActor::relay()
                        }
                    })
                    .run()
                },
                BatchSize::SmallInput,
            )
        });
        let f = (n - 1) / 3;
        group.bench_function(format!("bracha_n{n}"), |b| {
            let mut seed = 0u64;
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| {
                    Simulation::build(SimConfig::new(n).seed(s), |id| {
                        if id.0 == 0 {
                            BrachaActor::broadcaster(n, f, 7)
                        } else {
                            BrachaActor::relay(n, f)
                        }
                    })
                    .run()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rbcast);
criterion_main!(benches);
