//! Reliable-broadcast end-to-end cost: eager relay (crash model) vs.
//! Bracha double echo (arbitrary-fault model) at equal n.

use ftm_bench::timing::Group;
use ftm_rbcast::{BrachaActor, EagerActor};
use ftm_sim::{SimConfig, Simulation};

fn main() {
    let mut group = Group::new("rbcast");
    for n in [4usize, 7, 10] {
        let mut seed = 0u64;
        group.bench_batched(
            &format!("eager_n{n}"),
            || {
                seed += 1;
                seed
            },
            |s| {
                Simulation::build(SimConfig::new(n).seed(s), |id| {
                    if id.0 == 0 {
                        EagerActor::broadcaster(7)
                    } else {
                        EagerActor::relay()
                    }
                })
                .run()
            },
        );
        let f = (n - 1) / 3;
        let mut seed = 0u64;
        group.bench_batched(
            &format!("bracha_n{n}"),
            || {
                seed += 1;
                seed
            },
            |s| {
                Simulation::build(SimConfig::new(n).seed(s), |id| {
                    if id.0 == 0 {
                        BrachaActor::broadcaster(n, f, 7)
                    } else {
                        BrachaActor::relay(n, f)
                    }
                })
                .run()
            },
        );
    }
    ftm_bench::timing::emit();
}
