//! Certificate construction and full analyzer verification vs. quorum size
//! — the dominant per-message cost of the transformed protocol.

use ftm_bench::timing::{black_box, Group};
use ftm_certify::analyzer::CertChecker;
use ftm_certify::{Certificate, Core, Envelope, MessageCore, SignedCore, ValueVector};
use ftm_crypto::keydir::KeyDirectory;
use ftm_crypto::rsa::KeyPair;
use ftm_sim::{Payload, ProcessId};

fn fixture(n: usize) -> (CertChecker, Vec<KeyPair>) {
    let mut rng = ftm_crypto::rng_from_seed(7);
    let (dir, keys) = KeyDirectory::generate(&mut rng, n, 128);
    (
        CertChecker::new(n, ftm_core::quorum::max_faults(n), dir),
        keys,
    )
}

/// A coordinator CURRENT(1, vect) with its n−F INIT witness set.
fn coordinator_current(n: usize, keys: &[KeyPair]) -> Envelope {
    let f = ftm_core::quorum::max_faults(n);
    let quorum = ftm_core::quorum::quorum_size(n, f);
    let mut vect = ValueVector::empty(n);
    let mut cert = Certificate::new();
    for s in 0..quorum as u32 {
        vect.set(s as usize, 100 + s as u64);
        cert.insert(SignedCore::sign(
            MessageCore::new(
                ProcessId(s),
                Core::Init {
                    value: 100 + s as u64,
                },
            ),
            &keys[s as usize],
        ));
    }
    Envelope::make(
        ProcessId(0),
        Core::Current {
            round: 1,
            vector: vect,
        },
        cert,
        &keys[0],
    )
}

fn main() {
    let mut group = Group::new("certificates");
    for n in [4usize, 7, 13, 21] {
        let (checker, keys) = fixture(n);
        group.bench(&format!("build_current_n{n}"), || {
            coordinator_current(black_box(n), &keys)
        });
        let env = coordinator_current(n, &keys);
        // Declaring the envelope's wire size turns the timing into a
        // bytes/s verification-throughput column in the JSON output.
        group.bench_bytes(
            &format!("verify_current_n{n}"),
            env.size_bytes() as u64,
            || {
                checker.check_envelope(black_box(&env)).expect("valid");
            },
        );
    }
    ftm_bench::timing::emit();
}
