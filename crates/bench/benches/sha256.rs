//! Throughput of the from-scratch SHA-256 (feeds E6's signature-cost
//! interpretation: every signed core is hashed once on each side).

use ftm_bench::timing::{black_box, Group};
use ftm_crypto::sha256::Sha256;

fn main() {
    let mut group = Group::new("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.bench_bytes(&format!("digest_{size}B"), size as u64, || {
            Sha256::digest(black_box(&data))
        });
    }
    ftm_bench::timing::emit();
}
