//! Throughput of the from-scratch SHA-256 (feeds E6's signature-cost
//! interpretation: every signed core is hashed once on each side).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ftm_crypto::sha256::Sha256;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| Sha256::digest(black_box(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sha256);
criterion_main!(benches);
